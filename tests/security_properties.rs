//! Cross-crate adversarial tests: every layer of the stack is attacked the
//! way the paper's threat model allows (compromised cloud provider —
//! registry, host OS, storage, network), and every attack must be detected
//! or yield only ciphertext.

use securecloud::containers::build::{SecureImageBuilder, PROTECTION_PATH};
use securecloud::containers::image::Layer;
use securecloud::crypto::channel::{memory_pair, ChannelConfig, Identity, SecureChannel};
use securecloud::scbr::secure::{RouterClient, SecureRouter};
use securecloud::scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud::sgx::enclave::{EnclaveConfig, Platform};
use securecloud::SecureCloud;
use std::thread;

#[test]
fn registry_cannot_swap_protected_content() {
    let mut cloud = SecureCloud::new();
    let built = SecureImageBuilder::new("svc", "v1", b"binary")
        .protect_file("/data/secret", b"original")
        .build()
        .unwrap();
    let good_image = cloud.deploy_image(built.clone());

    // Attack 1: replace the sealed protection file (breaks the SCF digest pin).
    let mut forged = built.image.clone();
    forged
        .layers
        .push(Layer::new().with_file(PROTECTION_PATH, b"attacker protection file"));
    let forged_id = cloud.registry().push(forged);
    assert!(cloud.run_container(forged_id).is_err());

    // Attack 2: swap a ciphertext chunk between two builds of the same app
    // (cross-build splicing — different file keys, MAC mismatch).
    let other_build = SecureImageBuilder::new("svc", "v1", b"binary")
        .protect_file("/data/secret", b"different")
        .build()
        .unwrap();
    let mut spliced = built.image.clone();
    let donor_chunk = other_build
        .image
        .flatten()
        .iter()
        .find(|(p, _)| p.starts_with("/data/secret.c"))
        .map(|(p, c)| (p.clone(), c.clone()))
        .unwrap();
    spliced
        .layers
        .push(Layer::new().with_file(&donor_chunk.0, &donor_chunk.1));
    let spliced_id = cloud.registry().push(spliced);
    // Bootstrap succeeds (protection file untouched) but the read of the
    // spliced chunk must fail authentication.
    let container = cloud.run_container(spliced_id).unwrap();
    let read = cloud
        .with_runtime(container, |rt| rt.read_file("/data/secret", 0, 16))
        .unwrap();
    assert!(read.is_err(), "spliced ciphertext must not decrypt");

    // The honest image still works.
    let container = cloud.run_container(good_image).unwrap();
    let read = cloud
        .with_runtime(container, |rt| rt.read_file("/data/secret", 0, 16))
        .unwrap()
        .unwrap();
    assert_eq!(read, b"original");
}

#[test]
fn host_tampering_with_shielded_files_is_detected() {
    let mut cloud = SecureCloud::new();
    let built = SecureImageBuilder::new("svc", "v1", b"binary")
        .protect_file("/db/records", &vec![5u8; 9000])
        .build()
        .unwrap();
    let image = cloud.deploy_image(built);
    let container = cloud.run_container(image).unwrap();

    // Baseline read works.
    let ok = cloud
        .with_runtime(container, |rt| rt.read_file("/db/records", 0, 9000))
        .unwrap();
    assert_eq!(ok.unwrap().len(), 9000);

    // The compromised host flips one byte of one chunk.
    let host = cloud.engine().container(container).unwrap().host().clone();
    let chunk = host
        .paths()
        .into_iter()
        .find(|p| p.starts_with("/db/records.c1"))
        .unwrap();
    host.corrupt_file(&chunk, 10);
    let read = cloud
        .with_runtime(container, |rt| rt.read_file("/db/records", 0, 9000))
        .unwrap();
    assert!(read.is_err());
    // Reads that do not cover the corrupted chunk still succeed.
    let partial = cloud
        .with_runtime(container, |rt| rt.read_file("/db/records", 0, 4096))
        .unwrap();
    assert!(partial.is_ok());
}

#[test]
fn network_adversary_cannot_impersonate_config_service() {
    let platform = Platform::new();
    let enclave_id = Identity::generate("enclave");
    // The attacker answers the enclave's provisioning connection with its
    // own identity. The enclave pinned the genuine service key.
    let (client_t, server_t) = memory_pair();
    let attacker = Identity::generate("mitm");
    let genuine_service_key = Identity::generate("real service").public_key();
    let mitm = thread::spawn(move || {
        SecureChannel::respond(server_t, &attacker, ChannelConfig::default())
    });
    let result = SecureChannel::initiate(
        client_t,
        &enclave_id,
        ChannelConfig {
            expected_peer: Some(genuine_service_key),
            ..ChannelConfig::default()
        },
    );
    assert!(result.is_err(), "pinned key must reject the MITM");
    let _ = mitm.join().unwrap();
    let _ = platform;
}

#[test]
fn router_state_is_confidential_and_replay_proof() {
    let platform = Platform::new();
    let enclave = platform
        .launch(EnclaveConfig::new("router", b"router code"))
        .unwrap();
    let mut router = SecureRouter::new(enclave, Some("topic"));
    let mut alice = RouterClient::new();
    let alice_id = router.register(&alice.public_key());
    alice.complete_exchange(&router.public_key());

    let sealed = alice
        .seal_subscription(&Subscription::new(vec![Predicate::new(
            "topic",
            Op::Eq,
            Value::Int(1),
        )]))
        .unwrap();
    router.subscribe_sealed(alice_id, &sealed).unwrap();
    // Replay of the captured sealed subscription is rejected.
    assert!(router.subscribe_sealed(alice_id, &sealed).is_err());

    // A publication from an unregistered "client id" is rejected.
    let sealed_pub = alice
        .seal_publication(&Publication::new().with("topic", Value::Int(1)))
        .unwrap();
    assert!(router
        .publish_sealed(securecloud::scbr::secure::ClientId(424242), &sealed_pub)
        .is_err());
}

#[test]
fn sealing_isolates_enclaves_and_platforms() {
    let platform_a = Platform::new();
    let platform_b = Platform::new();
    let enclave_a1 = platform_a
        .launch(EnclaveConfig::new("a1", b"app code"))
        .unwrap();
    let enclave_a2 = platform_a
        .launch(EnclaveConfig::new("a2", b"app code"))
        .unwrap();
    let enclave_b = platform_b
        .launch(EnclaveConfig::new("b", b"app code"))
        .unwrap();
    let enclave_other = platform_a
        .launch(EnclaveConfig::new("other", b"different code"))
        .unwrap();

    let sealed = enclave_a1.seal(b"database key", b"context");
    // Same code, same platform: unseals.
    assert!(enclave_a2.unseal(&sealed, b"context").is_ok());
    // Same code, different platform: fails (hardware-bound).
    assert!(enclave_b.unseal(&sealed, b"context").is_err());
    // Different code, same platform: fails (measurement-bound).
    assert!(enclave_other.unseal(&sealed, b"context").is_err());
}

#[test]
fn quotes_do_not_transfer_between_purposes() {
    // A quote binds report data; reusing it for a different binding fails
    // at the consumer that checks the binding.
    let platform = Platform::new();
    let enclave = platform
        .launch(EnclaveConfig::new("svc", b"svc code"))
        .unwrap();
    let mut attestation = securecloud::sgx::attest::AttestationService::new();
    attestation.register_platform(&platform);
    attestation.allow_measurement(enclave.measurement());

    let quote_for_a = enclave.quote(b"binding-A");
    let report = attestation.verify(&quote_for_a).unwrap();
    assert_eq!(&report.report_data[..9], b"binding-A");
    assert_ne!(&report.report_data[..9], b"binding-B");
}
