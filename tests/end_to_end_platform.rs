//! End-to-end integration of the full SecureCloud stack: images →
//! containers → enclaves → bus-connected micro-services → big-data jobs.

use securecloud::containers::build::SecureImageBuilder;
use securecloud::eventbus::bus::Message;
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::kvstore::{CounterService, SecureKv};
use securecloud::mapreduce::MapReduceRunner;
use securecloud::scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud::sgx::enclave::Platform;
use securecloud::smartgrid::meters::GridSpec;
use securecloud::smartgrid::orchestration::{
    telemetry, Orchestrator, ACTIONS_TOPIC, TELEMETRY_TOPIC,
};
use securecloud::smartgrid::theft::detect_theft;
use securecloud::SecureCloud;

#[test]
fn secure_microservice_lifecycle() {
    let mut cloud = SecureCloud::new();
    let built = SecureImageBuilder::new("analytics", "v2", b"analytics binary")
        .protect_file("/model/weights.bin", &vec![7u8; 20_000])
        .protect_file("/model/labels.txt", b"theft,ok")
        .plain_file("/LICENSE", b"MIT")
        .arg("--batch=64")
        .env("FEEDER", "north")
        .build()
        .unwrap();
    let measurement = built.measurement;
    let image = cloud.deploy_image(built);

    // Two replicas of the same image run independently.
    let c1 = cloud.run_container(image).unwrap();
    let c2 = cloud.run_container(image).unwrap();
    assert_ne!(c1, c2);
    for c in [c1, c2] {
        let (args, feeder, weights_len, measured) = cloud
            .with_runtime(c, |rt| {
                (
                    rt.args().to_vec(),
                    rt.env("FEEDER").map(str::to_string),
                    rt.read_file("/model/weights.bin", 0, 30_000).unwrap().len(),
                    rt.enclave().measurement(),
                )
            })
            .unwrap();
        assert_eq!(args, ["--batch=64"]);
        assert_eq!(feeder.as_deref(), Some("north"));
        assert_eq!(weights_len, 20_000);
        assert_eq!(measured, measurement);
    }

    // Writes from one replica are invisible to the other (separate hosts).
    cloud
        .with_runtime(c1, |rt| {
            rt.create_file("/state/progress").unwrap();
            rt.write_file("/state/progress", 0, b"epoch=3").unwrap();
        })
        .unwrap();
    let c2_sees = cloud
        .with_runtime(c2, |rt| rt.read_file("/state/progress", 0, 7).is_ok())
        .unwrap();
    assert!(!c2_sees);

    // Resource accounting is live.
    let usage = cloud.engine_mut().container_mut(c1).unwrap().usage();
    assert!(usage.cpu_cycles > 0);
    assert!(usage.host_calls > 0);

    cloud.stop_container(c1).unwrap();
    cloud.stop_container(c2).unwrap();
}

/// A meter-ingest service: filters high readings and stores them in a
/// secure KV store, forwarding alerts on the bus.
struct IngestService {
    kv: SecureKv,
    mem: securecloud::sgx::mem::MemorySim,
    stored: usize,
}

impl IngestService {
    fn new() -> Self {
        IngestService {
            kv: SecureKv::new(),
            mem: securecloud::sgx::mem::MemorySim::enclave(
                securecloud::sgx::costs::MemoryGeometry::sgx_v1(),
                securecloud::sgx::costs::CostModel::sgx_v1(),
            ),
            stored: 0,
        }
    }
}

impl MicroService for IngestService {
    fn name(&self) -> &str {
        "ingest"
    }
    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![(
            "readings".into(),
            Some(Subscription::new(vec![Predicate::new(
                "watts",
                Op::Ge,
                Value::Int(1000),
            )])),
        )]
    }
    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        let Some(Value::Int(meter)) = message.attributes.attrs.get("meter") else {
            return;
        };
        self.kv
            .put(&mut self.mem, &meter.to_be_bytes(), &message.payload);
        self.stored += 1;
        ctx.emit(
            "alerts",
            format!("high load on meter {meter}").into_bytes(),
            Publication::new().with("meter", Value::Int(*meter)),
        );
    }
}

#[test]
fn bus_wired_services_with_filters_and_kv() {
    let mut cloud = SecureCloud::new();
    cloud.register_service(Box::new(IngestService::new()));
    cloud.register_service(Box::new(Orchestrator::new()));
    let alerts = cloud.services_mut().bus_mut().subscribe("alerts", None);

    for (meter, watts) in [(1i64, 200i64), (2, 1500), (3, 4000), (4, 999)] {
        cloud.services_mut().bus_mut().publish(
            "readings",
            watts.to_le_bytes().to_vec(),
            Publication::new()
                .with("meter", Value::Int(meter))
                .with("watts", Value::Int(watts)),
        );
    }
    cloud.run_services(32);
    // Only meters 2 and 3 pass the >= 1000 W filter.
    assert_eq!(cloud.services_mut().bus_mut().backlog(alerts), 2);

    // Telemetry-driven orchestration reacts on the same bus.
    let actions = cloud
        .services_mut()
        .bus_mut()
        .subscribe(ACTIONS_TOPIC, None);
    for i in 0..30 {
        cloud.services_mut().bus_mut().publish(
            TELEMETRY_TOPIC,
            Vec::new(),
            telemetry("ingest", 3.0 + f64::from(i % 3) * 0.01),
        );
    }
    cloud.run_services(64);
    assert_eq!(cloud.services_mut().bus_mut().backlog(actions), 0);
    cloud
        .services_mut()
        .bus_mut()
        .publish(TELEMETRY_TOPIC, Vec::new(), telemetry("ingest", 500.0));
    cloud.run_services(8);
    assert_eq!(cloud.services_mut().bus_mut().backlog(actions), 1);
}

#[test]
fn theft_pipeline_over_generated_grid() {
    let spec = GridSpec {
        households: 30,
        duration_secs: 8 * 3600,
        interval_secs: 60,
        theft_fraction: 0.1,
        theft_scale: 0.3,
        seed: 99,
    };
    let traces = spec.generate();
    let feeder = GridSpec::feeder_totals(&traces);
    let runner = MapReduceRunner::new(Platform::new());
    // Inject a worker failure mid-pipeline: results must be unaffected.
    runner.injector().fail_map_task(1, 1);
    let report = detect_theft(&runner, &traces, &feeder).unwrap();
    let thieves: Vec<u64> = traces
        .iter()
        .filter(|t| t.is_theft)
        .map(|t| t.meter)
        .collect();
    assert!(!thieves.is_empty());
    let top: Vec<u64> = report
        .ranked
        .iter()
        .take(thieves.len() * 2)
        .map(|s| s.meter)
        .collect();
    // The strongest suspicion must be a real thief, and the majority of
    // thieves must surface in the top suspicions. (A household stealing a
    // few dozen watts can legitimately hide below the noise floor; the
    // larger fixture in `securecloud-smartgrid` asserts full recall.)
    assert!(
        thieves.contains(&report.ranked[0].meter),
        "top suspicion {} is not a thief ({thieves:?})",
        report.ranked[0].meter
    );
    let caught = thieves.iter().filter(|t| top.contains(t)).count();
    assert!(
        caught * 2 >= thieves.len(),
        "only {caught}/{} thieves in top suspicions {top:?}",
        thieves.len()
    );
}

#[test]
fn kv_snapshot_travels_between_enclave_instances() {
    // A service persists its KV state, "restarts" (new enclave instance),
    // and restores — with rollback protection intact.
    let mut mem = securecloud::sgx::mem::MemorySim::enclave(
        securecloud::sgx::costs::MemoryGeometry::sgx_v1(),
        securecloud::sgx::costs::CostModel::sgx_v1(),
    );
    let counters = CounterService::new();
    let key = securecloud::crypto::random_array();
    let mut kv = SecureKv::new();
    for i in 0..50u32 {
        kv.put(&mut mem, &i.to_be_bytes(), &i.to_le_bytes());
    }
    let snap1 = kv.snapshot(&key, &counters, "svc");
    kv.put(&mut mem, b"extra", b"new");
    let snap2 = kv.snapshot(&key, &counters, "svc");

    // Restore the newest snapshot: fine.
    let mut restored = SecureKv::restore(&mut mem, &key, &snap2.sealed, &counters, "svc").unwrap();
    assert_eq!(restored.get(&mut mem, b"extra"), Some(b"new".to_vec()));
    assert_eq!(restored.len(), 51);
    // The host serving the older snapshot is caught.
    assert!(SecureKv::restore(&mut mem, &key, &snap1.sealed, &counters, "svc").is_err());
}

#[test]
fn end_to_end_sealed_payloads_between_attested_services() {
    use securecloud::eventbus::{open_payload, seal_payload, TopicKeyService};
    use securecloud::sgx::attest::AttestationService;
    use securecloud::sgx::enclave::EnclaveConfig;

    // Two services (producer, consumer) run as enclaves on the platform;
    // the bus itself is untrusted and must see only ciphertext.
    let platform = Platform::new();
    let producer = platform
        .launch(EnclaveConfig::new("producer", b"producer code"))
        .unwrap();
    let consumer = platform
        .launch(EnclaveConfig::new("consumer", b"consumer code"))
        .unwrap();
    let mut attestation = AttestationService::new();
    attestation.register_platform(&platform);
    attestation.allow_measurement(producer.measurement());
    attestation.allow_measurement(consumer.measurement());
    let mut keys = TopicKeyService::new(attestation);
    keys.grant("meters/raw", producer.measurement());
    keys.grant("meters/raw", consumer.measurement());

    // Both sides obtain the topic key by presenting quotes.
    let k_producer = keys.key_for("meters/raw", &producer.quote(b"")).unwrap();
    let k_consumer = keys.key_for("meters/raw", &consumer.quote(b"")).unwrap();
    assert_eq!(k_producer, k_consumer);

    // Producer publishes sealed readings; routable attributes stay in the
    // clear (they are what the bus filters on), the payload does not.
    let mut bus = securecloud::eventbus::EventBus::new(1_000);
    let subscription = bus.subscribe(
        "meters/raw",
        Some(Subscription::new(vec![Predicate::new(
            "region",
            Op::Eq,
            Value::Str("north".into()),
        )])),
    );
    let secret_reading = b"meter 7: 4.2 kW (occupants home)";
    bus.publish(
        "meters/raw",
        seal_payload(&k_producer, secret_reading),
        Publication::new().with("region", Value::Str("north".into())),
    );

    // The bus operator (adversary) inspects the in-flight message.
    let message = bus.fetch(subscription).unwrap();
    assert!(
        !message
            .payload
            .windows(8)
            .any(|w| w == &secret_reading[..8]),
        "plaintext visible to the bus"
    );
    // The attested consumer decrypts it.
    let plain = open_payload(&k_consumer, &message.payload).unwrap();
    assert_eq!(plain, secret_reading);
    bus.ack(subscription, message.id);

    // A rogue enclave (not on the ACL) cannot obtain the key.
    let rogue = platform
        .launch(EnclaveConfig::new("rogue", b"rogue code"))
        .unwrap();
    assert!(keys.key_for("meters/raw", &rogue.quote(b"")).is_err());
}
