//! Telemetry determinism: the platform-wide trace is stamped with the
//! simulation's virtual clock only, so two runs with the same seed must
//! produce **byte-identical** JSONL traces — and a seeded chaos run must
//! leave metrics from every instrumented layer in the shared registry.

use securecloud::containers::build::SecureImageBuilder;
use securecloud::containers::engine::{RestartPolicy, SupervisionConfig};
use securecloud::eventbus::bus::Message;
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan, FaultRates};
use securecloud::scbr::broker::{BrokerId, Overlay};
use securecloud::scbr::types::{Publication, Subscription};
use securecloud::SecureCloud;
use std::sync::Arc;

/// Counts deliveries; drives bus + service-host instrumentation.
struct Sink;

impl MicroService for Sink {
    fn name(&self) -> &str {
        "sink"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/readings".into(), None)]
    }

    fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {}
}

/// A handler that can never process its message (exercises panic paths).
struct Poison;

impl MicroService for Poison {
    fn name(&self) -> &str {
        "poison"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/poison".into(), None)]
    }

    fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
        panic!("cannot parse reading");
    }
}

/// One seeded chaos-style run; returns the JSONL trace, the Prometheus
/// snapshot, and the chrome trace document.
fn run_scenario(seed: u64) -> (String, String, String) {
    let mut cloud = SecureCloud::new();
    cloud.engine_mut().set_supervision_seed(seed);

    // A supervised secure container: bootstrap + abort + restart exercise
    // the containers, sgx, and scone layers.
    let built = SecureImageBuilder::new("meter-gw", "v1", b"meter gateway code")
        .protect_file("/data/keys", b"meter-fleet-master-key")
        .build()
        .unwrap();
    let image = cloud.deploy_image(built);
    let container = cloud
        .engine_mut()
        .run_supervised(
            image,
            SupervisionConfig {
                policy: RestartPolicy::OnFailure,
                backoff_base_ms: 100,
                backoff_cap_ms: 2_000,
                jitter_ms: 25,
                max_restarts: 5,
            },
        )
        .unwrap();

    // An SCBR overlay reporting into the same registry as the platform.
    let mut overlay = Overlay::try_new(&[None, Some(0), Some(1), Some(1)]).unwrap();
    overlay.set_telemetry(Arc::clone(cloud.telemetry()));
    let _ = overlay.subscribe(BrokerId(3), Subscription::new(vec![]));

    let plan = FaultPlan::new()
        .at(
            500,
            FaultKind::EnclaveAbort {
                container: container.0,
            },
        )
        .at(
            900,
            FaultKind::ServicePanic {
                service: "sink".into(),
            },
        )
        .at(1_300, FaultKind::BrokerFail { broker: 1 });
    let injector = Arc::new(FaultInjector::with_plan(seed, plan));
    injector.set_rates(FaultRates {
        message_loss_permille: 120,
        message_duplication_permille: 80,
        syscall_failure_permille: 0,
    });
    cloud.set_fault_injector(Arc::clone(&injector));

    cloud.services_mut().bus_mut().set_max_attempts(Some(4));
    cloud.register_service(Box::new(Sink));
    cloud.register_service(Box::new(Poison));

    for index in 0..20u64 {
        cloud.services_mut().bus_mut().publish(
            "grid/readings",
            index.to_le_bytes().to_vec(),
            Publication::new(),
        );
    }
    cloud.services_mut().bus_mut().publish(
        "grid/poison",
        b"malformed".to_vec(),
        Publication::new(),
    );

    for _ in 0..24 {
        cloud.run_services(512);
        for event in cloud.advance(250) {
            if let FaultKind::BrokerFail { broker } = event.kind {
                overlay.fail_broker(BrokerId(broker));
            }
        }
        let _ = overlay.publish(BrokerId(2), &Publication::new());
    }

    // An enclave file read after the restart drives the scone shield and
    // sgx memory paths through the re-attested runtime.
    let keys = cloud
        .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 64))
        .unwrap()
        .unwrap();
    assert_eq!(keys, b"meter-fleet-master-key");

    let telemetry = cloud.telemetry();
    (
        telemetry.trace_jsonl(),
        telemetry.prometheus(),
        telemetry.chrome_trace_json(),
    )
}

/// Runs `f` with the global panic hook silenced (the poison service panics
/// on purpose); restored afterwards so real failures still print.
fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

#[test]
fn equal_seeds_give_byte_identical_traces() {
    let ((jsonl_a, _, chrome_a), (jsonl_b, _, chrome_b)) =
        with_silent_panics(|| (run_scenario(0x5EED), run_scenario(0x5EED)));
    assert!(!jsonl_a.is_empty(), "scenario produced no trace events");
    assert_eq!(jsonl_a.as_bytes(), jsonl_b.as_bytes());
    assert_eq!(chrome_a.as_bytes(), chrome_b.as_bytes());

    let (jsonl_other, _, _) = with_silent_panics(|| run_scenario(0xD15EA5E));
    assert_ne!(
        jsonl_a, jsonl_other,
        "different seeds should explore different schedules"
    );
}

/// One seeded run with a fixed per-step delivery batch size; the fault
/// plan is deterministic (no probabilistic loss/duplication, whose RNG
/// draw order would legitimately depend on delivery interleaving).
fn run_batched_scenario(seed: u64, batch: usize) -> (String, String, String) {
    let mut cloud = SecureCloud::new();
    cloud.engine_mut().set_supervision_seed(seed);
    cloud.set_delivery_batch(batch);

    let built = SecureImageBuilder::new("meter-gw", "v1", b"meter gateway code")
        .protect_file("/data/keys", b"meter-fleet-master-key")
        .build()
        .unwrap();
    let image = cloud.deploy_image(built);
    let container = cloud
        .engine_mut()
        .run_supervised(
            image,
            SupervisionConfig {
                policy: RestartPolicy::OnFailure,
                backoff_base_ms: 100,
                backoff_cap_ms: 2_000,
                jitter_ms: 25,
                max_restarts: 5,
            },
        )
        .unwrap();

    let plan = FaultPlan::new()
        .at(
            500,
            FaultKind::EnclaveAbort {
                container: container.0,
            },
        )
        .at(
            900,
            FaultKind::ServicePanic {
                service: "sink".into(),
            },
        );
    cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(seed, plan)));
    cloud.register_service(Box::new(Sink));

    let mut next_reading = 0u64;
    for _ in 0..12 {
        for _ in 0..5 {
            cloud.services_mut().bus_mut().publish(
                "grid/readings",
                next_reading.to_le_bytes().to_vec(),
                Publication::new(),
            );
            next_reading += 1;
        }
        cloud.run_services(512);
        cloud.advance(250);
    }

    let telemetry = cloud.telemetry();
    (
        telemetry.trace_jsonl(),
        telemetry.prometheus(),
        telemetry.chrome_trace_json(),
    )
}

#[test]
fn delivery_batch_size_does_not_change_telemetry() {
    // Batch delivery is an optimization, not a semantic change: the same
    // seeded run with per-step batches of 1, 8, and 64 must leave every
    // telemetry artifact byte-identical.
    let (jsonl_1, prom_1, chrome_1) = with_silent_panics(|| run_batched_scenario(0x0B47C, 1));
    assert!(!jsonl_1.is_empty(), "scenario produced no trace events");
    for batch in [8, 64] {
        let (jsonl, prom, chrome) = with_silent_panics(|| run_batched_scenario(0x0B47C, batch));
        assert_eq!(jsonl_1.as_bytes(), jsonl.as_bytes(), "jsonl, batch {batch}");
        assert_eq!(
            prom_1.as_bytes(),
            prom.as_bytes(),
            "prometheus, batch {batch}"
        );
        assert_eq!(
            chrome_1.as_bytes(),
            chrome.as_bytes(),
            "chrome, batch {batch}"
        );
    }
}

#[test]
fn chaos_run_records_metrics_from_every_layer() {
    let (jsonl, snapshot, _) = with_silent_panics(|| run_scenario(0xC0FFEE));
    for prefix in [
        "securecloud_bus_",
        "securecloud_containers_",
        "securecloud_scbr_",
        "securecloud_scone_",
        "securecloud_sgx_",
    ] {
        assert!(
            snapshot.contains(prefix),
            "no {prefix} metrics in snapshot:\n{snapshot}"
        );
    }
    // Every trace line is stamped with virtual time, never wall-clock.
    for line in jsonl.lines() {
        assert!(line.contains("\"ts_ms\":"), "unstamped event: {line}");
    }
}

#[test]
fn write_report_emits_all_three_artifacts() {
    let dir = std::env::temp_dir().join(format!(
        "securecloud-telemetry-report-{}",
        std::process::id()
    ));
    let report = with_silent_panics(|| {
        let mut cloud = SecureCloud::new();
        // A secure bootstrap records a span, so the trace files are
        // guaranteed non-empty.
        let built = SecureImageBuilder::new("svc", "v1", b"code")
            .build()
            .unwrap();
        let image = cloud.deploy_image(built);
        cloud.run_container(image).unwrap();
        cloud.register_service(Box::new(Sink));
        cloud
            .services_mut()
            .bus_mut()
            .publish("grid/readings", vec![1], Publication::new());
        cloud.run_services(64);
        cloud.advance(100);
        cloud.telemetry().write_report(&dir).unwrap()
    });
    for path in [&report.snapshot, &report.trace_jsonl, &report.trace_chrome] {
        assert!(path.is_file(), "missing artifact {}", path.display());
        assert!(std::fs::metadata(path).unwrap().len() > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}
