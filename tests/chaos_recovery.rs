//! Chaos-recovery harness: drives a smart-grid pipeline through a seeded
//! fault schedule and checks the platform's recovery guarantees end to end.
//!
//! One scenario exercises every fault class the injector knows:
//!
//! * random **message loss and duplication** on the event bus — billing
//!   must still charge every reading exactly once (at-least-once delivery,
//!   consumer-side dedup by [`MessageId`]);
//! * a planned **enclave abort** — the supervised container must come back
//!   with a *fresh*, re-attested enclave within its backoff schedule;
//! * a planned **service panic** — the delivery is nacked and retried, the
//!   pipeline keeps going;
//! * a planned **broker failure** — the SCBR overlay re-parents the
//!   orphaned subtree and re-propagates its subscriptions (counted in
//!   `OverlayStats::recovery_forwards`), publications keep arriving;
//! * planned **syscall failures** — armed on the injector and observable
//!   through a [`FaultyHost`];
//! * a poison message whose handler always panics — after the retry budget
//!   it lands in the bus's inspectable dead-letter queue.
//!
//! Everything is driven by virtual time and one `u64` seed: the same seed
//! must produce a byte-identical fault/recovery trace across runs.

use securecloud::containers::build::SecureImageBuilder;
use securecloud::containers::engine::{ContainerHealth, RestartPolicy, SupervisionConfig};
use securecloud::eventbus::bus::Message;
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan, FaultRates};
use securecloud::scbr::broker::{BrokerId, Overlay};
use securecloud::scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud::scone::hostos::{FaultyHost, HostOs, MemHost, Syscall, SyscallRet};
use securecloud::SecureCloud;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

const READINGS: u64 = 40;
const RETRY_BUDGET: u32 = 6;

/// Shared pipeline state the micro-services fold their effects into.
#[derive(Debug, Default)]
struct Ledger {
    /// Raw-reading message ids the validator has handled (dedup set).
    validated_ids: HashSet<u64>,
    /// Deliveries the validator skipped as duplicates (same message id).
    duplicate_deliveries: u64,
    /// Billable message ids billing has handled (dedup set).
    billed_ids: HashSet<u64>,
    /// Reading indexes billed so far.
    billed_readings: HashSet<u64>,
    /// Whether any reading was ever billed twice (must stay false).
    double_billed: bool,
    /// Total energy billed, kWh.
    billed_kwh: u64,
}

/// Validates raw meter readings and forwards them to billing. Dedups by
/// message id so bus-injected duplicates have no downstream effect.
struct MeterValidator {
    ledger: Arc<Mutex<Ledger>>,
}

impl MicroService for MeterValidator {
    fn name(&self) -> &str {
        "meter-validator"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/readings".into(), None)]
    }

    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        let mut ledger = self.ledger.lock().unwrap();
        if !ledger.validated_ids.insert(message.id.0) {
            ledger.duplicate_deliveries += 1;
            return;
        }
        ctx.emit(
            "grid/billable",
            message.payload.clone(),
            message.attributes.clone(),
        );
    }
}

/// Charges each validated reading exactly once.
struct BillingService {
    ledger: Arc<Mutex<Ledger>>,
}

impl MicroService for BillingService {
    fn name(&self) -> &str {
        "billing"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/billable".into(), None)]
    }

    fn handle(&mut self, message: &Message, _ctx: &mut ServiceCtx) {
        let mut ledger = self.ledger.lock().unwrap();
        if !ledger.billed_ids.insert(message.id.0) {
            ledger.duplicate_deliveries += 1;
            return;
        }
        let index = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
        let kwh = u64::from_le_bytes(message.payload[8..16].try_into().unwrap());
        if ledger.billed_readings.insert(index) {
            ledger.billed_kwh += kwh;
        } else {
            ledger.double_billed = true;
        }
    }
}

/// A handler that can never process its message.
struct PoisonService;

impl MicroService for PoisonService {
    fn name(&self) -> &str {
        "poison"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/poison".into(), None)]
    }

    fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
        panic!("cannot parse reading");
    }
}

fn reading_payload(index: u64) -> Vec<u8> {
    let kwh = 3 + (index % 7);
    let mut payload = index.to_le_bytes().to_vec();
    payload.extend_from_slice(&kwh.to_le_bytes());
    payload
}

fn expected_total_kwh() -> u64 {
    (0..READINGS).map(|i| 3 + (i % 7)).sum()
}

/// Everything a scenario run exposes for assertions.
struct Outcome {
    trace: Vec<String>,
    ledger: Ledger,
    old_enclave: securecloud::sgx::enclave::EnclaveId,
    new_enclave: securecloud::sgx::enclave::EnclaveId,
    restarts: u32,
    health: ContainerHealth,
    keys_after_restart: Vec<u8>,
    recovery_forwards: u64,
    overlay_delivered_after_failover: bool,
    dead_payloads: Vec<(Vec<u8>, u32, &'static str)>,
    forced_syscall_outcomes: Vec<bool>,
}

/// Runs the full chaos scenario for `seed` and returns what happened.
fn run_scenario(seed: u64) -> Outcome {
    let mut cloud = SecureCloud::new();
    cloud.engine_mut().set_supervision_seed(seed);

    // A supervised secure container (the meter gateway).
    let built = SecureImageBuilder::new("meter-gw", "v1", b"meter gateway code")
        .protect_file("/data/keys", b"meter-fleet-master-key")
        .build()
        .unwrap();
    let image = cloud.deploy_image(built);
    let container = cloud
        .engine_mut()
        .run_supervised(
            image,
            SupervisionConfig {
                policy: RestartPolicy::OnFailure,
                backoff_base_ms: 100,
                backoff_cap_ms: 2_000,
                jitter_ms: 25,
                max_restarts: 5,
            },
        )
        .unwrap();
    let old_enclave = cloud
        .with_runtime(container, |rt| rt.enclave().id())
        .unwrap();

    // The fault schedule, all in virtual milliseconds.
    let plan = FaultPlan::new()
        .at(
            500,
            FaultKind::EnclaveAbort {
                container: container.0,
            },
        )
        .at(
            900,
            FaultKind::ServicePanic {
                service: "meter-validator".into(),
            },
        )
        .at(1_300, FaultKind::BrokerFail { broker: 1 })
        .at(1_700, FaultKind::SyscallFail { count: 2 });
    let injector = Arc::new(FaultInjector::with_plan(seed, plan));
    injector.set_rates(FaultRates {
        message_loss_permille: 120,
        message_duplication_permille: 80,
        syscall_failure_permille: 0,
    });
    cloud.set_fault_injector(Arc::clone(&injector));

    // The routing tier: 0 is the root, 1 fans out to the edge brokers 2
    // and 3. An edge subscription at 3 is forwarded up through 1.
    let mut overlay = Overlay::try_new(&[None, Some(0), Some(1), Some(1)]).unwrap();
    let edge_sub = overlay.subscribe(
        BrokerId(3),
        Subscription::new(vec![Predicate::new("feeder", Op::Eq, Value::Int(7))]),
    );

    // Pipeline services and the retry budget.
    cloud.services_mut().set_quarantine_after(10);
    cloud
        .services_mut()
        .bus_mut()
        .set_max_attempts(Some(RETRY_BUDGET));
    let ledger = Arc::new(Mutex::new(Ledger::default()));
    cloud.register_service(Box::new(MeterValidator {
        ledger: Arc::clone(&ledger),
    }));
    cloud.register_service(Box::new(BillingService {
        ledger: Arc::clone(&ledger),
    }));
    cloud.register_service(Box::new(PoisonService));

    // First half of the night's readings, plus one poison message.
    for index in 0..READINGS / 2 {
        cloud.services_mut().bus_mut().publish(
            "grid/readings",
            reading_payload(index),
            Publication::new().with("feeder", Value::Int((index % 3) as i64)),
        );
    }
    cloud.services_mut().bus_mut().publish(
        "grid/poison",
        b"malformed reading".to_vec(),
        Publication::new(),
    );

    // Drive the platform: pump deliveries, then advance virtual time so
    // leases expire, backoffs elapse, and planned faults fire.
    for round in 0..24 {
        if round == 4 {
            // Second half lands after the validator panic is armed, so the
            // injected panic is guaranteed a delivery to hit.
            for index in READINGS / 2..READINGS {
                cloud.services_mut().bus_mut().publish(
                    "grid/readings",
                    reading_payload(index),
                    Publication::new().with("feeder", Value::Int((index % 3) as i64)),
                );
            }
        }
        cloud.run_services(512);
        for event in cloud.advance(250) {
            if let FaultKind::BrokerFail { broker } = event.kind {
                overlay.fail_broker(BrokerId(broker));
                injector.record(format!(
                    "broker b{broker} failed; recovery forwards {}",
                    overlay.stats().recovery_forwards
                ));
            }
        }
    }

    // The armed syscall failures, observed through a faulty host.
    let spool = FaultyHost::new(MemHost::new(), Arc::clone(&injector));
    let forced_syscall_outcomes = (0..3)
        .map(|_| {
            matches!(
                spool.execute(&Syscall::Open {
                    path: "/spool/readings".into(),
                    create: true,
                }),
                SyscallRet::Error(_)
            )
        })
        .collect();

    // A publication at a surviving edge broker still reaches the edge
    // subscription that used to route through the failed broker.
    let overlay_delivered_after_failover = overlay
        .publish(
            BrokerId(2),
            &Publication::new().with("feeder", Value::Int(7)),
        )
        .contains(&edge_sub);

    let new_enclave = cloud
        .with_runtime(container, |rt| rt.enclave().id())
        .unwrap();
    let keys_after_restart = cloud
        .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 64))
        .unwrap()
        .unwrap();
    let engine_container = cloud.engine().container(container).unwrap();
    let restarts = engine_container.restarts();
    let health = engine_container.health();
    let dead_payloads = cloud
        .services_mut()
        .bus_mut()
        .dead_letters()
        .iter()
        .map(|d| (d.message.payload.clone(), d.message.attempt, d.reason))
        .collect();

    let ledger = std::mem::take(&mut *ledger.lock().unwrap());
    Outcome {
        trace: injector.trace(),
        ledger,
        old_enclave,
        new_enclave,
        restarts,
        health,
        keys_after_restart,
        recovery_forwards: overlay.stats().recovery_forwards,
        overlay_delivered_after_failover,
        dead_payloads,
        forced_syscall_outcomes,
    }
}

/// Runs `f` with the global panic hook silenced: `catch_unwind` still runs
/// the hook, and the poison service panics a lot. The hook is restored
/// before returning so real test failures still print.
fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

fn trace_has(trace: &[String], needle: &str) -> bool {
    trace.iter().any(|line| line.contains(needle))
}

#[test]
fn chaos_pipeline_survives_seeded_faults() {
    let outcome = with_silent_panics(|| run_scenario(0xC0FFEE));

    // At-least-once + dedup by message id: every reading billed exactly
    // once despite injected loss, duplication, a panic, and an abort.
    assert_eq!(outcome.ledger.billed_readings.len(), READINGS as usize);
    assert!(!outcome.ledger.double_billed);
    assert_eq!(outcome.ledger.billed_kwh, expected_total_kwh());
    // The fault rates actually bit: the bus lost and duplicated messages,
    // and dedup absorbed at least one duplicate delivery.
    assert!(
        trace_has(&outcome.trace, "lost"),
        "no message loss injected"
    );
    assert!(
        trace_has(&outcome.trace, "duplicated"),
        "no duplication injected"
    );
    assert!(outcome.ledger.duplicate_deliveries > 0);

    // The aborted container is back: fresh enclave, same protected state,
    // restarted on schedule (abort at t=500, backoff in [600, 625), so the
    // t=750 tick restarts it — attempt 1, no quarantine).
    assert_eq!(outcome.health, ContainerHealth::Running);
    assert_eq!(outcome.restarts, 1);
    assert_ne!(outcome.new_enclave, outcome.old_enclave);
    assert_eq!(outcome.keys_after_restart, b"meter-fleet-master-key");
    assert!(trace_has(&outcome.trace, "fire enclave-abort c1"));
    assert!(trace_has(
        &outcome.trace,
        "container c1 aborted: injected enclave abort"
    ));
    assert!(
        outcome
            .trace
            .iter()
            .any(|l| l.starts_with("t=750 ") && l.contains("container c1 restarted attempt 1")),
        "restart not at the first tick after backoff: {:?}",
        outcome.trace
    );

    // The injected service panic was caught, nacked, and retried.
    assert!(trace_has(
        &outcome.trace,
        "service meter-validator panicked"
    ));
    assert!(!trace_has(
        &outcome.trace,
        "service meter-validator quarantined"
    ));

    // Broker 1 failed; its subtree re-parented and re-propagated the edge
    // subscription, so routing still works.
    assert!(trace_has(&outcome.trace, "fire broker-fail b1"));
    assert!(outcome.recovery_forwards > 0);
    assert!(outcome.overlay_delivered_after_failover);

    // The two armed syscall failures hit the next two host calls.
    assert_eq!(outcome.forced_syscall_outcomes, vec![true, true, false]);

    // Retry-budget exhaustion: only the poison message dead-lettered, at
    // exactly the budget, and inspectable after the fact. The final straw
    // is a nack — or a lease expiry when the injector "lost" the last
    // delivery attempt.
    assert!(!outcome.dead_payloads.is_empty());
    for (payload, attempt, reason) in &outcome.dead_payloads {
        assert_eq!(payload, b"malformed reading");
        assert_eq!(*attempt, RETRY_BUDGET);
        assert!(*reason == "nack" || *reason == "lease-expired");
    }
}

/// What the replica-kill chaos scenario exposes for assertions.
struct ReplicaOutcome {
    trace: Vec<String>,
    telemetry_jsonl: String,
    stats: securecloud::replica::cluster::ReplicaStats,
    lost_any_acked_write: bool,
}

/// Drives a replicated KV deployment through a seeded replica-kill
/// schedule: three kills across two shards (one slot hit twice), writes
/// acknowledged between every fault, every fault auto-failed-over by
/// [`SecureCloud::advance`].
fn run_replica_scenario(seed: u64) -> ReplicaOutcome {
    use securecloud::replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};

    let mut cloud = SecureCloud::new();
    let plan = FaultPlan::new()
        .at(300, FaultKind::ReplicaKill { shard: 0, slot: 1 })
        .at(700, FaultKind::ReplicaKill { shard: 1, slot: 0 })
        .at(1_100, FaultKind::ReplicaKill { shard: 0, slot: 1 });
    let injector = Arc::new(FaultInjector::with_plan(seed, plan));
    cloud.set_fault_injector(Arc::clone(&injector));
    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .unwrap();

    // Interleave acknowledged writes with the fault schedule.
    let mut acked = Vec::new();
    for round in 0..6u64 {
        for meter in 0..5u64 {
            let key = format!("meter/{round}/{meter}");
            cloud
                .replicated_kv_mut(id)
                .unwrap()
                .put(key.as_bytes(), &round.to_le_bytes())
                .expect("acknowledged write");
            acked.push((key, round));
        }
        cloud.advance(250);
    }

    let kv = cloud.replicated_kv_mut(id).unwrap();
    let lost_any_acked_write = acked.iter().any(|(key, round)| {
        kv.get(key.as_bytes()).expect("read quorum") != Some(round.to_le_bytes().to_vec())
    });
    let stats = kv.stats();
    ReplicaOutcome {
        trace: injector.trace(),
        telemetry_jsonl: cloud.telemetry().trace_jsonl(),
        stats,
        lost_any_acked_write,
    }
}

#[test]
fn replica_kill_schedule_never_loses_acked_writes() {
    let outcome = run_replica_scenario(0xFA11);

    assert!(
        !outcome.lost_any_acked_write,
        "an acknowledged write disappeared across replica kills"
    );
    assert_eq!(outcome.stats.replicas_killed, 3);
    assert_eq!(outcome.stats.replicas_replaced, 3, "every kill failed over");
    assert_eq!(
        outcome.stats.live_replicas, 6,
        "groups back at full strength"
    );
    assert_eq!(outcome.stats.quorum_failures, 0);
    // Shard 0 lost a replica twice, shard 1 once: epochs 1+2 and 1+1.
    assert_eq!(outcome.stats.epochs, vec![3, 2]);

    // The deterministic trace tells the whole story: fault fired, replica
    // killed, snapshot streamed, replacement re-attested.
    assert!(trace_has(&outcome.trace, "fire replica-kill s0/r1"));
    assert!(trace_has(&outcome.trace, "fire replica-kill s1/r0"));
    assert!(trace_has(&outcome.trace, "replica s0/r1 killed"));
    assert!(trace_has(&outcome.trace, "snapshot v"));
    assert!(trace_has(&outcome.trace, "re-attested and admitted"));
    assert!(
        outcome
            .trace
            .iter()
            .any(|l| l.starts_with("t=300 ") && l.contains("replica-kill")),
        "kill not stamped with its virtual time: {:?}",
        outcome.trace
    );
}

#[test]
fn same_seed_gives_byte_identical_failover_telemetry() {
    let first = run_replica_scenario(0x7EE0);
    let second = run_replica_scenario(0x7EE0);
    assert!(!first.telemetry_jsonl.is_empty());
    assert_eq!(
        first.telemetry_jsonl, second.telemetry_jsonl,
        "failover telemetry must be byte-identical for equal seeds"
    );
    assert_eq!(first.trace, second.trace);
    assert!(
        first
            .telemetry_jsonl
            .lines()
            .any(|l| l.contains("failover")),
        "telemetry trace should contain failover events"
    );
}

/// What the elastic-controller chaos scenario exposes for assertions.
struct ElasticOutcome {
    trace: Vec<String>,
    decisions: String,
    stats: securecloud::replica::cluster::ReplicaStats,
    epoch_rollback: bool,
    lost_any_acked_write: bool,
    unhealthy_groups: usize,
    acked: usize,
    rejected_writes: u64,
}

/// Drives the attached [`securecloud::cluster::ClusterController`] through
/// a fault schedule interleaved with its own scaling decisions: sustained
/// bus backpressure forces scale-ups, and the plan kills exactly the
/// replicas those scale-ups admit (slot 3 right after n goes to 4, slot 4
/// right after n goes to 5), stalls a replica so the controller's repair
/// phase has to fence-kill it, and partitions a whole group mid-run.
fn run_elastic_scenario(seed: u64) -> ElasticOutcome {
    use securecloud::cluster::ScalingPolicy;
    use securecloud::eventbus::bus::METRIC_BACKPRESSURED;
    use securecloud::replica::{ReplicaConfig, ReplicationFactor, ShardId, WriteQuorum};

    let mut cloud = SecureCloud::new();
    let plan = FaultPlan::new()
        .at(600, FaultKind::ReplicaKill { shard: 0, slot: 3 })
        .at(1_100, FaultKind::ReplicaStall { shard: 1, slot: 1 })
        .at(2_600, FaultKind::ReplicaKill { shard: 0, slot: 4 })
        .at(
            3_100,
            FaultKind::NetworkPartition {
                group: 1,
                heal_after_ms: 700,
            },
        );
    let injector = Arc::new(FaultInjector::with_plan(seed, plan));
    cloud.set_fault_injector(Arc::clone(&injector));
    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .unwrap();
    cloud
        .attach_cluster_controller(id, ScalingPolicy::default(), 8)
        .unwrap();

    let backpressured = cloud.telemetry().counter(METRIC_BACKPRESSURED);
    let mut acked = Vec::new();
    let mut rejected_writes = 0u64;
    let mut epoch_rollback = false;
    let mut last_epochs: Vec<u64> = Vec::new();
    for round in 0..44u64 {
        for meter in 0..4u64 {
            let key = format!("meter/{round}/{meter}");
            // A write refused by a partitioned or draining group was never
            // acknowledged, so it carries no durability guarantee.
            match cloud
                .replicated_kv_mut(id)
                .unwrap()
                .put(key.as_bytes(), &round.to_le_bytes())
            {
                Ok(()) => acked.push((key, round)),
                Err(_) => rejected_writes += 1,
            }
        }
        if round < 11 {
            // Sustained bus overload: the controller sees a backpressure
            // delta of 20 per tick and ramps replicas up; from round 11
            // on the signals go calm and it drains back down.
            backpressured.add(20);
        }
        cloud.advance(250);
        let epochs = cloud.replicated_kv_mut(id).unwrap().stats().epochs;
        if !last_epochs.is_empty()
            && epochs
                .iter()
                .zip(&last_epochs)
                .any(|(now, then)| now < then)
        {
            epoch_rollback = true;
        }
        last_epochs = epochs;
    }

    let kv = cloud.replicated_kv_mut(id).unwrap();
    let lost_any_acked_write = acked.iter().any(|(key, round)| {
        kv.get(key.as_bytes()).expect("read quorum") != Some(round.to_le_bytes().to_vec())
    });
    let unhealthy_groups = (0..2)
        .filter(|&index| {
            let group = kv.group(ShardId(index)).unwrap();
            group.is_degraded() || group.is_partitioned() || !group.stalled_replicas().is_empty()
        })
        .count();
    let stats = kv.stats();
    ElasticOutcome {
        trace: injector.trace(),
        decisions: cloud.cluster_controller().unwrap().decision_trace(),
        stats,
        epoch_rollback,
        lost_any_acked_write,
        unhealthy_groups,
        acked: acked.len(),
        rejected_writes,
    }
}

#[test]
fn elastic_controller_survives_kills_and_stall_mid_scale_up() {
    let outcome = run_elastic_scenario(0xE1A5);

    // The headline invariant: whatever the schedule did to the membership,
    // no acknowledged write is lost and quorum epochs never roll back.
    assert!(
        !outcome.lost_any_acked_write,
        "an acknowledged write disappeared across the fault schedule"
    );
    assert!(!outcome.epoch_rollback, "a quorum epoch rolled back");
    assert!(outcome.acked > 100, "most writes acked: {}", outcome.acked);
    assert!(
        outcome.rejected_writes > 0,
        "the partition window should refuse (not silently ack) some writes"
    );

    // The schedule interleaved with scaling as designed: both shards
    // ramped up under backpressure, the kills landed on freshly admitted
    // replicas, and the calm tail drained both groups back to the floor.
    assert!(outcome.decisions.contains("scale-up shard s0 -> n=4"));
    assert!(outcome.decisions.contains("scale-up shard s0 -> n=5"));
    assert!(trace_has(&outcome.trace, "fire replica-kill s0/r3"));
    assert!(trace_has(&outcome.trace, "fire replica-kill s0/r4"));
    assert!(trace_has(&outcome.trace, "fire replica-stall s1/r1"));
    assert!(trace_has(&outcome.trace, "fire network-partition s1"));
    assert!(outcome
        .decisions
        .contains("repair shard s1: killed stalled replica s1/r1"));
    assert!(outcome.decisions.contains("hold shard s1: partitioned"));
    assert!(outcome.decisions.contains("scale-down shard s0"));

    // Converged: healthy groups at full strength, nothing stalled or
    // partitioned, and the controller actually exercised both directions.
    assert_eq!(outcome.unhealthy_groups, 0);
    assert_eq!(
        outcome.stats.live_replicas, 6,
        "both groups drained back to min_replicas"
    );
    assert_eq!(outcome.stats.scale_ups, 4, "two ramps per shard");
    assert!(outcome.stats.scale_downs >= 2);
    assert!(outcome.stats.replicas_killed >= 3);
}

#[test]
fn elastic_controller_decision_trace_is_deterministic() {
    let first = run_elastic_scenario(0xE1A5);
    let second = run_elastic_scenario(0xE1A5);
    assert!(!first.decisions.is_empty());
    assert_eq!(
        first.decisions, second.decisions,
        "controller decisions must be byte-identical for equal seeds"
    );
    assert_eq!(first.trace, second.trace);
}

#[test]
fn armed_syscall_failures_hit_the_shield_layer() {
    // Regression: `SyscallFail` used to be dropped on the floor by
    // `SecureCloud::advance` — the injector armed itself, but no container
    // host ever consulted it, so shielded runtimes never saw the fault.
    // With the injector attached before the container starts, its runtime
    // talks to the host through a FaultyHost and the armed failure
    // surfaces as a shield-layer error.
    let mut cloud = SecureCloud::new();
    let plan = FaultPlan::new().at(100, FaultKind::SyscallFail { count: 1 });
    let injector = Arc::new(FaultInjector::with_plan(0xFA17, plan));
    cloud.set_fault_injector(Arc::clone(&injector));

    let built = SecureImageBuilder::new("spool-gw", "v1", b"spool gateway code")
        .protect_file("/data/keys", b"spool-master-key")
        .build()
        .unwrap();
    let image = cloud.deploy_image(built);
    let container = cloud.run_container(image).unwrap();

    // Before the fault fires, shielded reads work.
    let read = |cloud: &mut SecureCloud| {
        cloud
            .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 64))
            .unwrap()
    };
    assert_eq!(read(&mut cloud).unwrap(), b"spool-master-key");

    let events = cloud.advance(150);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::SyscallFail { count: 1 })),
        "the planned fault fired"
    );

    // The armed failure hits the very next host syscall the runtime makes,
    // and the shield layer refuses the read instead of masking it.
    assert!(
        read(&mut cloud).is_err(),
        "armed syscall failure must surface through the shielded runtime"
    );
    // The window closed: the following read succeeds again.
    assert_eq!(read(&mut cloud).unwrap(), b"spool-master-key");

    // The arming is recorded in both traces.
    assert!(trace_has(&injector.trace(), "fire syscall-fail x1"));
    assert!(cloud
        .telemetry()
        .trace_jsonl()
        .contains("syscall_failures_armed"));
}

#[test]
fn same_seed_gives_identical_traces() {
    let (first, second) = with_silent_panics(|| (run_scenario(0x5EED), run_scenario(0x5EED)));
    assert!(!first.trace.is_empty());
    assert_eq!(first.trace, second.trace, "trace must be reproducible");

    let other = with_silent_panics(|| run_scenario(0xD15EA5E));
    assert_ne!(
        first.trace, other.trace,
        "different seeds should explore different schedules"
    );
}
