//! A scaled-down check that the Figure 3 mechanism holds: in-enclave
//! matching time diverges from native matching time once the subscription
//! database outgrows the usable EPC, and degradation begins *before* the
//! nominal EPC size (SGX metadata reservation).
//!
//! The full-size sweep lives in the bench crate
//! (`cargo run -p securecloud-bench --bin repro -- fig3`); this test uses a
//! shrunken geometry so it runs in seconds.

use securecloud::scbr::engine::MatchEngine;
use securecloud::scbr::index::PosetIndex;
use securecloud::scbr::workload::WorkloadSpec;
use securecloud::sgx::costs::{CostModel, MemoryGeometry};
use securecloud::sgx::mem::MemorySim;

/// A 1/16-scale SGX: 8 MiB EPC (6 MiB usable), 512 KiB LLC.
fn small_geometry() -> MemoryGeometry {
    MemoryGeometry {
        line_bytes: 64,
        llc_bytes: 512 << 10,
        page_bytes: 4096,
        epc_total_bytes: 8 << 20,
        epc_reserved_bytes: 2 << 20,
    }
}

fn ns_per_publication(db_bytes: u64, enclave: bool) -> f64 {
    let geometry = small_geometry();
    let costs = CostModel::sgx_v1();
    let mut mem = if enclave {
        MemorySim::enclave(geometry, costs)
    } else {
        MemorySim::native(geometry, costs)
    };
    let spec = WorkloadSpec::fig3();
    let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
    for sub in spec.subscriptions_for_db_size(db_bytes) {
        engine.subscribe(&mut mem, sub);
    }
    let publications = spec.publications(30);
    for publication in &publications {
        engine.publish(&mut mem, publication); // warm-up
    }
    mem.reset_metrics();
    for publication in &publications {
        engine.publish(&mut mem, publication);
    }
    mem.elapsed().as_nanos() as f64 / publications.len() as f64
}

#[test]
fn enclave_overhead_grows_past_epc() {
    // DB sizes relative to the 8 MiB EPC (6 MiB usable).
    let small = 2u64 << 20; //  fits EPC comfortably
    let mid = 5 << 20; //  below nominal EPC, above usable
    let large = 16 << 20; //  2x the EPC

    let ratio = |db: u64| ns_per_publication(db, true) / ns_per_publication(db, false);
    let r_small = ratio(small);
    let r_mid = ratio(mid);
    let r_large = ratio(large);

    // Shape of Figure 3:
    // 1. Small DBs: bounded overhead (MEE on misses only).
    assert!(
        r_small < 4.0,
        "small-DB ratio should be mild, got {r_small:.2}"
    );
    // 2. Degradation already visible before the nominal EPC size.
    assert!(
        r_mid > r_small,
        "degradation must start before the EPC line: {r_mid:.2} <= {r_small:.2}"
    );
    // 3. Past the EPC: paging dominates, order-of-magnitude slowdown.
    assert!(
        r_large > 4.0,
        "past-EPC ratio should be large, got {r_large:.2}"
    );
    assert!(
        r_large > r_mid,
        "ratio must keep growing: {r_large:.2} <= {r_mid:.2}"
    );
}

#[test]
fn matching_results_identical_across_domains() {
    let geometry = small_geometry();
    let costs = CostModel::sgx_v1();
    let mut native = MemorySim::native(geometry, costs.clone());
    let mut enclave = MemorySim::enclave(geometry, costs);
    let spec = WorkloadSpec::fig3();
    let mut engine_native = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
    let mut engine_enclave = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
    for sub in spec.subscriptions(2_000) {
        engine_native.subscribe(&mut native, sub.clone());
        engine_enclave.subscribe(&mut enclave, sub);
    }
    for publication in spec.publications(50) {
        let mut a = engine_native.publish(&mut native, &publication);
        let mut b = engine_enclave.publish(&mut enclave, &publication);
        a.sort();
        b.sort();
        assert_eq!(a, b, "domain must not affect matching semantics");
    }
}

#[test]
fn epc_fault_rate_drives_the_ratio() {
    // Direct mechanism check: past-EPC runs fault, in-EPC runs do not.
    let geometry = small_geometry();
    let spec = WorkloadSpec::fig3();
    let mut mem = MemorySim::enclave(geometry, CostModel::sgx_v1());
    let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
    for sub in spec.subscriptions_for_db_size(2 << 20) {
        engine.subscribe(&mut mem, sub);
    }
    for publication in spec.publications(30) {
        engine.publish(&mut mem, &publication);
    }
    mem.reset_metrics();
    for publication in spec.publications(30) {
        engine.publish(&mut mem, &publication);
    }
    let faults_small = mem.stats().epc_faults;

    let mut mem = MemorySim::enclave(geometry, CostModel::sgx_v1());
    let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
    for sub in spec.subscriptions_for_db_size(16 << 20) {
        engine.subscribe(&mut mem, sub);
    }
    for publication in spec.publications(30) {
        engine.publish(&mut mem, &publication);
    }
    mem.reset_metrics();
    for publication in spec.publications(30) {
        engine.publish(&mut mem, &publication);
    }
    let faults_large = mem.stats().epc_faults;

    assert_eq!(faults_small, 0, "steady-state in-EPC run must not fault");
    assert!(
        faults_large > 1_000,
        "past-EPC run must thrash: {faults_large}"
    );
}
