//! Secure content-based routing (SCBR, §V-B): encrypted pub/sub through an
//! enclave-hosted router, plus a glimpse of the Figure 3 effect.
//!
//! Run with: `cargo run --release --example secure_pubsub`

use securecloud::scbr::engine::MatchEngine;
use securecloud::scbr::index::PosetIndex;
use securecloud::scbr::secure::{RouterClient, SecureRouter};
use securecloud::scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud::scbr::workload::WorkloadSpec;
use securecloud::sgx::costs::{CostModel, MemoryGeometry};
use securecloud::sgx::enclave::{EnclaveConfig, Platform};
use securecloud::sgx::mem::MemorySim;

fn main() {
    println!("== SCBR: secure content-based routing ==\n");

    // ---- Encrypted pub/sub through the router enclave.
    let platform = Platform::new();
    let enclave = platform
        .launch(EnclaveConfig::new("scbr-router", b"router code"))
        .expect("launch");
    let mut router = SecureRouter::new(enclave, Some("topic"));

    let mut subscriber = RouterClient::new();
    let mut publisher = RouterClient::new();
    let sub_client = router.register(&subscriber.public_key());
    let pub_client = router.register(&publisher.public_key());
    subscriber.complete_exchange(&router.public_key());
    publisher.complete_exchange(&router.public_key());

    let subscription = Subscription::new(vec![
        Predicate::new("topic", Op::Eq, Value::Int(7)),
        Predicate::new("load_mw", Op::Ge, Value::Int(100)),
    ]);
    let sealed_sub = subscriber.seal_subscription(&subscription).expect("sealed");
    let sub_id = router
        .subscribe_sealed(sub_client, &sealed_sub)
        .expect("accepted");
    println!("subscriber registered encrypted subscription {sub_id:?}");

    let event = Publication::new()
        .with("topic", Value::Int(7))
        .with("load_mw", Value::Int(250))
        .with("substation", Value::Str("north-3".into()));
    let sealed_pub = publisher.seal_publication(&event).expect("sealed");
    let notifications = router
        .publish_sealed(pub_client, &sealed_pub)
        .expect("routed");
    println!(
        "publication matched {} subscription(s)",
        notifications.len()
    );
    let received = subscriber
        .open_notification(&notifications[0].1)
        .expect("only the owner can open it");
    println!("subscriber decrypted notification: {received:?}\n");

    // ---- The Figure 3 mechanism, in miniature: the same matching code in
    //      native vs enclave memory, at two database sizes.
    println!("matching cost, native vs enclave (simulated):");
    println!(
        "{:>10} {:>14} {:>14} {:>7}",
        "DB size", "native us/pub", "enclave us/pub", "ratio"
    );
    let spec = WorkloadSpec::fig3();
    for &mb in &[16u64, 160] {
        let subs = spec.subscriptions_for_db_size(mb << 20);
        let pubs = spec.publications(20);
        let mut results = Vec::new();
        for enclave_domain in [false, true] {
            let geometry = MemoryGeometry::sgx_v1();
            let costs = CostModel::sgx_v1();
            let mut mem = if enclave_domain {
                MemorySim::enclave(geometry, costs)
            } else {
                MemorySim::native(geometry, costs)
            };
            let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
            for sub in subs.clone() {
                engine.subscribe(&mut mem, sub);
            }
            // Warm up, then measure steady state.
            for publication in &pubs {
                engine.publish(&mut mem, publication);
            }
            mem.reset_metrics();
            for publication in &pubs {
                engine.publish(&mut mem, publication);
            }
            results.push(mem.elapsed().as_nanos() as f64 / pubs.len() as f64 / 1000.0);
        }
        println!(
            "{:>8}MB {:>14.1} {:>14.1} {:>6.1}x",
            mb,
            results[0],
            results[1],
            results[1] / results[0]
        );
    }
    println!("\n(the full sweep is `cargo run -p securecloud-bench --bin repro -- fig3`)");
}
