//! GenPack (§IV, §VI): schedule a day of data-center containers with four
//! schedulers and compare energy.
//!
//! Run with: `cargo run --release --example genpack_cluster`

use securecloud::genpack::schedulers::{
    FirstFitScheduler, GenPackScheduler, RandomScheduler, Scheduler, SpreadScheduler,
};
use securecloud::genpack::sim::{simulate, SimConfig};
use securecloud::genpack::workload::WorkloadConfig;

fn main() {
    println!("== GenPack cluster scheduling ==\n");
    let workload = WorkloadConfig {
        duration: 24 * 3600,
        churn_per_hour: 150.0,
        system_services: 25,
        long_running: 80,
        ..WorkloadConfig::default()
    };
    let trace = workload.generate();
    println!(
        "workload: {} container arrivals over 24h (mixed system/long-running/batch/short)\n",
        trace.len()
    );
    let config = SimConfig {
        servers: 60,
        ..SimConfig::default()
    };

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RandomScheduler::new(1)),
        Box::new(SpreadScheduler),
        Box::new(FirstFitScheduler),
        Box::new(GenPackScheduler::new()),
    ];

    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "scheduler", "energy kWh", "avg srv on", "migrations", "rejections", "overloads"
    );
    let mut results = Vec::new();
    for scheduler in &mut schedulers {
        let result = simulate(scheduler.as_mut(), &trace, config);
        println!(
            "{:<10} {:>12.1} {:>14.1} {:>12} {:>12} {:>10}",
            result.scheduler,
            result.energy_kwh(),
            result.avg_servers_on,
            result.migrations,
            result.rejections,
            result.overload_ticks
        );
        results.push(result);
    }

    let genpack = results.last().expect("genpack ran");
    println!("\nGenPack energy savings:");
    for baseline in &results[..results.len() - 1] {
        println!(
            "  vs {:<10}: {:>5.1}%",
            baseline.scheduler,
            genpack.savings_vs(baseline)
        );
    }
    println!("\n(paper §VI: \"up to 23% energy savings ... for typical data-center workloads\")");
}
