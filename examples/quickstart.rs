//! Quickstart: build a secure micro-service image, deploy it to an
//! untrusted cloud, and watch the trust machinery work.
//!
//! Run with: `cargo run --example quickstart`

use securecloud::containers::build::SecureImageBuilder;
use securecloud::SecureCloud;

fn main() {
    println!("== SecureCloud quickstart ==\n");
    let mut cloud = SecureCloud::new();

    // 1. The image creator (in a trusted environment) builds a secure
    //    image: the binary is statically linked with the SCONE runtime and
    //    measured; sensitive files are encrypted; the FS protection file is
    //    sealed into the image; the SCF stays out of the image.
    let built = SecureImageBuilder::new("billing-svc", "v1", b"billing service binary")
        .protect_file("/data/api-keys.db", b"stripe_key=sk_live_abc123")
        .plain_file("/etc/motd", b"public banner")
        .arg("--port=8443")
        .env("MODE", "production")
        .build()
        .expect("build succeeds");
    println!("built image  : {}", built.image.reference());
    println!("measurement  : {}", built.measurement.to_hex());
    println!("image files  :");
    for (path, content) in built.image.flatten() {
        println!("  {path} ({} bytes)", content.len());
    }

    // 2. Deploy: push to the (untrusted) registry, register the SCF with
    //    the configuration service, allow the measurement.
    let image = cloud.deploy_image(built.clone());
    println!("\npushed as    : {}", image.to_hex());

    // 3. Run. The engine launches an enclave, the enclave attests itself to
    //    the configuration service over an encrypted channel, receives the
    //    SCF, verifies and mounts the shielded file system.
    let container = cloud.run_container(image).expect("secure start");
    println!("container    : {:?} (secure bootstrap complete)", container);

    let (args, mode, secret) = cloud
        .with_runtime(container, |rt| {
            (
                rt.args().to_vec(),
                rt.env("MODE").map(str::to_string),
                rt.read_file("/data/api-keys.db", 0, 64)
                    .expect("shielded read"),
            )
        })
        .expect("secure container has a runtime");
    println!("args from SCF: {args:?}");
    println!("env from SCF : MODE={}", mode.unwrap());
    println!("shielded read: {}", String::from_utf8_lossy(&secret));

    // 4. What does the untrusted host actually see? Only ciphertext.
    let engine = cloud.engine();
    let host = engine.container(container).expect("exists").host();
    let chunk = host
        .paths()
        .into_iter()
        .find(|p| p.starts_with("/data/api-keys.db"))
        .expect("ciphertext chunk on host");
    let raw = host.raw_file(&chunk).unwrap();
    let leaked = raw.windows(6).any(|w| w == b"stripe");
    println!(
        "\nhost view of {chunk}: {} bytes of ciphertext, plaintext leaked: {leaked}",
        raw.len()
    );
    assert!(!leaked);

    // 5. An attacker who swaps the binary in the registry gets nothing: the
    //    measurement changes and attestation withholds the SCF.
    let mut trojaned = built.image;
    trojaned.entrypoint = b"trojaned binary".to_vec();
    let evil_id = cloud.registry().push(trojaned);
    match cloud.run_container(evil_id) {
        Err(e) => println!("\ntampered image refused: {e}"),
        Ok(_) => unreachable!("tampered image must not start"),
    }

    println!("\nquickstart complete.");
}
