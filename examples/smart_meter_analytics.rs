//! Smart-meter analytics: the paper's first use case (§VI).
//!
//! Generates a day of sub-minute meter data for a feeder, runs the
//! power-theft detection pipeline as secure map/reduce jobs, and
//! demonstrates the appliance-inference privacy attack that motivates
//! processing this data inside enclaves.
//!
//! Run with: `cargo run --example smart_meter_analytics`

use securecloud::mapreduce::MapReduceRunner;
use securecloud::sgx::enclave::Platform;
use securecloud::smartgrid::billing::{compute_bills, Tariff};
use securecloud::smartgrid::meters::GridSpec;
use securecloud::smartgrid::privacy::{attack_sealed_payload, infer_kettle_events, score_attack};
use securecloud::smartgrid::theft::detect_theft;

fn main() {
    println!("== Smart-meter analytics on SecureCloud ==\n");
    let spec = GridSpec {
        households: 120,
        interval_secs: 30,
        duration_secs: 24 * 3600,
        theft_fraction: 0.06,
        theft_scale: 0.4,
        seed: 2024,
    };
    println!(
        "feeder: {} households, {}s sampling, 24h trace ({} samples each)",
        spec.households,
        spec.interval_secs,
        spec.samples()
    );
    let traces = spec.generate();
    let feeder = GridSpec::feeder_totals(&traces);
    let true_thieves: Vec<u64> = traces
        .iter()
        .filter(|t| t.is_theft)
        .map(|t| t.meter)
        .collect();
    println!("injected thieves (ground truth): {true_thieves:?}\n");

    // ---- Theft detection as two secure map/reduce jobs.
    let runner = MapReduceRunner::new(Platform::new());
    let report = detect_theft(&runner, &traces, &feeder).expect("pipeline runs");
    println!(
        "feeder energy {:.1} kW-samples, reported {:.1}, loss fraction {:.1}%",
        report.total_feeder / 1000.0,
        report.total_reported / 1000.0,
        report.loss_fraction * 100.0
    );
    println!("top suspicions (meter: score):");
    for suspicion in report.ranked.iter().take(10) {
        let marker = if true_thieves.contains(&suspicion.meter) {
            "  <-- actual thief"
        } else {
            ""
        };
        println!(
            "  meter {:>3}: {:.3}{marker}",
            suspicion.meter, suspicion.score
        );
    }
    let top: Vec<u64> = report
        .ranked
        .iter()
        .take(true_thieves.len() * 2)
        .map(|s| s.meter)
        .collect();
    let caught = true_thieves.iter().filter(|t| top.contains(t)).count();
    println!(
        "detection: {caught}/{} thieves in the top-{} suspicions\n",
        true_thieves.len(),
        top.len()
    );

    // ---- Time-of-use billing as a second secure map/reduce job.
    let bills = compute_bills(&runner, &traces, spec.interval_secs, Tariff::default())
        .expect("billing job runs");
    let revenue: f64 = bills.values().map(|b| b.total_cents).sum();
    let stolen_revenue: f64 = bills
        .values()
        .filter(|b| true_thieves.contains(&b.meter))
        .map(|b| b.total_cents)
        .sum();
    println!(
        "billing: {} households, {:.2} EUR billed (thieves pay only {:.2} EUR of it)\n",
        bills.len(),
        revenue / 100.0,
        stolen_revenue / 100.0
    );

    // ---- The privacy attack that makes encryption non-optional.
    let victim = traces
        .iter()
        .filter(|t| t.kettle_events.len() >= 3)
        .max_by_key(|t| t.kettle_events.len())
        .expect("a kettle-heavy household");
    let inferred = infer_kettle_events(&victim.actual);
    let plain_score = score_attack(&inferred, &victim.kettle_events, 2);
    println!(
        "privacy attack on PLAINTEXT readings of meter {}: {} kettle uses inferred, \
         precision {:.0}%, recall {:.0}%",
        victim.meter,
        plain_score.inferred,
        plain_score.precision * 100.0,
        plain_score.recall * 100.0
    );
    let key = securecloud::crypto::random_array();
    let sealed_inferred = attack_sealed_payload(&key, &victim.actual);
    let sealed_score = score_attack(&sealed_inferred, &victim.kettle_events, 2);
    println!(
        "privacy attack on SEALED readings: {} spurious events, precision {:.0}% — \
         the ciphertext carries no appliance signal",
        sealed_score.inferred,
        sealed_score.precision * 100.0
    );
}
