//! The attested shard/replication layer: quorum writes over enclave
//! replicas, a fault-injected replica kill, and attestation-gated failover
//! that streams a sealed snapshot to the re-attested replacement.
//!
//! Run with: `cargo run --release --example replica_failover`

use securecloud::faults::{FaultInjector, FaultKind, FaultPlan};
use securecloud::replica::{ReplicaConfig, ReplicationFactor, ShardId, WriteQuorum};
use securecloud::SecureCloud;
use std::sync::Arc;

fn main() {
    println!("== Replicated secure KV: kill a replica, fail over attested ==\n");

    let mut cloud = SecureCloud::new();
    // One planned fault: at t=400ms the host kills shard 0's replica 1.
    let plan = FaultPlan::new().at(400, FaultKind::ReplicaKill { shard: 0, slot: 1 });
    let injector = Arc::new(FaultInjector::with_plan(42, plan));
    cloud.set_fault_injector(Arc::clone(&injector));

    // 2 shards x 3 replicas, majority write quorum. Every replica enclave
    // is admitted only after the provisioning service verifies its quote.
    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .expect("deploy replicated kv");
    {
        let kv = cloud.replicated_kv(id).unwrap();
        println!(
            "deployed: {} shards x {} replicas, write quorum {}, {} attested admissions",
            kv.stats().shards,
            kv.stats().replication_factor,
            kv.stats().write_quorum,
            kv.provisioning().admitted()
        );
    }

    // Acknowledge writes before the fault.
    for meter in 0u32..20 {
        let key = format!("meter/{meter:04}/total_kwh");
        cloud
            .replicated_kv_mut(id)
            .unwrap()
            .put(key.as_bytes(), &(f64::from(meter) * 1.5).to_le_bytes())
            .expect("quorum write acknowledged");
    }
    let shard_of_key = cloud
        .replicated_kv(id)
        .unwrap()
        .shard_of(b"meter/0007/total_kwh");
    println!("wrote 20 acknowledged keys (meter/0007 routes to {shard_of_key})");

    // Advance virtual time: the planned kill fires and the facade routes
    // it to the deployment, which re-attests a replacement and streams it
    // a sealed snapshot.
    cloud.advance(500);
    let kv = cloud.replicated_kv_mut(id).unwrap();
    let stats = kv.stats();
    println!(
        "\nafter the fault: {} killed, {} replaced, {} live, shard epochs {:?}",
        stats.replicas_killed, stats.replicas_replaced, stats.live_replicas, stats.epochs
    );
    println!(
        "admissions now {}: the replacement re-attested before rejoining",
        kv.provisioning().admitted()
    );

    // No acknowledged write was lost.
    let value = kv
        .get(b"meter/0007/total_kwh")
        .expect("read quorum")
        .expect("key survives the kill");
    println!(
        "meter/0007 still reads {} kWh after failover",
        f64::from_le_bytes(value.try_into().unwrap())
    );

    // Quorum still protects against losing too many replicas: kill two of
    // shard 1's three replicas and the shard refuses writes rather than
    // acknowledging something it could lose.
    kv.kill_replica(ShardId(1), 0);
    kv.kill_replica(ShardId(1), 1);
    let key_on_s1 = (0u32..)
        .map(|i| format!("probe/{i}"))
        .find(|k| kv.shard_of(k.as_bytes()) == ShardId(1))
        .unwrap();
    match kv.put(key_on_s1.as_bytes(), b"?") {
        Err(e) => println!("\nmajority gone on s1: {e}"),
        Ok(()) => unreachable!("write must not be acknowledged below quorum"),
    }
    // ...until failover repairs the group from the last survivor.
    let replaced = kv.fail_over().expect("survivor streams the snapshot");
    kv.put(key_on_s1.as_bytes(), b"ok").expect("healthy again");
    println!("failover replaced {replaced} replicas; s1 accepts writes again");

    println!("\ndeterministic fault/recovery trace:");
    for line in injector.trace() {
        println!("  {line}");
    }
}
