//! The secure structured data store (§III-B): an enclave-resident ordered
//! KV store with sealed snapshots and rollback protection.
//!
//! Run with: `cargo run --release --example secure_kv`

use securecloud::kvstore::{CounterService, SecureKv};
use securecloud::sgx::costs::{CostModel, MemoryGeometry};
use securecloud::sgx::mem::MemorySim;

fn main() {
    println!("== Secure KV store ==\n");
    let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
    let counters = CounterService::new();
    let sealing_key = securecloud::crypto::random_array();

    // A meter-data service stores per-meter state.
    let mut kv = SecureKv::new();
    for meter in 0u32..1_000 {
        let key = format!("meter/{meter:04}/total_kwh");
        kv.put(
            &mut mem,
            key.as_bytes(),
            &(f64::from(meter) * 1.5).to_le_bytes(),
        );
    }
    println!(
        "stored {} keys ({} bytes) in enclave memory; {} simulated cycles so far",
        kv.len(),
        kv.data_bytes(),
        mem.cycles()
    );

    // Ordered range scan: all meters in the 0040–0049 block.
    let hits = kv.scan(&mut mem, b"meter/0040", b"meter/0050");
    println!("range scan meters 0040..0050: {} entries", hits.len());

    // Durability: snapshot to untrusted storage, sealed and versioned.
    let snapshot_v1 = kv.snapshot(&sealing_key, &counters, "meter-db");
    println!(
        "\nsnapshot v{} sealed to untrusted storage ({} bytes of ciphertext)",
        snapshot_v1.version,
        snapshot_v1.sealed.len()
    );

    // More writes, then a second snapshot.
    kv.put(&mut mem, b"meter/0001/total_kwh", &999.9f64.to_le_bytes());
    let snapshot_v2 = kv.snapshot(&sealing_key, &counters, "meter-db");
    println!("snapshot v{} supersedes it", snapshot_v2.version);

    // Honest restart: restore the latest snapshot.
    let mut restored = SecureKv::restore(
        &mut mem,
        &sealing_key,
        &snapshot_v2.sealed,
        &counters,
        "meter-db",
    )
    .expect("fresh snapshot restores");
    let updated = restored.get(&mut mem, b"meter/0001/total_kwh").unwrap();
    println!(
        "restored v{}: meter 0001 = {} kWh",
        restored.version(),
        f64::from_le_bytes(updated.try_into().unwrap())
    );

    // Rollback attack: the untrusted host serves the *old* (validly
    // sealed!) snapshot. The trusted monotonic counter catches it.
    match SecureKv::restore(
        &mut mem,
        &sealing_key,
        &snapshot_v1.sealed,
        &counters,
        "meter-db",
    ) {
        Err(e) => println!("\nhost served a stale snapshot: {e}"),
        Ok(_) => unreachable!("rollback must be detected"),
    }

    // Tampering: one flipped ciphertext byte.
    let mut tampered = snapshot_v2.sealed.clone();
    tampered[40] ^= 1;
    match SecureKv::restore(&mut mem, &sealing_key, &tampered, &counters, "meter-db") {
        Err(e) => println!("host tampered with the snapshot: {e}"),
        Ok(_) => unreachable!("tampering must be detected"),
    }
}
