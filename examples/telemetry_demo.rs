//! Telemetry demo: run a small pub/sub + enclave workload, then print the
//! Prometheus-style metrics snapshot and the recorded span tree.
//!
//!     cargo run --example telemetry_demo
//!
//! Everything is stamped with the platform's virtual clock, so the output
//! is identical on every run.

use securecloud::containers::build::SecureImageBuilder;
use securecloud::eventbus::bus::Message;
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::scbr::types::{Publication, Subscription, Value};
use securecloud::telemetry::Phase;
use securecloud::SecureCloud;

/// Validates readings and forwards them to the billing topic.
struct Validator;

impl MicroService for Validator {
    fn name(&self) -> &str {
        "validator"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/readings".into(), None)]
    }

    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        ctx.emit(
            "grid/billable",
            message.payload.clone(),
            message.attributes.clone(),
        );
    }
}

/// Terminal consumer of the billable stream.
struct Billing;

impl MicroService for Billing {
    fn name(&self) -> &str {
        "billing"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/billable".into(), None)]
    }

    fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {}
}

fn main() {
    let mut cloud = SecureCloud::new();

    // An enclave workload: bootstrap a secure container and read protected
    // state through the SCONE shield (drives sgx + scone metrics).
    let built = SecureImageBuilder::new("meter-gw", "v1", b"meter gateway code")
        .protect_file("/data/keys", b"meter-fleet-master-key")
        .build()
        .expect("image build");
    let image = cloud.deploy_image(built);
    let container = cloud.run_container(image).expect("container start");
    let keys = cloud
        .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 64))
        .expect("secure runtime")
        .expect("protected read");
    assert_eq!(keys, b"meter-fleet-master-key");

    // A pub/sub workload over the platform bus (drives bus metrics).
    cloud.register_service(Box::new(Validator));
    cloud.register_service(Box::new(Billing));
    for index in 0..10u64 {
        cloud.services_mut().bus_mut().publish(
            "grid/readings",
            index.to_le_bytes().to_vec(),
            Publication::new().with("meter", Value::Int(index as i64)),
        );
        cloud.run_services(64);
        cloud.advance(50);
    }

    println!("=== metrics snapshot (Prometheus text format) ===");
    print!("{}", cloud.telemetry().prometheus());

    println!("\n=== span tree (virtual-clock timestamps) ===");
    let mut depth = 0usize;
    for event in cloud.telemetry().trace_events() {
        match event.phase {
            Phase::Begin => {
                let args = event
                    .args
                    .iter()
                    .map(|(k, v)| format!(" {k}={v}"))
                    .collect::<String>();
                println!(
                    "t={:>5}ms {}{}/{}{args}",
                    event.ts_ms,
                    "  ".repeat(depth),
                    event.category,
                    event.name
                );
                depth += 1;
            }
            Phase::End => depth = depth.saturating_sub(1),
            Phase::Instant | Phase::FlowStart | Phase::FlowFinish => {
                println!(
                    "t={:>5}ms {}* {}/{}",
                    event.ts_ms,
                    "  ".repeat(depth),
                    event.category,
                    event.name
                );
            }
        }
    }
}
