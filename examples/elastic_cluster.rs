//! The elastic cluster controller: telemetry-driven autoscaling of
//! attested replicas that rides out a fault schedule. Bus backpressure
//! forces scale-ups, the schedule kills a freshly admitted replica and
//! stalls another, and the calm tail drains everything back to the
//! policy floor — with every acknowledged write intact and every
//! decision on a deterministic `t=<ms>` trace.
//!
//! Run with: `cargo run --release --example elastic_cluster`

use securecloud::cluster::ScalingPolicy;
use securecloud::eventbus::bus::METRIC_BACKPRESSURED;
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan};
use securecloud::replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};
use securecloud::SecureCloud;
use std::sync::Arc;

fn main() {
    println!("== Elastic cluster controller: scale, survive, converge ==\n");

    let mut cloud = SecureCloud::new();
    // The schedule aims at the controller's own actions: the kill lands
    // on the very replica the backpressure ramp makes it admit (shard 0
    // grows to slot 3 at t=500), and the stall fences a quorum member
    // until the controller's repair phase kill-and-replaces it.
    let plan = FaultPlan::new()
        .at(600, FaultKind::ReplicaKill { shard: 0, slot: 3 })
        .at(1_100, FaultKind::ReplicaStall { shard: 1, slot: 1 });
    let injector = Arc::new(FaultInjector::with_plan(7, plan));
    cloud.set_fault_injector(Arc::clone(&injector));

    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .expect("deploy replicated kv");
    cloud
        .attach_cluster_controller(id, ScalingPolicy::default(), 8)
        .expect("default policy is valid");
    println!("deployed 2 shards x 3 replicas; controller attached (min 3, max 5 per shard)");

    // Drive the loop: writes every tick, sustained bus backpressure for
    // the first 10 ticks, then calm. One controller tick per advance.
    let backpressured = cloud.telemetry().counter(METRIC_BACKPRESSURED);
    let mut acked = Vec::new();
    for tick in 0..40u64 {
        for i in 0..4u64 {
            let key = format!("meter/{tick}/{i}");
            if cloud
                .replicated_kv_mut(id)
                .unwrap()
                .put(key.as_bytes(), &tick.to_le_bytes())
                .is_ok()
            {
                acked.push((key, tick));
            }
        }
        if tick < 10 {
            backpressured.add(20); // the bus is rejecting batches
        }
        cloud.advance(250);
    }

    let kv = cloud.replicated_kv_mut(id).unwrap();
    let lost = acked
        .iter()
        .filter(|(key, tick)| {
            kv.get(key.as_bytes()).expect("read quorum") != Some(tick.to_le_bytes().to_vec())
        })
        .count();
    let stats = kv.stats();
    println!(
        "\n{} writes acknowledged, {} lost; {} scale-ups, {} scale-downs,",
        acked.len(),
        lost,
        stats.scale_ups,
        stats.scale_downs
    );
    println!(
        "{} replicas killed, {} re-attested replacements, {} live at the end (epochs {:?})",
        stats.replicas_killed, stats.replicas_replaced, stats.live_replicas, stats.epochs
    );
    assert_eq!(lost, 0, "no acknowledged write may be lost");

    println!("\ncontroller decision trace (deterministic for equal seeds):");
    for line in cloud.cluster_controller().unwrap().decisions() {
        println!("  {line}");
    }
}
