//! Chaos-recovery demo: run the platform under a seeded fault schedule and
//! watch it heal itself.
//!
//!     cargo run --example chaos_recovery_demo -- [seed]
//!
//! The same seed always prints the same trace (deterministic virtual time,
//! no OS entropy); different seeds explore different fault interleavings.

use securecloud::containers::build::SecureImageBuilder;
use securecloud::containers::engine::{RestartPolicy, SupervisionConfig};
use securecloud::eventbus::bus::Message;
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan, FaultRates};
use securecloud::scbr::broker::{BrokerId, Overlay};
use securecloud::scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud::SecureCloud;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Counts each distinct reading once, however often the bus delivers it.
struct MeterSink {
    seen: Arc<Mutex<HashSet<u64>>>,
    duplicates: Arc<Mutex<u64>>,
}

impl MicroService for MeterSink {
    fn name(&self) -> &str {
        "meter-sink"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/readings".into(), None)]
    }

    fn handle(&mut self, message: &Message, _ctx: &mut ServiceCtx) {
        if !self.seen.lock().unwrap().insert(message.id.0) {
            *self.duplicates.lock().unwrap() += 1;
        }
    }
}

/// A handler that can never process its message.
struct PoisonService;

impl MicroService for PoisonService {
    fn name(&self) -> &str {
        "poison"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("grid/poison".into(), None)]
    }

    fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
        panic!("cannot parse reading");
    }
}

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        Some(raw) => match raw.parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be an unsigned integer, got {raw:?}");
                std::process::exit(2);
            }
        },
        None => 0xC0FFEE,
    };
    // The poison service panics on purpose; keep its backtraces quiet.
    std::panic::set_hook(Box::new(|_| {}));

    let mut cloud = SecureCloud::new();
    cloud.engine_mut().set_supervision_seed(seed);

    // One supervised secure container (the meter gateway).
    let built = SecureImageBuilder::new("meter-gw", "v1", b"meter gateway code")
        .protect_file("/data/keys", b"meter-fleet-master-key")
        .build()
        .expect("image build");
    let image = cloud.deploy_image(built);
    let container = cloud
        .engine_mut()
        .run_supervised(
            image,
            SupervisionConfig {
                policy: RestartPolicy::OnFailure,
                backoff_base_ms: 100,
                backoff_cap_ms: 2_000,
                jitter_ms: 25,
                max_restarts: 5,
            },
        )
        .expect("container start");
    let first_enclave = cloud
        .with_runtime(container, |rt| rt.enclave().id())
        .expect("secure runtime");

    // The fault schedule, in virtual milliseconds.
    let plan = FaultPlan::new()
        .at(
            500,
            FaultKind::EnclaveAbort {
                container: container.0,
            },
        )
        .at(
            900,
            FaultKind::ServicePanic {
                service: "meter-sink".into(),
            },
        )
        .at(1_300, FaultKind::BrokerFail { broker: 1 });
    let injector = Arc::new(FaultInjector::with_plan(seed, plan));
    injector.set_rates(FaultRates {
        message_loss_permille: 120,
        message_duplication_permille: 80,
        syscall_failure_permille: 0,
    });
    cloud.set_fault_injector(Arc::clone(&injector));

    // A small routing overlay: root 0, fan-out broker 1, edges 2 and 3.
    let mut overlay = Overlay::try_new(&[None, Some(0), Some(1), Some(1)]).expect("topology");
    let edge_sub = overlay.subscribe(
        BrokerId(3),
        Subscription::new(vec![Predicate::new("feeder", Op::Eq, Value::Int(7))]),
    );

    // The pipeline: a dedup'ing sink plus a poison message with a budget.
    cloud.services_mut().set_quarantine_after(10);
    cloud.services_mut().bus_mut().set_max_attempts(Some(6));
    let seen = Arc::new(Mutex::new(HashSet::new()));
    let duplicates = Arc::new(Mutex::new(0u64));
    cloud.register_service(Box::new(MeterSink {
        seen: Arc::clone(&seen),
        duplicates: Arc::clone(&duplicates),
    }));
    cloud.register_service(Box::new(PoisonService));

    const READINGS: u64 = 30;
    for index in 0..READINGS {
        cloud.services_mut().bus_mut().publish(
            "grid/readings",
            index.to_le_bytes().to_vec(),
            Publication::new(),
        );
    }
    cloud.services_mut().bus_mut().publish(
        "grid/poison",
        b"malformed reading".to_vec(),
        Publication::new(),
    );

    // Drive: pump deliveries, advance virtual time in 250 ms ticks.
    for _ in 0..24 {
        cloud.run_services(512);
        for event in cloud.advance(250) {
            if let FaultKind::BrokerFail { broker } = event.kind {
                overlay.fail_broker(BrokerId(broker));
                injector.record(format!(
                    "broker b{broker} failed; recovery forwards {}",
                    overlay.stats().recovery_forwards
                ));
            }
        }
    }

    println!("=== fault/recovery trace (seed {seed}) ===");
    for line in injector.trace() {
        println!("{line}");
    }

    let survivor_publish = overlay
        .publish(
            BrokerId(2),
            &Publication::new().with("feeder", Value::Int(7)),
        )
        .contains(&edge_sub);
    let current_enclave = cloud
        .with_runtime(container, |rt| rt.enclave().id())
        .expect("secure runtime");
    let state = cloud.engine().container(container).expect("container");
    println!("=== outcome ===");
    println!(
        "readings delivered: {}/{READINGS} (duplicate deliveries absorbed: {})",
        seen.lock().unwrap().len(),
        duplicates.lock().unwrap()
    );
    println!(
        "container: health {:?}, {} restart(s), enclave {:?} -> {:?}",
        state.health(),
        state.restarts(),
        first_enclave,
        current_enclave
    );
    println!(
        "overlay: recovery forwards {}, edge subscription reachable after failover: {}",
        overlay.stats().recovery_forwards,
        survivor_publish
    );
    for dead in cloud.services_mut().bus_mut().dead_letters() {
        println!(
            "dead letter: {:?} after {} attempts ({})",
            String::from_utf8_lossy(&dead.message.payload),
            dead.message.attempt,
            dead.reason
        );
    }

    // Leave the run's full telemetry (metrics snapshot + traces) on disk.
    let report_dir = std::path::Path::new("target/telemetry/chaos");
    match cloud.telemetry().write_report(report_dir) {
        Ok(report) => println!(
            "telemetry report: {}, {}, {}",
            report.snapshot.display(),
            report.trace_jsonl.display(),
            report.trace_chrome.display()
        ),
        Err(err) => eprintln!("warning: telemetry report not written: {err}"),
    }
}
