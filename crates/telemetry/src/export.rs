//! Exporters: Prometheus-style text snapshot, JSONL trace, and
//! chrome://tracing (`trace_event`) JSON.
//!
//! All output is hand-rendered (no serde in this workspace) and fully
//! deterministic: metric order comes from the registry's `BTreeMap`, trace
//! order from the emission order of the buffer.

use crate::metrics::{Histogram, Metric, Registry};
use crate::trace::{Phase, TraceEvent};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value per the Prometheus exposition format: backslash,
/// double quote, and line feed must be escaped inside `label="..."`.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry as a Prometheus-style text snapshot.
///
/// Histograms are rendered with cumulative `_bucket{le="..."}` series (one
/// per non-empty log₂ bucket, plus `+Inf`), `_sum`, and `_count`.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for (key, metric) in registry.snapshot() {
        if last_name.as_deref() != Some(key.name.as_str()) {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", key.name);
            last_name = Some(key.name.clone());
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    label_block(&key.labels, None),
                    c.value()
                );
            }
            Metric::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    label_block(&key.labels, None),
                    g.value()
                );
            }
            Metric::Histogram(h) => {
                let buckets = h.bucket_counts();
                let mut cumulative = 0u64;
                for (i, &count) in buckets.iter().enumerate() {
                    cumulative += count;
                    if count == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        key.name,
                        label_block(
                            &key.labels,
                            Some(("le", Histogram::bucket_upper_bound(i).to_string()))
                        ),
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    key.name,
                    label_block(&key.labels, Some(("le", "+Inf".to_string()))),
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    key.name,
                    label_block(&key.labels, None),
                    h.sum()
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    key.name,
                    label_block(&key.labels, None),
                    h.count()
                );
            }
        }
    }
    out
}

fn event_args_json(event: &TraceEvent) -> String {
    let mut args = String::new();
    for (i, (k, v)) in event.args.iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        let _ = write!(args, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    args
}

/// The causal-id suffix shared by both trace exporters: absent (empty) for
/// untraced events, so pre-causal traces render byte-identically to before.
fn causal_suffix(event: &TraceEvent) -> String {
    if event.trace_id == 0 {
        return String::new();
    }
    format!(
        ",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"",
        event.trace_id, event.span_id, event.parent_span_id
    )
}

/// Renders trace events as JSON Lines: one event object per line. Events
/// carrying a causal context get `trace`/`span`/`parent` hex-id fields.
#[must_use]
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = writeln!(
            out,
            "{{\"ts_ms\":{},\"ph\":\"{}\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{{}}}{}}}",
            event.ts_ms,
            event.phase.code(),
            json_escape(event.category),
            json_escape(&event.name),
            event_args_json(event),
            causal_suffix(event),
        );
    }
    out
}

/// Renders trace events as a chrome://tracing `trace_event` JSON document
/// (timestamps in microseconds, as the format requires).
///
/// Flow events (`ph:"s"`/`ph:"f"`) carry the chrome-required `id` field
/// (the trace id), with `bp:"e"` on the finish so the arrow binds to the
/// enclosing slice; other causal events carry the same ids as custom
/// `trace`/`span`/`parent` fields, which chrome ignores but the
/// critical-path tooling reads.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        let flow = match event.phase {
            Phase::FlowStart => format!(",\"id\":\"{:016x}\"", event.trace_id),
            Phase::FlowFinish => format!(",\"id\":\"{:016x}\",\"bp\":\"e\"", event.trace_id),
            _ => causal_suffix(event),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{{{}}}{}}}",
            json_escape(&event.name),
            json_escape(event.category),
            event.phase.code(),
            event.ts_ms * 1_000,
            event_args_json(event),
            flow,
        );
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::Phase;

    fn untraced(ts_ms: u64, phase: Phase, category: &'static str, name: &str) -> TraceEvent {
        TraceEvent {
            ts_ms,
            phase,
            category,
            name: name.to_string(),
            args: vec![],
            trace_id: 0,
            span_id: 0,
            parent_span_id: 0,
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                args: vec![("container", "c1".to_string())],
                ..untraced(100, Phase::Begin, "containers", "restart")
            },
            untraced(130, Phase::End, "containers", "restart"),
            TraceEvent {
                args: vec![("topic", "alerts \"hot\"".to_string())],
                ..untraced(150, Phase::Instant, "bus", "dead_letter")
            },
        ]
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_golden() {
        let r = Registry::new();
        r.counter("securecloud_bus_published_total").add(3);
        r.gauge("securecloud_bus_dead_letter_depth").set(2);
        let h = r.histogram_with("securecloud_latency_ms", &[("kind", "ack")]);
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(900);
        let text = prometheus_text(&r);
        let expected = "\
# TYPE securecloud_bus_dead_letter_depth gauge
securecloud_bus_dead_letter_depth 2
# TYPE securecloud_bus_published_total counter
securecloud_bus_published_total 3
# TYPE securecloud_latency_ms histogram
securecloud_latency_ms_bucket{kind=\"ack\",le=\"0\"} 1
securecloud_latency_ms_bucket{kind=\"ack\",le=\"3\"} 3
securecloud_latency_ms_bucket{kind=\"ack\",le=\"1023\"} 4
securecloud_latency_ms_bucket{kind=\"ack\",le=\"+Inf\"} 4
securecloud_latency_ms_sum{kind=\"ack\"} 906
securecloud_latency_ms_count{kind=\"ack\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_le_bounds_cover_u64_extremes() {
        // Zero observations must render under le="0" (bucket 0) and
        // u64::MAX under its exact final-bucket bound — not shifted into a
        // neighbouring bucket or collapsed into +Inf only.
        let r = Registry::new();
        let h = r.histogram("securecloud_extreme_ms");
        h.observe(0);
        h.observe(u64::MAX);
        let text = prometheus_text(&r);
        let expected = "\
# TYPE securecloud_extreme_ms histogram
securecloud_extreme_ms_bucket{le=\"0\"} 1
securecloud_extreme_ms_bucket{le=\"18446744073709551615\"} 2
securecloud_extreme_ms_bucket{le=\"+Inf\"} 2
securecloud_extreme_ms_sum 18446744073709551615
securecloud_extreme_ms_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn jsonl_golden() {
        let text = trace_jsonl(&sample_events());
        let expected = "\
{\"ts_ms\":100,\"ph\":\"B\",\"cat\":\"containers\",\"name\":\"restart\",\"args\":{\"container\":\"c1\"}}
{\"ts_ms\":130,\"ph\":\"E\",\"cat\":\"containers\",\"name\":\"restart\",\"args\":{}}
{\"ts_ms\":150,\"ph\":\"I\",\"cat\":\"bus\",\"name\":\"dead_letter\",\"args\":{\"topic\":\"alerts \\\"hot\\\"\"}}
";
        assert_eq!(text, expected);
    }

    #[test]
    fn chrome_trace_golden() {
        let text = chrome_trace_json(&sample_events()[..1]);
        let expected = "{\"traceEvents\":[\n{\"name\":\"restart\",\"cat\":\"containers\",\"ph\":\"B\",\"ts\":100000,\"pid\":1,\"tid\":1,\"args\":{\"container\":\"c1\"}}\n]}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        // Backslash, double quote, and newline must all be escaped per the
        // exposition format, or one hostile topic name corrupts the whole
        // snapshot.
        let r = Registry::new();
        r.counter_with(
            "securecloud_hostile_total",
            &[("topic", "a\\b\"c\nd"), ("ok", "plain")],
        )
        .inc();
        let text = prometheus_text(&r);
        let expected = "\
# TYPE securecloud_hostile_total counter
securecloud_hostile_total{ok=\"plain\",topic=\"a\\\\b\\\"c\\nd\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn jsonl_renders_causal_ids_only_when_present() {
        let traced = TraceEvent {
            trace_id: 0xAB,
            span_id: 0xCD,
            parent_span_id: 0,
            ..untraced(5, Phase::Begin, "replica", "quorum_write")
        };
        let text = trace_jsonl(&[traced, untraced(6, Phase::Instant, "bus", "tick")]);
        let expected = "\
{\"ts_ms\":5,\"ph\":\"B\",\"cat\":\"replica\",\"name\":\"quorum_write\",\"args\":{},\"trace\":\"00000000000000ab\",\"span\":\"00000000000000cd\",\"parent\":\"0000000000000000\"}
{\"ts_ms\":6,\"ph\":\"I\",\"cat\":\"bus\",\"name\":\"tick\",\"args\":{}}
";
        assert_eq!(text, expected);
    }

    #[test]
    fn chrome_flow_events_bind_by_trace_id() {
        let start = TraceEvent {
            trace_id: 0x11,
            ..untraced(1, Phase::FlowStart, "bus", "publish \"q\"")
        };
        let finish = TraceEvent {
            trace_id: 0x11,
            ..untraced(2, Phase::FlowFinish, "bus", "ack")
        };
        let text = chrome_trace_json(&[start, finish]);
        let expected = "{\"traceEvents\":[\n\
{\"name\":\"publish \\\"q\\\"\",\"cat\":\"bus\",\"ph\":\"s\",\"ts\":1000,\"pid\":1,\"tid\":1,\"args\":{},\"id\":\"0000000000000011\"},\n\
{\"name\":\"ack\",\"cat\":\"bus\",\"ph\":\"f\",\"ts\":2000,\"pid\":1,\"tid\":1,\"args\":{},\"id\":\"0000000000000011\",\"bp\":\"e\"}\n\
]}\n";
        assert_eq!(text, expected);
    }
}
