//! Structured tracing: spans and instant events stamped with the virtual
//! clock.
//!
//! Events accumulate in an in-memory buffer in emission order. Because
//! timestamps come from the deterministic simulation clock and instrumented
//! code runs single-threaded (background helper threads are deliberately
//! never instrumented), two equal-seed runs produce identical buffers and
//! therefore byte-identical exported traces.
//!
//! Events may carry causal identity (`trace_id`/`span_id`/
//! `parent_span_id`, see [`crate::context::TraceContext`]); `0` means
//! "no id", which keeps uninstrumented call sites and pre-existing
//! exporters unchanged.

use std::sync::Mutex;

/// The phase of a trace event, mirroring the chrome `trace_event` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Instant event (`I`).
    Instant,
    /// Flow start (`s`): the producer side of a cross-subsystem edge
    /// (e.g. a bus publish whose ack lands in another span tree).
    FlowStart,
    /// Flow finish (`f`): the consumer side of a cross-subsystem edge.
    FlowFinish,
}

impl Phase {
    /// The single-letter chrome `trace_event` phase code.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'I',
            Phase::FlowStart => 's',
            Phase::FlowFinish => 'f',
        }
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp, milliseconds.
    pub ts_ms: u64,
    /// Begin / End / Instant / FlowStart / FlowFinish.
    pub phase: Phase,
    /// Span taxonomy category, e.g. `"containers"` or `"scbr"`.
    pub category: &'static str,
    /// Event name, e.g. `"restart"`.
    pub name: String,
    /// Key/value annotations.
    pub args: Vec<(&'static str, String)>,
    /// Causal trace the event belongs to (`0` = untraced).
    pub trace_id: u64,
    /// The event's own span id (`0` = not a span).
    pub span_id: u64,
    /// The parent span within the same trace (`0` = root).
    pub parent_span_id: u64,
}

/// The shared trace buffer.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&self, event: TraceEvent) {
        self.events
            .lock()
            .expect("trace buffer poisoned")
            .push(event);
    }

    /// A copy of all events in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_keeps_emission_order() {
        let buf = TraceBuffer::new();
        for i in 0..3u64 {
            buf.push(TraceEvent {
                ts_ms: i,
                phase: Phase::Instant,
                category: "test",
                name: format!("e{i}"),
                args: vec![],
                trace_id: 0,
                span_id: 0,
                parent_span_id: 0,
            });
        }
        let events = buf.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "e0");
        assert_eq!(events[2].ts_ms, 2);
        assert!(!buf.is_empty());
    }

    #[test]
    fn flow_phases_have_chrome_codes() {
        assert_eq!(Phase::FlowStart.code(), 's');
        assert_eq!(Phase::FlowFinish.code(), 'f');
    }
}
