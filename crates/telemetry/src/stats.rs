//! Shared streaming-statistics helpers.
//!
//! One [`Welford`] (exact running mean/variance) and one [`Ema`]
//! (exponentially weighted mean/variance) implementation for the whole
//! workspace, replacing the hand-rolled copies that used to live in
//! `smartgrid`, `genpack`, and `mapreduce`.

/// Welford's online algorithm: numerically stable running mean and
/// (sample) variance over a stream of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation into the running statistics.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 before any observation).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 before two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (0 before two observations).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exponentially weighted moving mean and variance.
///
/// The first observation seeds the mean; afterwards
/// `mean += alpha * delta` and
/// `variance = (1 - alpha) * (variance + alpha * delta^2)` — the standard
/// EWMA/EWMV recurrence, weighting recent samples by `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ema {
    alpha: f64,
    mean: f64,
    variance: f64,
    samples: u64,
}

impl Ema {
    /// A smoother giving weight `alpha` in `(0, 1]` to each new sample.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            mean: 0.0,
            variance: 0.0,
            samples: 0,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        if self.samples == 0 {
            self.mean = value;
            self.variance = 0.0;
        } else {
            let delta = value - self.mean;
            self.mean += self.alpha * delta;
            self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * delta * delta);
        }
        self.samples += 1;
    }

    /// Number of observations so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Smoothed mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smoothed variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Smoothed standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// `mean + sigmas * stddev` — a headroom estimate over the smoothed
    /// distribution, as used by GenPack's resource monitor.
    #[must_use]
    pub fn headroom(&self, sigmas: f64) -> f64 {
        self.mean + sigmas * self.stddev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_textbook_values() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.observe(v);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_single_sample_has_zero_variance() {
        let mut w = Welford::new();
        w.observe(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
    }

    #[test]
    fn ema_first_sample_seeds_mean() {
        let mut e = Ema::new(0.2);
        e.observe(10.0);
        assert_eq!(e.mean(), 10.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn ema_recurrence() {
        let mut e = Ema::new(0.5);
        e.observe(0.0);
        e.observe(8.0);
        // delta = 8, mean = 0 + 0.5*8 = 4, var = 0.5 * (0 + 0.5*64) = 16.
        assert!((e.mean() - 4.0).abs() < 1e-12);
        assert!((e.variance() - 16.0).abs() < 1e-12);
        assert!((e.headroom(2.0) - (4.0 + 2.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ema_rejects_bad_alpha() {
        let _ = Ema::new(0.0);
    }
}
