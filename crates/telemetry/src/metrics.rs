//! Lock-cheap metrics: counters, gauges, log-bucketed histograms, and the
//! registry that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones around atomics; the hot path never takes a lock. The [`Registry`]
//! is only locked to *create or look up* a handle — subsystems hold their
//! handles in their own structs and update them directly.
//!
//! Two ways to get a handle:
//!
//! * **get-or-create** ([`Registry::counter`], [`Registry::histogram_with`],
//!   …): shared, labeled families. Two callers asking for the same
//!   name+labels get the *same* underlying metric and aggregate together.
//! * **adopt** ([`Registry::adopt_counter`], …): a subsystem that created a
//!   standalone handle (so it works without any registry attached) hands a
//!   clone of that handle to the registry for export. The subsystem's own
//!   view and the exported view are the same atomics; nothing is copied.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket `i` holds values whose bit
/// length is `i`, i.e. values in `[2^(i-1), 2^i - 1]` (bucket 0 holds only
/// zero). 64-bit values need 65 buckets.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Adds `delta` to `target` with saturating semantics: the stored value
/// never wraps, not even transiently. A compare-exchange loop recomputes
/// `saturating_add` against the freshest value, so a concurrent reader can
/// only ever observe monotonically increasing values capped at `u64::MAX`
/// (a plain `fetch_add` + clamp briefly exposes the wrapped value).
fn saturating_fetch_add(target: &AtomicU64, delta: u64) {
    let mut current = target.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(delta);
        match target.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// A monotonically increasing counter. Increments saturate at `u64::MAX`
/// instead of wrapping, so a runaway counter reads as "pegged", never as a
/// small number again.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one (saturating).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta`, saturating at `u64::MAX`. Readers never see a
    /// wrapped value, even mid-race.
    pub fn add(&self, delta: u64) {
        saturating_fetch_add(&self.value, delta);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, residency counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` observations with log₂ buckets.
///
/// Bucket `i` counts observations whose bit length is `i`; its inclusive
/// upper bound is `2^i - 1` (`u64::MAX` for the last bucket). The scheme is
/// branch-free — the bucket index is `64 - leading_zeros` — and spans the
/// full `u64` range, which suits cycle and latency measurements that cover
/// many orders of magnitude.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: the value's bit length.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `index`.
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation. The running sum saturates at `u64::MAX`
    /// without ever exposing a wrapped intermediate to concurrent readers.
    pub fn observe(&self, value: u64) {
        self.inner.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.inner.sum, value);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, non-cumulative.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.inner.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// An upper bound on the `percentile`-th percentile observation: the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches that rank. Exact to within the log₂ bucket width, which is
    /// all the scaling policies and benchmark tables need. Returns `None`
    /// for an empty histogram — "no data yet" is not a measured 0 ms, and
    /// warmup call sites must treat the two differently; `percentile` is
    /// clamped to `1..=100`.
    #[must_use]
    pub fn percentile_upper_bound(&self, percentile: u8) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let pct = u128::from(percentile.clamp(1, 100));
        let rank = u64::try_from((u128::from(total) * pct).div_ceil(100)).unwrap_or(total);
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for (index, count) in self.bucket_counts().iter().enumerate() {
            cumulative = cumulative.saturating_add(*count);
            if cumulative >= rank {
                return Some(Self::bucket_upper_bound(index));
            }
        }
        Some(Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Folds another histogram's observations into this one: bucket-wise
    /// addition, exactly as if every observation had been recorded on a
    /// shared handle. Used by [`Registry::merge_from`].
    pub fn merge_from(&self, other: &Histogram) {
        for (bucket, count) in self.inner.buckets.iter().zip(other.bucket_counts()) {
            bucket.fetch_add(count, Ordering::Relaxed);
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        saturating_fetch_add(&self.inner.sum, other.sum());
    }
}

/// A metric's identity in the registry: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `securecloud_bus_published_total`.
    pub name: String,
    /// Label pairs, kept sorted for deterministic export order.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// The metric registry: a named, labeled view over live metric handles.
///
/// Iteration order (and therefore exporter output order) is the `BTreeMap`
/// order of [`MetricKey`] — deterministic regardless of registration order.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    /// Keys registered via the adopt-style constructors. [`Registry::merge_from`]
    /// replays their last-adopter-wins semantics instead of aggregating.
    adopted: Mutex<std::collections::BTreeSet<MetricKey>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_create(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates a labeled counter. Same name+labels → same handle.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_create(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a labeled gauge.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_create(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Gets or creates a labeled histogram.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different metric type.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_create(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    fn adopt(&self, name: &str, labels: &[(&str, &str)], metric: Metric) {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        // Last adopter wins the export slot. Instances that want to
        // aggregate should use the get-or-create constructors instead.
        self.adopted
            .lock()
            .expect("registry poisoned")
            .insert(key.clone());
        metrics.insert(key, metric);
    }

    /// Registers an existing counter handle under `name` for export. The
    /// registry and the caller share the same underlying atomics.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        self.adopt(name, labels, Metric::Counter(counter.clone()));
    }

    /// Registers an existing gauge handle under `name` for export.
    pub fn adopt_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.adopt(name, labels, Metric::Gauge(gauge.clone()));
    }

    /// Registers an existing histogram handle under `name` for export.
    pub fn adopt_histogram(&self, name: &str, labels: &[(&str, &str)], histogram: &Histogram) {
        self.adopt(name, labels, Metric::Histogram(histogram.clone()));
    }

    /// A deterministic snapshot of every registered metric, in export order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(MetricKey, Metric)> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .iter()
            .map(|(k, m)| (k.clone(), m.clone()))
            .collect()
    }

    /// Folds another registry's metrics into this one, preserving each
    /// registration style's semantics:
    ///
    /// - keys the other registry **adopted** replace the slot here (and stay
    ///   marked adopted), mirroring the live last-adopter-wins behaviour;
    /// - get-or-create keys aggregate: counters add, gauges take the other's
    ///   value (set-style, last writer wins), histograms merge bucket-wise;
    /// - keys absent here share the other's handle directly.
    ///
    /// Merging registries in a fixed order therefore produces the same
    /// snapshot as if every metric had been recorded on one shared registry
    /// in that order.
    ///
    /// # Panics
    /// Panics if a key is registered with different metric types in the two
    /// registries, matching the get-or-create constructors.
    pub fn merge_from(&self, other: &Registry) {
        let other_metrics = other.metrics.lock().expect("registry poisoned");
        let other_adopted = other.adopted.lock().expect("registry poisoned");
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let mut adopted = self.adopted.lock().expect("registry poisoned");
        for (key, theirs) in other_metrics.iter() {
            if other_adopted.contains(key) {
                adopted.insert(key.clone());
                metrics.insert(key.clone(), theirs.clone());
                continue;
            }
            match metrics.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(slot) => match (slot.get(), theirs) {
                    (Metric::Counter(ours), Metric::Counter(theirs)) => {
                        ours.add(theirs.value());
                    }
                    (Metric::Gauge(ours), Metric::Gauge(theirs)) => {
                        ours.set(theirs.value());
                    }
                    (Metric::Histogram(ours), Metric::Histogram(theirs)) => {
                        ours.merge_from(theirs);
                    }
                    (ours, theirs) => {
                        panic!(
                            "metric {} merged as mismatched types {ours:?} vs {theirs:?}",
                            key.name
                        )
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.value(), u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_saturation_never_exposes_wrapped_value() {
        // Hammer a near-ceiling counter from several threads; every
        // intermediate read must be >= the starting value (the old
        // fetch_add + clamp pattern could transiently expose a tiny
        // wrapped value to a concurrent reader).
        let c = Counter::new();
        let start = u64::MAX - 16;
        c.add(start);
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        c.add(7);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            while done.load(Ordering::Relaxed) < 4 {
                assert!(c.value() >= start, "reader observed a wrapped counter");
            }
        });
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn histogram_sum_saturates_without_wrapping() {
        let h = Histogram::new();
        h.observe(u64::MAX - 1);
        h.observe(5);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        h.observe(1);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn merge_from_saturates_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(u64::MAX - 1);
        b.observe(u64::MAX - 1);
        a.merge_from(&b);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 2);
        // Bucket counts still add exactly.
        assert_eq!(a.bucket_counts()[64], 2);
    }

    #[test]
    fn gauge_tracks_depth() {
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.value(), 2);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn histogram_bucket_edge_cases_pinned() {
        // The two extremes of the u64 range are load-bearing for exporters:
        // zero must land in bucket 0 (upper bound "0") and u64::MAX in the
        // final bucket 64 (upper bound u64::MAX), with merge_from keeping
        // both in place.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // Out-of-range indices clamp to the final bound rather than shifting.
        assert_eq!(Histogram::bucket_upper_bound(65), u64::MAX);
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        let merged = Histogram::new();
        merged.merge_from(&h);
        let buckets = merged.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[64], 1);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i holds values with bit length i: [2^(i-1), 2^i - 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(8), 255);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // Every boundary value lands in the bucket whose upper bound it is.
        for i in 1..64 {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i);
            assert_eq!(Histogram::bucket_index(ub + 1), i + 1);
        }
    }

    #[test]
    fn percentile_upper_bound_walks_cumulative_buckets() {
        let h = Histogram::new();
        assert_eq!(h.percentile_upper_bound(99), None, "empty histogram");
        for _ in 0..99 {
            h.observe(3); // bucket 2, upper bound 3
        }
        h.observe(1_000); // bucket 10, upper bound 1023
        assert_eq!(h.percentile_upper_bound(50), Some(3));
        assert_eq!(h.percentile_upper_bound(99), Some(3));
        assert_eq!(h.percentile_upper_bound(100), Some(1023));
        // A single observation is every percentile.
        let single = Histogram::new();
        single.observe(7);
        assert_eq!(single.percentile_upper_bound(1), Some(7));
        assert_eq!(single.percentile_upper_bound(99), Some(7));
    }

    #[test]
    fn histogram_observes_into_buckets() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[11], 1);
    }

    #[test]
    fn registry_shares_handles_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter_with("hits", &[("kind", "read")]);
        let b = r.counter_with("hits", &[("kind", "read")]);
        let other = r.counter_with("hits", &[("kind", "write")]);
        a.add(2);
        b.add(3);
        other.inc();
        assert_eq!(a.value(), 5);
        assert_eq!(other.value(), 1);
    }

    #[test]
    fn adopt_exports_live_handle() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(7);
        r.adopt_counter("adopted_total", &[], &c);
        c.add(1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        match &snap[0].1 {
            Metric::Counter(exported) => assert_eq!(exported.value(), 8),
            other => panic!("unexpected metric {other:?}"),
        }
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let r = Registry::new();
        r.counter("zzz_total");
        r.counter("aaa_total");
        r.counter_with("mid_total", &[("b", "2")]);
        r.counter_with("mid_total", &[("a", "1")]);
        let names: Vec<String> = r
            .snapshot()
            .into_iter()
            .map(|(k, _)| format!("{}{:?}", k.name, k.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
