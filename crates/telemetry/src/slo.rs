//! The SLO engine: declarative objectives evaluated as multi-window burn
//! rates over the live metric handles.
//!
//! An [`SloSpec`] declares an objective ("publish-to-ack p99 ≤ 250 ms with
//! a 5% error budget") against a live [`Histogram`] or a pair of
//! [`Counter`]s. Each engine tick samples the cumulative (total, bad)
//! counts and evaluates the burn rate — the fraction of the error budget
//! consumed per unit of traffic — over a **fast** and a **slow** trailing
//! window, the standard multi-window construction that makes alerts both
//! quick to fire under a real regression and immune to single-tick noise.
//! An alert fires when *both* windows burn at ≥ the configured multiple of
//! the budget.
//!
//! Everything is integer arithmetic over deterministic counters sampled on
//! the virtual clock, so the alert stream is byte-identical across
//! equal-seed runs at any `--jobs` value.

use crate::metrics::{Counter, Histogram};
use crate::{Telemetry, TraceContext};
use std::collections::VecDeque;
use std::sync::Arc;

/// What an SLO measures.
#[derive(Debug, Clone)]
pub enum SloObjective {
    /// Observations above `max_ms` in `histogram` are "bad" (latency SLO:
    /// e.g. publish-to-ack p99 ≤ `max_ms`).
    LatencyAbove {
        /// The latency histogram to watch.
        histogram: Histogram,
        /// Inclusive threshold: observations above this are budget burns.
        max_ms: u64,
    },
    /// `bad` counts out of `total` are budget burns (durability/error SLO:
    /// e.g. quorum-refused writes out of attempted writes).
    ErrorRatio {
        /// All attempts.
        total: Counter,
        /// Failed attempts.
        bad: Counter,
    },
}

/// One declarative objective plus its burn-rate alerting shape.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name, e.g. `"publish_to_ack_p99"`. Appears in alerts.
    pub name: String,
    /// What is measured.
    pub objective: SloObjective,
    /// Error budget in parts-per-million of observations (e.g. 50_000 =
    /// 5% of observations may be bad before the budget is spent).
    pub budget_ppm: u64,
    /// Fast trailing window, in engine ticks.
    pub fast_window_ticks: usize,
    /// Slow trailing window, in engine ticks. Must be ≥ the fast window.
    pub slow_window_ticks: usize,
    /// Alert when both windows burn at ≥ this multiple of the budget,
    /// scaled ×100 (e.g. 200 = 2.0× budget).
    pub burn_threshold_x100: u64,
}

impl SloSpec {
    /// A latency objective with the standard 2× multi-window shape.
    #[must_use]
    pub fn latency(name: &str, histogram: Histogram, max_ms: u64, budget_ppm: u64) -> Self {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::LatencyAbove { histogram, max_ms },
            budget_ppm,
            fast_window_ticks: 3,
            slow_window_ticks: 12,
            burn_threshold_x100: 200,
        }
    }

    /// An error-ratio objective with the standard 2× multi-window shape.
    #[must_use]
    pub fn error_ratio(name: &str, total: Counter, bad: Counter, budget_ppm: u64) -> Self {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::ErrorRatio { total, bad },
            budget_ppm,
            fast_window_ticks: 3,
            slow_window_ticks: 12,
            burn_threshold_x100: 200,
        }
    }
}

/// One fired burn-rate alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurnAlert {
    /// The objective that fired.
    pub slo: String,
    /// Virtual time of the firing tick.
    pub at_ms: u64,
    /// Fast-window burn rate, ×100 (100 = exactly at budget).
    pub fast_burn_x100: u64,
    /// Slow-window burn rate, ×100.
    pub slow_burn_x100: u64,
}

impl BurnAlert {
    /// Deterministic one-line rendering for alert-stream digests.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "t={} slo={} fast_burn={}.{:02}x slow_burn={}.{:02}x",
            self.at_ms,
            self.slo,
            self.fast_burn_x100 / 100,
            self.fast_burn_x100 % 100,
            self.slow_burn_x100 / 100,
            self.slow_burn_x100 % 100,
        )
    }
}

/// Cumulative (total, bad) sample at one tick.
#[derive(Debug, Clone, Copy)]
struct Sample {
    total: u64,
    bad: u64,
}

#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    /// Trailing cumulative samples, newest last; sized to the slow window.
    samples: VecDeque<Sample>,
    /// Whether the objective burned above threshold at the last tick.
    burning: bool,
}

impl SloState {
    fn sample(&self) -> Sample {
        match &self.spec.objective {
            SloObjective::LatencyAbove { histogram, max_ms } => {
                let mut bad = 0u64;
                for (index, count) in histogram.bucket_counts().iter().enumerate() {
                    // A bucket is bad iff even its *lower* bound exceeds the
                    // threshold: bucket index i covers
                    // (upper_bound(i-1), upper_bound(i)], so compare the
                    // previous bucket's upper bound.
                    let lower = if index == 0 {
                        0
                    } else {
                        Histogram::bucket_upper_bound(index - 1)
                    };
                    if lower >= *max_ms {
                        bad += count;
                    }
                }
                Sample {
                    total: histogram.count(),
                    bad,
                }
            }
            SloObjective::ErrorRatio { total, bad } => Sample {
                total: total.value(),
                bad: bad.value(),
            },
        }
    }

    /// Burn rate ×100 over the trailing `window` ticks; `None` without
    /// traffic in the window (no data never alerts).
    fn burn_x100(&self, window: usize) -> Option<u64> {
        let newest = *self.samples.back()?;
        let base_index = self.samples.len().saturating_sub(window + 1);
        let oldest = *self.samples.get(base_index)?;
        let total_delta = newest.total.saturating_sub(oldest.total);
        let bad_delta = newest.bad.saturating_sub(oldest.bad);
        if total_delta == 0 || self.spec.budget_ppm == 0 {
            return None;
        }
        // burn = (bad/total) / (budget_ppm/1e6), reported ×100.
        Some((bad_delta * 1_000_000 * 100) / (total_delta * self.spec.budget_ppm))
    }
}

/// Evaluates a set of [`SloSpec`]s tick by tick, emitting deterministic
/// alert events into the telemetry trace and an append-only alert log.
#[derive(Debug)]
pub struct SloEngine {
    telemetry: Arc<Telemetry>,
    slos: Vec<SloState>,
    alerts: Vec<BurnAlert>,
}

impl SloEngine {
    /// An engine recording alerts through `telemetry`.
    #[must_use]
    pub fn new(telemetry: Arc<Telemetry>) -> Self {
        SloEngine {
            telemetry,
            slos: Vec::new(),
            alerts: Vec::new(),
        }
    }

    /// Registers one objective.
    pub fn add(&mut self, spec: SloSpec) {
        let capacity = spec.slow_window_ticks + 1;
        self.slos.push(SloState {
            spec,
            samples: VecDeque::with_capacity(capacity),
            burning: false,
        });
    }

    /// Number of registered objectives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// Whether no objectives are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Samples every objective at virtual time `now_ms` and evaluates the
    /// burn windows. Returns whether any objective is currently burning
    /// above threshold (the controller's extra scaling signal). Each
    /// crossing into the burning state appends a [`BurnAlert`] and emits a
    /// deterministic `("slo", "burn_alert")` trace event.
    pub fn tick(&mut self, now_ms: u64) -> bool {
        let mut any_burning = false;
        for state in &mut self.slos {
            let sample = state.sample();
            if state.samples.len() > state.spec.slow_window_ticks {
                state.samples.pop_front();
            }
            state.samples.push_back(sample);

            let fast = state.burn_x100(state.spec.fast_window_ticks);
            let slow = state.burn_x100(state.spec.slow_window_ticks);
            let burning = match (fast, slow) {
                (Some(fast), Some(slow)) => {
                    fast >= state.spec.burn_threshold_x100 && slow >= state.spec.burn_threshold_x100
                }
                _ => false,
            };
            if burning && !state.burning {
                let alert = BurnAlert {
                    slo: state.spec.name.clone(),
                    at_ms: now_ms,
                    fast_burn_x100: fast.unwrap_or(0),
                    slow_burn_x100: slow.unwrap_or(0),
                };
                self.telemetry.event_ctx(
                    "slo",
                    "burn_alert",
                    vec![
                        ("slo", alert.slo.clone()),
                        ("fast_burn_x100", alert.fast_burn_x100.to_string()),
                        ("slow_burn_x100", alert.slow_burn_x100.to_string()),
                    ],
                    TraceContext::none(),
                );
                self.alerts.push(alert);
            }
            state.burning = burning;
            any_burning |= burning;
        }
        any_burning
    }

    /// Whether any objective burned above threshold at the last tick.
    #[must_use]
    pub fn breaching(&self) -> bool {
        self.slos.iter().any(|s| s.burning)
    }

    /// Every alert fired so far, in firing order.
    #[must_use]
    pub fn alerts(&self) -> &[BurnAlert] {
        &self.alerts
    }

    /// The alert stream as deterministic text, one alert per line.
    #[must_use]
    pub fn alert_stream(&self) -> String {
        let mut out = String::new();
        for alert in &self.alerts {
            out.push_str(&alert.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_burn_fires_once_per_crossing_and_clears() {
        let telemetry = Arc::new(Telemetry::new());
        let h = telemetry.histogram("securecloud_test_lat_ms");
        let mut engine = SloEngine::new(telemetry.clone());
        engine.add(SloSpec {
            fast_window_ticks: 2,
            slow_window_ticks: 4,
            ..SloSpec::latency("lat_p99", h.clone(), 100, 100_000)
        });

        // Healthy traffic: all observations under threshold, no alerts.
        for tick in 0..5u64 {
            for _ in 0..10 {
                h.observe(10);
            }
            assert!(!engine.tick(tick * 100));
        }
        assert!(engine.alerts().is_empty());

        // Regression: every observation lands above 100ms → burn 10x.
        let mut fired = false;
        for tick in 5..9u64 {
            for _ in 0..10 {
                h.observe(500);
            }
            fired |= engine.tick(tick * 100);
        }
        assert!(fired, "sustained regression must alert");
        assert_eq!(engine.alerts().len(), 1, "one alert per crossing");
        assert!(engine.breaching());
        let stream = engine.alert_stream();
        assert!(stream.contains("slo=lat_p99"), "{stream}");

        // Recovery: fast window drains below threshold, alert state clears.
        for tick in 9..20u64 {
            for _ in 0..100 {
                h.observe(10);
            }
            engine.tick(tick * 100);
        }
        assert!(!engine.breaching());
        assert_eq!(engine.alerts().len(), 1, "no refire without a crossing");
        // The crossing left exactly one deterministic trace event.
        let events = telemetry.trace_events();
        let alerts: Vec<_> = events.iter().filter(|e| e.name == "burn_alert").collect();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].category, "slo");
    }

    #[test]
    fn error_ratio_burns_on_failures_and_empty_windows_never_alert() {
        let telemetry = Arc::new(Telemetry::new());
        let total = telemetry.counter("securecloud_writes_total");
        let bad = telemetry.counter("securecloud_writes_refused_total");
        let mut engine = SloEngine::new(telemetry);
        engine.add(SloSpec {
            fast_window_ticks: 1,
            slow_window_ticks: 2,
            ..SloSpec::error_ratio("durability", total.clone(), bad.clone(), 10_000)
        });

        // No traffic at all: windows are empty, never alerting.
        for tick in 0..4u64 {
            assert!(!engine.tick(tick));
        }

        // 50% failures against a 1% budget: 50x burn, alert fires.
        for tick in 4..8u64 {
            total.add(10);
            bad.add(5);
            engine.tick(tick);
        }
        assert_eq!(engine.alerts().len(), 1);
        assert!(engine.alerts()[0].fast_burn_x100 >= 200);
    }
}
