//! Critical-path analysis: folds finished causal traces into per-subsystem
//! latency attribution.
//!
//! The analyzer consumes the trace buffer and reconstructs span trees from
//! causal ids: `Begin`/`End` pairs match by `span_id` (never by stack
//! nesting — causal spans from different subsystems interleave freely in
//! the single emission stream), and `Instant` events carrying a `dur_ms`
//! arg act as retroactive leaf spans covering `[ts - dur, ts]` (the shape
//! queue-wait emits at ack time, when the wait is finally known). A span's
//! **self time** is its duration minus the summed durations of its causal
//! children; self time is attributed to the span's category, which is how
//! "where did the publish spend its time" decomposes into enclave
//! transition vs. crypto vs. queueing vs. quorum wait.
//!
//! Everything here is a pure function of the event buffer, so equal-seed
//! runs produce byte-identical rendered reports.

use crate::trace::{Phase, TraceEvent};
use std::collections::BTreeMap;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpanRec {
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    category: &'static str,
    name: String,
    start_ms: u64,
    end_ms: u64,
}

impl SpanRec {
    fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

/// Self-time attribution for one subsystem category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryAttribution {
    /// The span taxonomy category (e.g. `"replica"`, `"service"`).
    pub category: String,
    /// Total self time attributed to the category, virtual ms.
    pub self_ms: u64,
    /// Number of spans contributing.
    pub spans: u64,
}

/// The folded critical-path report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Per-category self-time attribution, sorted by descending self time
    /// (category name breaks ties) — the flame summary's top level.
    pub categories: Vec<CategoryAttribution>,
    /// Flame-folded lines (`cat:name;cat:name self_ms`), one per distinct
    /// root-to-leaf path with positive self time, in lexicographic order.
    pub folded: Vec<String>,
    /// Number of distinct traces that contributed at least one span.
    pub traces: u64,
    /// Total self time across every category, virtual ms.
    pub total_self_ms: u64,
}

impl CriticalPathReport {
    /// Renders the report as a deterministic flame-style text document.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {} trace(s), {} ms total self time",
            self.traces, self.total_self_ms
        );
        let _ = writeln!(out, "per-subsystem attribution:");
        for attribution in &self.categories {
            let pct = (attribution.self_ms * 100)
                .checked_div(self.total_self_ms)
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<12} {:>8} ms  {:>3}%  ({} spans)",
                attribution.category, attribution.self_ms, pct, attribution.spans
            );
        }
        let _ = writeln!(out, "flame (folded):");
        for line in &self.folded {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

/// Extracts the `dur_ms` arg of an instant event, if present and numeric.
fn instant_duration(event: &TraceEvent) -> Option<u64> {
    event
        .args
        .iter()
        .find(|(k, _)| *k == "dur_ms")
        .and_then(|(_, v)| v.parse().ok())
}

/// Reconstructs causal spans from the event stream.
fn collect_spans(events: &[TraceEvent]) -> Vec<SpanRec> {
    let mut open: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in events {
        if event.trace_id == 0 || event.span_id == 0 {
            continue;
        }
        match event.phase {
            Phase::Begin => {
                open.insert(
                    event.span_id,
                    SpanRec {
                        trace_id: event.trace_id,
                        span_id: event.span_id,
                        parent_span_id: event.parent_span_id,
                        category: event.category,
                        name: event.name.clone(),
                        start_ms: event.ts_ms,
                        end_ms: event.ts_ms,
                    },
                );
            }
            Phase::End => {
                if let Some(mut span) = open.remove(&event.span_id) {
                    span.end_ms = event.ts_ms;
                    spans.push(span);
                }
            }
            Phase::Instant => {
                if let Some(dur) = instant_duration(event) {
                    spans.push(SpanRec {
                        trace_id: event.trace_id,
                        span_id: event.span_id,
                        parent_span_id: event.parent_span_id,
                        category: event.category,
                        name: event.name.clone(),
                        start_ms: event.ts_ms.saturating_sub(dur),
                        end_ms: event.ts_ms,
                    });
                }
            }
            Phase::FlowStart | Phase::FlowFinish => {}
        }
    }
    // Emission order is deterministic, but sort by (trace, start, span) so
    // the report is stable even if instrumentation reorders emissions.
    spans.sort_by_key(|s| (s.trace_id, s.start_ms, s.span_id));
    spans
}

/// Folds finished traces into a [`CriticalPathReport`].
#[must_use]
pub fn analyze(events: &[TraceEvent]) -> CriticalPathReport {
    let spans = collect_spans(events);
    if spans.is_empty() {
        return CriticalPathReport::default();
    }

    // Children's summed durations per parent span, for self-time.
    let mut child_ms: BTreeMap<u64, u64> = BTreeMap::new();
    for span in &spans {
        if span.parent_span_id != 0 {
            *child_ms.entry(span.parent_span_id).or_default() += span.duration_ms();
        }
    }

    let index: BTreeMap<u64, &SpanRec> = spans.iter().map(|s| (s.span_id, s)).collect();
    let path_of = |span: &SpanRec| -> String {
        // Walk ancestors (bounded against malformed cycles).
        let mut parts = vec![format!("{}:{}", span.category, span.name)];
        let mut cursor = span.parent_span_id;
        for _ in 0..64 {
            let Some(parent) = (cursor != 0).then(|| index.get(&cursor)).flatten() else {
                break;
            };
            parts.push(format!("{}:{}", parent.category, parent.name));
            cursor = parent.parent_span_id;
        }
        parts.reverse();
        parts.join(";")
    };

    let mut traces: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
    traces.sort_unstable();
    traces.dedup();

    let mut per_category: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut per_path: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_self_ms = 0u64;
    for span in &spans {
        let self_ms = span
            .duration_ms()
            .saturating_sub(child_ms.get(&span.span_id).copied().unwrap_or(0));
        let slot = per_category.entry(span.category).or_default();
        slot.0 += self_ms;
        slot.1 += 1;
        total_self_ms += self_ms;
        if self_ms > 0 {
            *per_path.entry(path_of(span)).or_default() += self_ms;
        }
    }

    let mut categories: Vec<CategoryAttribution> = per_category
        .into_iter()
        .map(|(category, (self_ms, spans))| CategoryAttribution {
            category: category.to_string(),
            self_ms,
            spans,
        })
        .collect();
    categories.sort_by(|a, b| {
        b.self_ms
            .cmp(&a.self_ms)
            .then_with(|| a.category.cmp(&b.category))
    });

    CriticalPathReport {
        categories,
        folded: per_path
            .into_iter()
            .map(|(path, ms)| format!("{path} {ms}"))
            .collect(),
        traces: traces.len() as u64,
        total_self_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn self_time_subtracts_children_and_attributes_per_category() {
        let t = Telemetry::new();
        t.set_trace_seed(1);
        let root = t.mint_root();
        let child = t.mint_child(root);
        {
            let _outer = t.span_ctx("bus", "publish_to_ack", vec![], root);
            t.clock().set_at_least_ms(10);
            {
                let _inner = t.span_ctx("replica", "quorum_write", vec![], child);
                t.clock().set_at_least_ms(40);
            }
            t.clock().set_at_least_ms(50);
        }
        let report = analyze(&t.trace_events());
        assert_eq!(report.traces, 1);
        assert_eq!(report.total_self_ms, 50);
        assert_eq!(report.categories.len(), 2);
        // replica: 30ms leaf; bus: 50 total - 30 child = 20 self.
        assert_eq!(report.categories[0].category, "replica");
        assert_eq!(report.categories[0].self_ms, 30);
        assert_eq!(report.categories[1].category, "bus");
        assert_eq!(report.categories[1].self_ms, 20);
        assert_eq!(
            report.folded,
            vec![
                "bus:publish_to_ack 20".to_string(),
                "bus:publish_to_ack;replica:quorum_write 30".to_string(),
            ]
        );
        assert!(report.render().contains("replica"));
    }

    #[test]
    fn instants_with_dur_ms_act_as_retroactive_leaf_spans() {
        let t = Telemetry::new();
        t.set_trace_seed(2);
        let root = t.mint_root();
        let leaf = t.mint_child(root);
        t.clock().set_at_least_ms(100);
        t.event_ctx("queue", "wait", vec![("dur_ms", "40".to_string())], leaf);
        let report = analyze(&t.trace_events());
        assert_eq!(report.total_self_ms, 40);
        assert_eq!(report.categories[0].category, "queue");
    }

    #[test]
    fn untraced_events_and_unmatched_begins_are_ignored() {
        let t = Telemetry::new();
        t.event("bus", "plain", vec![]);
        let report = analyze(&t.trace_events());
        assert_eq!(report, CriticalPathReport::default());
    }
}
