//! Causal trace contexts and their deterministic minting.
//!
//! A [`TraceContext`] names one node of a request's causal tree: the trace
//! it belongs to, its own span, and its parent span. Contexts are minted by
//! a [`ContextMinter`] that mixes a run seed, the virtual birth time, and a
//! monotone sequence number through SplitMix64, so equal-seed runs mint the
//! same ids in the same order (instrumented code is single-threaded per
//! telemetry bundle) while distinct seeds diverge immediately.
//!
//! `0` is reserved as the "absent" id on every field, which is what lets a
//! context ride inside sealed frames as a fixed 24-byte header: an all-zero
//! header means "untraced" and costs nothing to producers that never mint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Wire size of an encoded context: three little-endian `u64`s.
pub const CONTEXT_WIRE_LEN: usize = 24;

/// The causal identity carried through every hop of a request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace (request) this context belongs to; `0` = untraced.
    pub trace_id: u64,
    /// This hop's own span id; `0` = not a span.
    pub span_id: u64,
    /// The parent span id; `0` = root of the trace.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The absent context (all ids zero).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this context carries no trace identity.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// Encodes the context as a fixed 24-byte little-endian header.
    #[must_use]
    pub fn encode(&self) -> [u8; CONTEXT_WIRE_LEN] {
        let mut out = [0u8; CONTEXT_WIRE_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.span_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.parent_span_id.to_le_bytes());
        out
    }

    /// Decodes a context from the first 24 bytes of `bytes`.
    ///
    /// Returns `None` when `bytes` is too short; an all-zero header decodes
    /// to [`TraceContext::none`].
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < CONTEXT_WIRE_LEN {
            return None;
        }
        let word = |range: std::ops::Range<usize>| {
            u64::from_le_bytes(bytes[range].try_into().expect("8-byte slice"))
        };
        Some(TraceContext {
            trace_id: word(0..8),
            span_id: word(8..16),
            parent_span_id: word(16..24),
        })
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints deterministic span/trace ids from `(seed, birth time, sequence)`.
#[derive(Debug, Default)]
pub struct ContextMinter {
    seed: AtomicU64,
    seq: AtomicU64,
}

impl ContextMinter {
    /// A minter for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ContextMinter {
            seed: AtomicU64::new(seed),
            seq: AtomicU64::new(0),
        }
    }

    /// (Re)keys the minter. Does not reset the sequence counter.
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
    }

    /// The current seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed.load(Ordering::Relaxed)
    }

    /// One fresh non-zero id derived from the seed and the next sequence
    /// number, optionally salted with `birth_ms`.
    fn next_id(&self, birth_ms: u64) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let seed = self.seed.load(Ordering::Relaxed);
        let id = mix64(mix64(seed ^ birth_ms.rotate_left(17)) ^ seq);
        // 0 is reserved for "absent"; remap the (astronomically rare) hit.
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Mints a root context for a request born at virtual time `birth_ms`.
    #[must_use]
    pub fn mint_root(&self, birth_ms: u64) -> TraceContext {
        let trace_id = self.next_id(birth_ms);
        let span_id = self.next_id(birth_ms);
        TraceContext {
            trace_id,
            span_id,
            parent_span_id: 0,
        }
    }

    /// Mints a child context under `parent` (same trace, fresh span).
    ///
    /// An absent parent yields an absent child: untraced requests stay
    /// untraced through every hop instead of growing orphan ids.
    #[must_use]
    pub fn mint_child(&self, parent: TraceContext) -> TraceContext {
        if parent.is_none() {
            return TraceContext::none();
        }
        TraceContext {
            trace_id: parent.trace_id,
            span_id: self.next_id(0),
            parent_span_id: parent.span_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0x0102_0304_0506_0708,
            span_id: 42,
            parent_span_id: u64::MAX,
        };
        let wire = ctx.encode();
        assert_eq!(TraceContext::decode(&wire), Some(ctx));
        assert_eq!(TraceContext::decode(&wire[..23]), None);
        assert_eq!(
            TraceContext::decode(&[0u8; CONTEXT_WIRE_LEN]),
            Some(TraceContext::none())
        );
    }

    #[test]
    fn minting_is_deterministic_per_seed_and_distinct_across_seeds() {
        let mint = |seed: u64| {
            let m = ContextMinter::new(seed);
            (m.mint_root(100), m.mint_root(100), m.mint_root(200))
        };
        assert_eq!(mint(7), mint(7), "equal seeds must mint equal ids");
        assert_ne!(mint(7).0, mint(8).0, "distinct seeds must diverge");
        let (a, b, _) = mint(7);
        assert_ne!(a.trace_id, b.trace_id, "sequence must advance");
    }

    #[test]
    fn children_stay_in_trace_and_absent_parents_stay_absent() {
        let m = ContextMinter::new(3);
        let root = m.mint_root(5);
        let child = m.mint_child(root);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        assert!(m.mint_child(TraceContext::none()).is_none());
        assert!(!root.is_none());
    }
}
