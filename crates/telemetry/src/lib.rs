//! # securecloud-telemetry
//!
//! The unified observability layer for the SecureCloud reproduction:
//!
//! * a lock-cheap **metrics registry** ([`metrics`]) — saturating counters,
//!   gauges, and log₂-bucketed histograms behind cheap `Arc` handles, with
//!   labeled families and deterministic export order;
//! * **structured tracing** ([`trace`]) — spans and instant events stamped
//!   with the *simulation virtual clock* ([`clock`]), the same deterministic
//!   time base `securecloud-faults` and the container engine use, so traces
//!   from equal-seed runs are byte-identical;
//! * **causal contexts** ([`context`]) — deterministic trace/span ids minted
//!   from `(seed, birth tick, sequence)` and propagated hop to hop, plus the
//!   fixed 24-byte header format they ride in inside sealed frames;
//! * a **critical-path analyzer** ([`critical_path`]) — folds finished
//!   traces into per-subsystem self-time attribution and a flame-style
//!   report;
//! * an **SLO engine** ([`slo`]) — declarative objectives evaluated as
//!   multi-window burn rates over the live metric handles, emitting
//!   deterministic alert events;
//! * **exporters** ([`export`]) — a Prometheus-style text snapshot, a JSONL
//!   trace writer, and a chrome://tracing `trace_event` JSON emitter with
//!   flow events linking spans across subsystems;
//! * shared **streaming statistics** ([`stats`]) — the one Welford and EMA
//!   implementation the rest of the workspace builds on.
//!
//! The [`Telemetry`] facade bundles a clock, a registry, a trace buffer,
//! and a context minter; subsystems receive an `Arc<Telemetry>` (or stay
//! un-instrumented at zero cost — every integration point is optional).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod context;
pub mod critical_path;
pub mod export;
pub mod metrics;
pub mod slo;
pub mod stats;
pub mod trace;

pub use clock::VirtualClock;
pub use context::{ContextMinter, TraceContext, CONTEXT_WIRE_LEN};
pub use critical_path::{CategoryAttribution, CriticalPathReport};
pub use metrics::{Counter, Gauge, Histogram, Metric, MetricKey, Registry};
pub use slo::{BurnAlert, SloEngine, SloSpec};
pub use stats::{Ema, Welford};
pub use trace::{Phase, TraceBuffer, TraceEvent};

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How many exemplar trace ids each key retains (largest-weight first).
const EXEMPLARS_PER_KEY: usize = 4;

/// Clock + registry + trace buffer + context minter, bundled for handing
/// around the stack.
#[derive(Debug, Default)]
pub struct Telemetry {
    clock: VirtualClock,
    registry: Registry,
    events: TraceBuffer,
    minter: ContextMinter,
    /// Largest-weight exemplar trace ids per key (e.g. slow publish-to-ack
    /// traces), so scaling decisions can cite the traces behind a signal.
    exemplars: Mutex<BTreeMap<&'static str, Vec<(u64, u64)>>>,
}

/// Where [`Telemetry::write_report`] put each artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Prometheus-style metrics snapshot.
    pub snapshot: PathBuf,
    /// JSONL span/event trace.
    pub trace_jsonl: PathBuf,
    /// chrome://tracing JSON document.
    pub trace_chrome: PathBuf,
}

impl Telemetry {
    /// A fresh telemetry bundle at virtual time 0 with no metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The metric registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// (Re)keys the context minter; equal seeds mint equal id sequences.
    pub fn set_trace_seed(&self, seed: u64) {
        self.minter.set_seed(seed);
    }

    /// Mints a root context for a request born *now* (virtual time).
    #[must_use]
    pub fn mint_root(&self) -> TraceContext {
        self.minter.mint_root(self.clock.now_ms())
    }

    /// Mints a child context under `parent` (same trace, fresh span).
    #[must_use]
    pub fn mint_child(&self, parent: TraceContext) -> TraceContext {
        self.minter.mint_child(parent)
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gets or creates a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry.counter_with(name, labels)
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Gets or creates a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry.gauge_with(name, labels)
    }

    /// Gets or creates an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// Gets or creates a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry.histogram_with(name, labels)
    }

    fn push(
        &self,
        phase: Phase,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
        ctx: TraceContext,
    ) {
        self.events.push(TraceEvent {
            ts_ms: self.clock.now_ms(),
            phase,
            category,
            name: name.to_string(),
            args,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
        });
    }

    /// Emits an instant event stamped with the current virtual time.
    pub fn event(&self, category: &'static str, name: &str, args: Vec<(&'static str, String)>) {
        self.push(Phase::Instant, category, name, args, TraceContext::none());
    }

    /// Emits an instant event carrying a causal context. An event whose
    /// args include a `dur_ms` key is treated as a retroactive leaf span by
    /// the critical-path analyzer (covering `[ts - dur, ts]`).
    pub fn event_ctx(
        &self,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
        ctx: TraceContext,
    ) {
        self.push(Phase::Instant, category, name, args, ctx);
    }

    /// Emits the producer half of a cross-subsystem flow edge.
    pub fn flow_start(&self, category: &'static str, name: &str, ctx: TraceContext) {
        self.push(Phase::FlowStart, category, name, vec![], ctx);
    }

    /// Emits the consumer half of a cross-subsystem flow edge.
    pub fn flow_finish(&self, category: &'static str, name: &str, ctx: TraceContext) {
        self.push(Phase::FlowFinish, category, name, vec![], ctx);
    }

    /// Opens a span (emits a `Begin` event now, an `End` event on drop).
    #[must_use]
    pub fn span(&self, category: &'static str, name: &str) -> Span<'_> {
        self.span_with(category, name, vec![])
    }

    /// Opens a span with annotations on the `Begin` event.
    #[must_use]
    pub fn span_with(
        &self,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
    ) -> Span<'_> {
        self.span_ctx(category, name, args, TraceContext::none())
    }

    /// Opens a span carrying a causal context; the `End` event repeats the
    /// ids so begin/end pairs match by `span_id`.
    #[must_use]
    pub fn span_ctx(
        &self,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
        ctx: TraceContext,
    ) -> Span<'_> {
        self.push(Phase::Begin, category, name, args, ctx);
        Span {
            telemetry: self,
            category,
            name: name.to_string(),
            ctx,
        }
    }

    /// Records a weighted exemplar trace id under `key`, retaining the
    /// [`EXEMPLARS_PER_KEY`] heaviest (ties broken oldest-first). Used to
    /// point a scaling decision's cause chain at the traces behind it.
    pub fn note_exemplar(&self, key: &'static str, trace_id: u64, weight: u64) {
        if trace_id == 0 {
            return;
        }
        let mut map = self.exemplars.lock().expect("exemplar map poisoned");
        let entry = map.entry(key).or_default();
        entry.push((weight, trace_id));
        // Stable: equal weights keep insertion order, so the retained set
        // is a pure function of the (deterministic) emission sequence.
        entry.sort_by_key(|&(weight, _)| std::cmp::Reverse(weight));
        entry.truncate(EXEMPLARS_PER_KEY);
    }

    /// The exemplar trace ids recorded under `key`, heaviest first.
    #[must_use]
    pub fn exemplars(&self, key: &'static str) -> Vec<u64> {
        self.exemplars
            .lock()
            .expect("exemplar map poisoned")
            .get(key)
            .map(|entries| entries.iter().map(|&(_, id)| id).collect())
            .unwrap_or_default()
    }

    /// A copy of all trace events in emission order.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.events.events()
    }

    /// The trace as JSON Lines.
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        export::trace_jsonl(&self.trace_events())
    }

    /// The trace as a chrome://tracing JSON document.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(&self.trace_events())
    }

    /// The metrics as a Prometheus-style text snapshot.
    #[must_use]
    pub fn prometheus(&self) -> String {
        export::prometheus_text(&self.registry)
    }

    /// Folds finished traces into a per-subsystem critical-path report.
    #[must_use]
    pub fn critical_path(&self) -> CriticalPathReport {
        critical_path::analyze(&self.trace_events())
    }

    /// Folds another telemetry bundle into this one.
    ///
    /// Designed for fan-out/fan-in runs: each worker records into a private
    /// bundle, and the coordinator absorbs the bundles **in a fixed order**
    /// (e.g. sweep-point index). Events are appended in the other bundle's
    /// emission order with their timestamps offset by this bundle's current
    /// virtual time; metrics merge per [`Registry::merge_from`]; the clock
    /// advances past the other bundle's end. Absorbing the same bundles in
    /// the same order therefore yields byte-identical exports regardless of
    /// how many workers produced them.
    pub fn absorb(&self, other: &Telemetry) {
        let base = self.clock.now_ms();
        for mut event in other.trace_events() {
            event.ts_ms += base;
            self.events.push(event);
        }
        self.registry.merge_from(other.registry());
        self.clock.set_at_least_ms(base + other.clock.now_ms());
    }

    /// Writes the full per-run report (`snapshot.prom`, `trace.jsonl`,
    /// `trace.chrome.json`) into `dir`, creating it if needed.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_report(&self, dir: &Path) -> io::Result<Report> {
        std::fs::create_dir_all(dir)?;
        let report = Report {
            snapshot: dir.join("snapshot.prom"),
            trace_jsonl: dir.join("trace.jsonl"),
            trace_chrome: dir.join("trace.chrome.json"),
        };
        std::fs::write(&report.snapshot, self.prometheus())?;
        std::fs::write(&report.trace_jsonl, self.trace_jsonl())?;
        std::fs::write(&report.trace_chrome, self.chrome_trace_json())?;
        Ok(report)
    }
}

/// A RAII span guard: emits the matching `End` event when dropped.
#[derive(Debug)]
pub struct Span<'t> {
    telemetry: &'t Telemetry,
    category: &'static str,
    name: String,
    ctx: TraceContext,
}

impl Span<'_> {
    /// The span's causal context (absent for uninstrumented spans).
    #[must_use]
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.telemetry.push(
            Phase::End,
            self.category,
            &std::mem::take(&mut self.name),
            vec![],
            self.ctx,
        );
    }
}

/// Like [`Span`] but owning an `Arc<Telemetry>`, for methods that cannot
/// hold a borrow of the telemetry bundle across the span's lifetime (e.g.
/// `&mut self` methods that keep telemetry in `self`).
#[derive(Debug)]
pub struct OwnedSpan {
    telemetry: Arc<Telemetry>,
    category: &'static str,
    name: String,
    ctx: TraceContext,
}

impl OwnedSpan {
    /// Opens a span (emits `Begin` now, `End` when the guard drops).
    #[must_use]
    pub fn open(telemetry: Arc<Telemetry>, category: &'static str, name: &str) -> Self {
        Self::open_with(telemetry, category, name, vec![])
    }

    /// Opens a span with annotations on the `Begin` event.
    #[must_use]
    pub fn open_with(
        telemetry: Arc<Telemetry>,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
    ) -> Self {
        Self::open_ctx(telemetry, category, name, args, TraceContext::none())
    }

    /// Opens a span carrying a causal context.
    #[must_use]
    pub fn open_ctx(
        telemetry: Arc<Telemetry>,
        category: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
        ctx: TraceContext,
    ) -> Self {
        telemetry.push(Phase::Begin, category, name, args, ctx);
        OwnedSpan {
            telemetry,
            category,
            name: name.to_string(),
            ctx,
        }
    }

    /// The span's causal context (absent for uninstrumented spans).
    #[must_use]
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        self.telemetry.push(
            Phase::End,
            self.category,
            &std::mem::take(&mut self.name),
            vec![],
            self.ctx,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_emits_begin_and_end_with_virtual_timestamps() {
        let t = Telemetry::new();
        t.clock().set_at_least_ms(10);
        {
            let _span = t.span_with("test", "work", vec![("job", "j1".to_string())]);
            t.clock().set_at_least_ms(25);
            t.event("test", "milestone", vec![]);
        }
        let events = t.trace_events();
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].phase, events[0].ts_ms), (Phase::Begin, 10));
        assert_eq!((events[1].phase, events[1].ts_ms), (Phase::Instant, 25));
        assert_eq!((events[2].phase, events[2].ts_ms), (Phase::End, 25));
        assert_eq!(events[2].name, "work");
    }

    #[test]
    fn ctx_spans_repeat_ids_on_both_ends_and_flows_carry_them() {
        let t = Telemetry::new();
        t.set_trace_seed(0xBEEF);
        let root = t.mint_root();
        let child = t.mint_child(root);
        t.flow_start("bus", "publish", root);
        {
            let span = t.span_ctx("service", "deliver", vec![], child);
            assert_eq!(span.ctx(), child);
        }
        t.flow_finish("bus", "ack", root);
        let events = t.trace_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].phase, Phase::FlowStart);
        assert_eq!(events[0].trace_id, root.trace_id);
        assert_eq!(events[1].span_id, child.span_id);
        assert_eq!(events[2].span_id, child.span_id, "End repeats span id");
        assert_eq!(events[2].parent_span_id, root.span_id);
        assert_eq!(events[3].phase, Phase::FlowFinish);
    }

    #[test]
    fn exemplars_keep_heaviest_trace_ids() {
        let t = Telemetry::new();
        t.note_exemplar("acks", 0, 999); // absent ids are dropped
        for (id, weight) in [(1, 10), (2, 50), (3, 20), (4, 5), (5, 40), (6, 30)] {
            t.note_exemplar("acks", id, weight);
        }
        assert_eq!(t.exemplars("acks"), vec![2, 5, 6, 3]);
        assert!(t.exemplars("other").is_empty());
    }

    #[test]
    fn absorb_merges_metrics_events_and_clock() {
        let main = Telemetry::new();
        main.counter("securecloud_ops_total").add(3);
        main.clock().set_at_least_ms(5);
        main.event("test", "before", vec![]);

        let worker = Telemetry::new();
        worker.counter("securecloud_ops_total").add(4);
        worker.gauge("securecloud_depth").set(7);
        worker.histogram("securecloud_lat_ms").observe(100);
        worker.clock().set_at_least_ms(2);
        worker.event("test", "inner", vec![]);

        main.absorb(&worker);

        assert_eq!(main.counter("securecloud_ops_total").value(), 7);
        assert_eq!(main.gauge("securecloud_depth").value(), 7);
        assert_eq!(main.histogram("securecloud_lat_ms").count(), 1);
        let events = main.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[1].name.as_str(), events[1].ts_ms), ("inner", 7));
        assert_eq!(main.clock().now_ms(), 7);
    }

    #[test]
    fn absorb_replays_adoption_with_last_adopter_wins() {
        let main = Telemetry::new();
        let stale = Counter::new();
        stale.add(1);
        main.registry()
            .adopt_counter("securecloud_engine_total", &[], &stale);

        let worker = Telemetry::new();
        let fresh = Counter::new();
        fresh.add(9);
        worker
            .registry()
            .adopt_counter("securecloud_engine_total", &[], &fresh);

        main.absorb(&worker);
        let snapshot = main.registry().snapshot();
        let (_, metric) = &snapshot[0];
        match metric {
            Metric::Counter(c) => assert_eq!(c.value(), 9),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn absorb_order_determines_output_identically_across_runs() {
        let build_worker = |n: u64| {
            let t = Telemetry::new();
            t.counter("securecloud_ops_total").add(n);
            t.event("test", &format!("point-{n}"), vec![]);
            t
        };
        let render = |workers: &[Telemetry]| {
            let main = Telemetry::new();
            for w in workers {
                main.absorb(w);
            }
            (main.prometheus(), main.trace_jsonl())
        };
        let a = render(&[build_worker(1), build_worker(2), build_worker(3)]);
        let b = render(&[build_worker(1), build_worker(2), build_worker(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn write_report_produces_all_three_files() {
        let t = Telemetry::new();
        t.counter("securecloud_demo_total").inc();
        t.event("test", "tick", vec![]);
        let dir = std::env::temp_dir().join("securecloud-telemetry-report-test");
        let report = t.write_report(&dir).expect("report");
        for path in [&report.snapshot, &report.trace_jsonl, &report.trace_chrome] {
            let data = std::fs::read_to_string(path).expect("artifact readable");
            assert!(!data.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
