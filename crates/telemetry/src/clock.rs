//! The simulation virtual clock.
//!
//! Every telemetry timestamp comes from this clock, never from the wall
//! clock, so traces from equal-seed runs are byte-identical. The clock only
//! moves forward: subsystems that each track their own `now_ms` (the event
//! bus, the container engine, the fault injector) publish their view through
//! [`VirtualClock::set_at_least_ms`], and the shared clock keeps the maximum.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic millisecond clock driven by the simulation, not the host.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t=0 ms.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Advances the clock to `ms` if that is later than the current time.
    /// Earlier values are ignored, keeping the clock monotonic even when
    /// several subsystems publish their local `now_ms` in any order.
    pub fn set_at_least_ms(&self, ms: u64) {
        self.now_ms.fetch_max(ms, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.set_at_least_ms(250);
        assert_eq!(clock.now_ms(), 250);
        clock.set_at_least_ms(100);
        assert_eq!(clock.now_ms(), 250, "earlier timestamps must not rewind");
        clock.set_at_least_ms(1_000);
        assert_eq!(clock.now_ms(), 1_000);
    }
}
