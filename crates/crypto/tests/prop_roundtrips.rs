//! Property-based tests for the crypto crate's core invariants.

use proptest::prelude::*;
use securecloud_crypto::gcm::AesGcm;
use securecloud_crypto::hmac::HmacSha256;
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::wire::Wire;
use securecloud_crypto::{ct_eq, hex, unhex};

proptest! {
    /// Sealing then opening under the same key/nonce/aad is the identity.
    #[test]
    fn gcm_seal_open_roundtrip(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..512),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let cipher = AesGcm::new(&key);
        let sealed = cipher.seal(&nonce, &plaintext, &aad);
        prop_assert_eq!(sealed.len(), plaintext.len() + 16);
        let opened = cipher.open(&nonce, &sealed, &aad).unwrap();
        prop_assert_eq!(opened, plaintext);
    }

    /// Any single-bit flip anywhere in the sealed blob is detected.
    #[test]
    fn gcm_bitflip_detected(
        key in prop::array::uniform16(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 1..128),
        flip_byte in 0usize..144,
        flip_bit in 0u8..8,
    ) {
        let cipher = AesGcm::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = cipher.seal(&nonce, &plaintext, b"");
        let idx = flip_byte % sealed.len();
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(cipher.open(&nonce, &sealed, b"").is_err());
    }

    /// Incremental hashing over arbitrary splits equals one-shot hashing.
    #[test]
    fn sha256_split_invariance(
        data in prop::collection::vec(any::<u8>(), 0..1024),
        split in 0usize..1024,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// HMAC verification accepts exactly the matching tag.
    #[test]
    fn hmac_verify_consistent(
        key in prop::collection::vec(any::<u8>(), 0..100),
        msg in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
        let mut bad = tag;
        bad[31] ^= 0x80;
        prop_assert!(!HmacSha256::verify(&key, &msg, &bad));
    }

    /// Hex encode/decode is a bijection on byte strings.
    #[test]
    fn hex_bijection(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
    }

    /// ct_eq agrees with ==.
    #[test]
    fn ct_eq_agrees_with_eq(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// Wire roundtrips for a compound type.
    #[test]
    fn wire_compound_roundtrip(
        n in any::<u64>(),
        s in "\\PC{0,50}",
        v in prop::collection::vec(any::<u32>(), 0..50),
        opt in prop::option::of(any::<i64>()),
    ) {
        let value = (n, s, (v, opt));
        let encoded = value.to_wire();
        let decoded = <(u64, String, (Vec<u32>, Option<i64>))>::from_wire(&encoded).unwrap();
        prop_assert_eq!(decoded, value);
    }

    /// The wire decoder never panics on arbitrary input bytes.
    #[test]
    fn wire_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = <(u64, String, Vec<u32>)>::from_wire(&bytes);
        let _ = String::from_wire(&bytes);
        let _ = Vec::<Vec<u8>>::from_wire(&bytes);
        let _ = Option::<(bool, u16)>::from_wire(&bytes);
    }

    /// X25519: derived shared secrets agree for random key pairs.
    #[test]
    fn x25519_dh_agreement(
        a in prop::array::uniform32(any::<u8>()),
        b in prop::array::uniform32(any::<u8>()),
    ) {
        use securecloud_crypto::x25519::{diffie_hellman, public_key};
        let pa = public_key(&a);
        let pb = public_key(&b);
        prop_assert_eq!(diffie_hellman(&a, &pb), diffie_hellman(&b, &pa));
    }
}

mod handshake_robustness {
    use proptest::prelude::*;
    use securecloud_crypto::channel::{
        memory_pair, ChannelConfig, Identity, SecureChannel, Transport,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A responder fed arbitrary bytes as a ClientHello errors cleanly
        /// (no panic, no channel).
        #[test]
        fn responder_survives_garbage_hello(garbage in prop::collection::vec(any::<u8>(), 0..200)) {
            let (attacker, server_side) = memory_pair();
            attacker.send_frame(garbage).unwrap();
            drop(attacker);
            let id = Identity::generate("server");
            let result = SecureChannel::respond(server_side, &id, ChannelConfig::default());
            prop_assert!(result.is_err());
        }

        /// A MITM flipping one bit of any server->client handshake frame
        /// (hello or finished MAC) aborts the initiator's handshake.
        #[test]
        fn initiator_rejects_tampered_handshake_frames(
            which_frame in 0usize..2,
            flip_byte in 0usize..64,
            flip_bit in 0u8..8,
        ) {
            struct Mitm {
                inner: securecloud_crypto::channel::MemoryTransport,
                recv_count: std::cell::Cell<usize>,
                target: usize,
                flip_byte: usize,
                flip_bit: u8,
            }
            impl Transport for Mitm {
                fn send_frame(&self, frame: Vec<u8>) -> Result<(), securecloud_crypto::CryptoError> {
                    self.inner.send_frame(frame)
                }
                fn recv_frame(&self) -> Result<Vec<u8>, securecloud_crypto::CryptoError> {
                    let mut frame = self.inner.recv_frame()?;
                    let n = self.recv_count.get();
                    self.recv_count.set(n + 1);
                    if n == self.target && !frame.is_empty() {
                        let idx = self.flip_byte % frame.len();
                        frame[idx] ^= 1 << self.flip_bit;
                    }
                    Ok(frame)
                }
            }
            let (client_side, server_side) = memory_pair();
            let client_id = Identity::generate("client");
            let server_id = Identity::generate("server");
            let server = std::thread::spawn(move || {
                SecureChannel::respond(server_side, &server_id, ChannelConfig::default())
            });
            let mitm = Mitm {
                inner: client_side,
                recv_count: std::cell::Cell::new(0),
                target: which_frame,
                flip_byte,
                flip_bit,
            };
            let result = SecureChannel::initiate(mitm, &client_id, ChannelConfig::default());
            prop_assert!(result.is_err(), "tampered handshake must fail");
            let _ = server.join();
        }
    }
}
