//! Property tests pinning the optimized kernels to the reference paths.
//!
//! The T-table AES rounds, windowed GHASH, and in-place seal/open in
//! `securecloud_crypto::{aes, gcm}` must be byte-for-byte interchangeable
//! with the textbook implementations retained in
//! `securecloud_crypto::reference` — on arbitrary inputs, not just the NIST
//! vectors. Lengths run 0..4 KiB so every batching boundary (empty input,
//! partial block, partial batch, multiple batches) is exercised.

use proptest::prelude::*;
use securecloud_crypto::gcm::{AesGcm, TAG_LEN};
use securecloud_crypto::reference;

proptest! {
    /// Table-driven AES block encryption equals the byte-wise rounds.
    #[test]
    fn aes_table_rounds_match_reference(
        key in prop::array::uniform16(any::<u8>()),
        block in prop::array::uniform16(any::<u8>()),
    ) {
        let aes = securecloud_crypto::aes::Aes128::new(&key);
        let mut fast = block;
        aes.encrypt_block(&mut fast);
        let mut scalar = block;
        reference::aes_encrypt_block(&aes, &mut scalar);
        prop_assert_eq!(fast, scalar);
    }

    /// Windowed GHASH equals the 128-iteration bit-loop GHASH.
    #[test]
    fn windowed_ghash_matches_reference(
        key in prop::array::uniform16(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..256),
        data in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let fast = AesGcm::new(&key).ghash(&aad, &data);
        let slow = reference::ghash(&key, &aad, &data);
        prop_assert_eq!(fast, slow);
    }

    /// The optimized seal (batched CTR + windowed GHASH, in-place core)
    /// produces the same `ciphertext || tag` as the reference seal.
    #[test]
    fn seal_matches_reference(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..4096),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let fast = AesGcm::new(&key).seal(&nonce, &plaintext, &aad);
        let slow = reference::seal(&key, &nonce, &plaintext, &aad);
        prop_assert_eq!(fast, slow);
    }

    /// The optimized open accepts exactly what the reference open accepts,
    /// and both recover the plaintext from either sealer's output.
    #[test]
    fn open_matches_reference(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..4096),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        corrupt in any::<bool>(),
        flip_byte in any::<usize>(),
    ) {
        let cipher = AesGcm::new(&key);
        let mut sealed = reference::seal(&key, &nonce, &plaintext, &aad);
        if corrupt {
            let idx = flip_byte % sealed.len();
            sealed[idx] ^= 0x01;
        }
        let fast = cipher.open(&nonce, &sealed, &aad);
        let slow = reference::open(&key, &nonce, &sealed, &aad);
        prop_assert_eq!(&fast, &slow);
        if corrupt {
            prop_assert!(fast.is_err());
        } else {
            prop_assert_eq!(fast.unwrap(), plaintext);
        }
    }

    /// In-place sealing over a caller-owned buffer equals the allocating
    /// API, and in-place opening restores the buffer exactly.
    #[test]
    fn in_place_matches_allocating(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..4096),
        aad in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let cipher = AesGcm::new(&key);
        let mut buf = plaintext.clone();
        cipher.seal_in_place(&nonce, &mut buf, &aad);
        prop_assert_eq!(&buf, &cipher.seal(&nonce, &plaintext, &aad));
        prop_assert_eq!(buf.len(), plaintext.len() + TAG_LEN);
        cipher.open_in_place(&nonce, &mut buf, &aad).unwrap();
        prop_assert_eq!(buf, plaintext);
    }
}
