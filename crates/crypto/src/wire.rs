//! A compact binary codec used throughout the workspace.
//!
//! The sanctioned dependency set contains serde but no serde *format* crate,
//! so SecureCloud components encode their wire structures with this small
//! codec instead: fixed-width little-endian integers, length-prefixed
//! sequences, and the [`impl_wire_struct!`](crate::impl_wire_struct) helper
//! macro for product types.
//!
//! Decoding is defensive: length prefixes are validated against the bytes
//! actually remaining, so malformed or truncated (potentially hostile) input
//! fails with [`CryptoError::Malformed`] instead of over-allocating.

use crate::CryptoError;
use std::collections::BTreeMap;

/// Types that can be encoded to / decoded from the SecureCloud wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value from `r`, advancing its position.
    ///
    /// # Errors
    ///
    /// [`CryptoError::Malformed`] if the input is truncated or invalid.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError>;

    /// Convenience: encodes into a fresh vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes from a slice, requiring all bytes be consumed.
    ///
    /// # Errors
    ///
    /// [`CryptoError::Malformed`] on truncated input or trailing bytes.
    fn from_wire(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CryptoError::Malformed(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(value)
    }
}

/// Cursor over a byte slice for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CryptoError::Malformed`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        if self.remaining() < n {
            return Err(CryptoError::Malformed(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a u32 length prefix and validates it against remaining input.
    fn length(&mut self) -> Result<usize, CryptoError> {
        let len = u32::decode(self)? as usize;
        if len > self.remaining() {
            return Err(CryptoError::Malformed(format!(
                "declared length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CryptoError::Malformed(format!("bool byte {other}"))),
        }
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CryptoError::Malformed("usize overflow".into()))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let len = r.length()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CryptoError::Malformed(format!("invalid utf-8: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let len = u32::decode(r)? as usize;
        // Each element takes at least one byte; bound allocation by input.
        if len > r.remaining() {
            return Err(CryptoError::Malformed(format!(
                "sequence length {len} exceeds input"
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<const N: usize> Wire for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(r.take(N)?.try_into().expect("sized take"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CryptoError::Malformed(format!("option tag {other}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let len = u32::decode(r)? as usize;
        if len > r.remaining() {
            return Err(CryptoError::Malformed(format!(
                "map length {len} exceeds input"
            )));
        }
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

/// Implements [`Wire`] for a struct by encoding its fields in order.
///
/// ```
/// use securecloud_crypto::impl_wire_struct;
/// use securecloud_crypto::wire::Wire;
///
/// #[derive(Debug, PartialEq)]
/// struct Reading { meter: u64, watts: f64 }
/// impl_wire_struct!(Reading { meter, watts });
///
/// let r = Reading { meter: 7, watts: 230.0 };
/// assert_eq!(Reading::from_wire(&r.to_wire()).unwrap(), r);
/// ```
#[macro_export]
macro_rules! impl_wire_struct {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::wire::Wire for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                $( $crate::wire::Wire::encode(&self.$field, out); )*
            }
            fn decode(r: &mut $crate::wire::Reader<'_>) -> Result<Self, $crate::CryptoError> {
                Ok($name { $( $field: $crate::wire::Wire::decode(r)? ),* })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrips() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(u64::from_wire(&v.to_wire()).unwrap(), v);
        }
        assert_eq!(i64::from_wire(&(-42i64).to_wire()).unwrap(), -42);
        assert_eq!(u8::from_wire(&[7]).unwrap(), 7);
    }

    #[test]
    fn string_and_vec_roundtrip() {
        let s = "héllo wörld".to_string();
        assert_eq!(String::from_wire(&s.to_wire()).unwrap(), s);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_wire(&v.to_wire()).unwrap(), v);
        let bytes: Vec<u8> = vec![0, 255, 128];
        assert_eq!(Vec::<u8>::from_wire(&bytes.to_wire()).unwrap(), bytes);
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let some: Option<String> = Some("x".into());
        assert_eq!(Option::<String>::from_wire(&some.to_wire()).unwrap(), some);
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_wire(&none.to_wire()).unwrap(), none);
        let t = (1u8, "a".to_string(), vec![9u64]);
        assert_eq!(
            <(u8, String, Vec<u64>)>::from_wire(&t.to_wire()).unwrap(),
            t
        );
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        assert_eq!(BTreeMap::<String, u32>::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn truncated_input_fails() {
        let encoded = "hello".to_string().to_wire();
        for cut in 0..encoded.len() {
            assert!(String::from_wire(&encoded[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Declares a 4 GiB string with 2 bytes of payload.
        let mut evil = Vec::new();
        (u32::MAX).encode(&mut evil);
        evil.extend_from_slice(b"hi");
        assert!(String::from_wire(&evil).is_err());
        assert!(Vec::<u8>::from_wire(&evil).is_err());
        assert!(Vec::<u64>::from_wire(&evil).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = 5u32.to_wire();
        encoded.push(0);
        assert!(u32::from_wire(&encoded).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(bool::from_wire(&[2]).is_err());
        assert!(Option::<u8>::from_wire(&[9, 1]).is_err());
    }

    #[test]
    fn struct_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Nested {
            id: u32,
            tags: Vec<String>,
        }
        impl_wire_struct!(Nested { id, tags });
        #[derive(Debug, PartialEq)]
        struct Outer {
            nested: Nested,
            flag: bool,
        }
        // The macro works at function scope too (C-ANYWHERE).
        impl_wire_struct!(Outer { nested, flag });
        let v = Outer {
            nested: Nested {
                id: 3,
                tags: vec!["x".into(), "y".into()],
            },
            flag: true,
        };
        assert_eq!(Outer::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn fixed_array_roundtrip() {
        let a: [u8; 32] = [7u8; 32];
        assert_eq!(<[u8; 32]>::from_wire(&a.to_wire()).unwrap(), a);
        assert!(<[u8; 32]>::from_wire(&[0u8; 31]).is_err());
    }
}
