//! AES-128-GCM authenticated encryption (NIST SP 800-38D).

use crate::aes::Aes128;
use crate::CryptoError;

/// Length in bytes of the GCM authentication tag.
pub const TAG_LEN: usize = 16;
/// Length in bytes of the GCM nonce (96-bit IVs only).
pub const NONCE_LEN: usize = 12;

/// AES-128-GCM AEAD cipher.
///
/// ```
/// use securecloud_crypto::gcm::AesGcm;
///
/// let cipher = AesGcm::new(&[1u8; 16]);
/// let sealed = cipher.seal(&[2u8; 12], b"secret", b"assoc");
/// assert_eq!(cipher.open(&[2u8; 12], &sealed, b"assoc").unwrap(), b"secret");
/// assert!(cipher.open(&[2u8; 12], &sealed, b"tampered").is_err());
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes128,
    h: u128,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm").finish_non_exhaustive()
    }
}

fn gf128_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(buf)
}

impl AesGcm {
    /// Creates a GCM cipher from a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        AesGcm {
            aes,
            h: u128::from_be_bytes(h_block),
        }
    }

    fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut y = 0u128;
        for chunk in aad.chunks(16) {
            y = gf128_mul(y ^ block_to_u128(chunk), self.h);
        }
        for chunk in ciphertext.chunks(16) {
            y = gf128_mul(y ^ block_to_u128(chunk), self.h);
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        y = gf128_mul(y ^ lengths, self.h);
        y.to_be_bytes()
    }

    /// CTR over the message area: counter starts at inc32(J0) and increments
    /// only in the low 32 bits, per the GCM spec.
    fn gctr(&self, j0: &[u8; 16], buf: &mut [u8]) {
        let mut counter = u32::from_be_bytes(j0[12..16].try_into().expect("ctr"));
        let mut block = *j0;
        for chunk in buf.chunks_mut(16) {
            counter = counter.wrapping_add(1);
            block[12..16].copy_from_slice(&counter.to_be_bytes());
            let mut keystream = block;
            self.aes.encrypt_block(&mut keystream);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }

    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext` and returns `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let j0 = Self::j0(nonce);
        let mut out = plaintext.to_vec();
        self.gctr(&j0, &mut out);
        let s = self.ghash(aad, &out);
        let mut tag = j0;
        self.aes.encrypt_block(&mut tag);
        for (t, s) in tag.iter_mut().zip(s.iter()) {
            *t ^= s;
        }
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (as produced by [`AesGcm::seal`]) and returns the
    /// plaintext.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the input is shorter than a
    /// tag or the tag does not verify; no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        let s = self.ghash(aad, ciphertext);
        let mut expect = j0;
        self.aes.encrypt_block(&mut expect);
        for (t, s) in expect.iter_mut().zip(s.iter()) {
            *t ^= s;
        }
        if !crate::ct_eq(&expect, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        self.gctr(&j0, &mut out);
        Ok(out)
    }
}

/// Builds a deterministic 12-byte nonce from a 4-byte domain and an 8-byte
/// sequence number. Callers must never reuse a (key, domain, seq) triple.
#[must_use]
pub fn nonce_from_seq(domain: u32, seq: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&domain.to_be_bytes());
    nonce[4..].copy_from_slice(&seq.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    #[test]
    fn nist_case_1_empty() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_case_2_single_block() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    #[test]
    fn nist_case_3_four_blocks() {
        let key: [u8; 16] = unhex("feffe9928665731c6d6a8f9467308308")
            .unwrap()
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = unhex("cafebabefacedbaddecaf888")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = unhex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b391aafd255"
        ))
        .unwrap();
        let sealed = AesGcm::new(&key).seal(&nonce, &pt, b"");
        assert_eq!(
            hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091473f5985",
                "4d5c2af327cd64a62cf35abd2ba6fab4"
            )
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key: [u8; 16] = unhex("feffe9928665731c6d6a8f9467308308")
            .unwrap()
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = unhex("cafebabefacedbaddecaf888")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = unhex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b39"
        ))
        .unwrap();
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2").unwrap();
        let cipher = AesGcm::new(&key);
        let sealed = cipher.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091",
                "5bc94fbc3221a5db94fae95ae7121a47"
            )
        );
        assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), pt);
    }

    #[test]
    fn open_rejects_tampering() {
        let cipher = AesGcm::new(&[3u8; 16]);
        let nonce = [5u8; 12];
        let sealed = cipher.seal(&nonce, b"payload", b"aad");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                cipher.open(&nonce, &bad, b"aad"),
                Err(CryptoError::AuthenticationFailed),
                "flip at byte {i} must be detected"
            );
        }
        assert!(cipher.open(&[6u8; 12], &sealed, b"aad").is_err());
        assert!(cipher.open(&nonce, &sealed[..8], b"aad").is_err());
    }

    #[test]
    fn nonce_from_seq_unique() {
        let a = nonce_from_seq(1, 1);
        let b = nonce_from_seq(1, 2);
        let c = nonce_from_seq(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
