//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! GHASH runs windowed (Shoup's 8-bit table method, one table per byte
//! position): each cipher precomputes 16 tables of 256 multiples of its hash
//! key `H`, so one 16-byte block costs 16 *independent* table lookups XORed
//! together — no serial reduction chain — instead of the textbook
//! 128-iteration shift/XOR loop. The naive multiply survives as
//! [`crate::reference::gf128_mul`] and the two are property-tested for
//! equivalence. Table lookups are *not* constant-time; see DESIGN.md for why
//! that is acceptable in this simulator.
//!
//! Sealing is zero-copy at the core: [`AesGcm::seal_in_place_detached`] and
//! [`AesGcm::open_in_place_detached`] transform a caller-owned buffer, and
//! the allocating [`AesGcm::seal`]/[`AesGcm::open`] are thin wrappers.

use std::sync::OnceLock;

use crate::aes::{ctr_stream, Aes128};
use crate::CryptoError;

/// Length in bytes of the GCM authentication tag.
pub const TAG_LEN: usize = 16;
/// Length in bytes of the GCM nonce (96-bit IVs only).
pub const NONCE_LEN: usize = 12;

/// AES-128-GCM AEAD cipher.
///
/// ```
/// use securecloud_crypto::gcm::AesGcm;
///
/// let cipher = AesGcm::new(&[1u8; 16]);
/// let sealed = cipher.seal(&[2u8; 12], b"secret", b"assoc");
/// assert_eq!(cipher.open(&[2u8; 12], &sealed, b"assoc").unwrap(), b"secret");
/// assert!(cipher.open(&[2u8; 12], &sealed, b"tampered").is_err());
/// ```
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes128,
    /// Per-byte-position window tables: `tables[j][b]` is the product of the
    /// field element whose byte `j` (big-endian) is `b` with the hash key
    /// `H`, in GCM's reflected bit order. A block's GHASH multiply is then
    /// the XOR of 16 independent lookups. Boxed: 64 KiB per cipher instance.
    tables: Box<[[u128; 256]; 16]>,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm").finish_non_exhaustive()
    }
}

/// The GCM reduction polynomial bit pattern, already reflected: x^128 =
/// x^7 + x^2 + x + 1 lands in the top byte when bit 0 is the highest power.
const R: u128 = 0xe1 << 120;

/// Multiplies a field element by x (one bit shift toward the low end in
/// GCM's reflected order), folding the dropped bit back with `R`.
#[inline]
fn gf_shift1(v: u128) -> u128 {
    let carry = v & 1;
    let shifted = v >> 1;
    if carry == 1 {
        shifted ^ R
    } else {
        shifted
    }
}

/// H-independent reduction table: `rtab[b]` is `b` (as the *low* byte of a
/// field element) multiplied by x^8, i.e. what falls out when a product is
/// shifted down one byte. Shared by every cipher instance.
fn rtab() -> &'static [u128; 256] {
    static RTAB: OnceLock<[u128; 256]> = OnceLock::new();
    RTAB.get_or_init(|| {
        let mut rtab = [0u128; 256];
        for (b, entry) in rtab.iter_mut().enumerate() {
            let mut v = b as u128;
            for _ in 0..8 {
                v = gf_shift1(v);
            }
            *entry = v;
        }
        rtab
    })
}

/// Builds the per-byte-position window tables. Table 0 holds the 256 `H`
/// multiples for the top byte — powers of x by repeated halving from
/// `table[0x80] = H`, composites by XOR — and each following table is the
/// previous one multiplied by x^8 (one byte-shift down, via [`rtab`]).
fn window_tables(h: u128) -> Box<[[u128; 256]; 16]> {
    let rtab = rtab();
    let mut tables = Box::new([[0u128; 256]; 16]);
    let top = &mut tables[0];
    top[0x80] = h;
    let mut bit = 0x40usize;
    while bit > 0 {
        top[bit] = gf_shift1(top[bit << 1]);
        bit >>= 1;
    }
    for i in [2usize, 4, 8, 16, 32, 64, 128] {
        for j in 1..i {
            top[i + j] = top[i] ^ top[j];
        }
    }
    for j in 1..16 {
        for b in 0..256 {
            let v = tables[j - 1][b];
            tables[j][b] = (v >> 8) ^ rtab[(v & 0xff) as usize];
        }
    }
    tables
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(buf)
}

impl AesGcm {
    /// Creates a GCM cipher from a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        AesGcm {
            aes,
            tables: window_tables(u128::from_be_bytes(h_block)),
        }
    }

    /// Multiplies `y` by the hash key `H`: one lookup per byte of `y` in
    /// that byte position's table, all independent, XORed together.
    #[inline]
    fn mul_h(&self, y: u128) -> u128 {
        let bytes = y.to_be_bytes();
        let mut z = 0u128;
        for (table, &b) in self.tables.iter().zip(bytes.iter()) {
            z ^= table[b as usize];
        }
        z
    }

    /// The GHASH of `aad || ciphertext || lengths` under this cipher's hash
    /// key. Exposed for the crypto microbenchmark and equivalence tests; the
    /// AEAD entry points are [`AesGcm::seal`]/[`AesGcm::open`] and their
    /// in-place variants.
    #[must_use]
    pub fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut y = 0u128;
        for chunk in aad.chunks(16) {
            y = self.mul_h(y ^ block_to_u128(chunk));
        }
        for chunk in ciphertext.chunks(16) {
            y = self.mul_h(y ^ block_to_u128(chunk));
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        y = self.mul_h(y ^ lengths);
        y.to_be_bytes()
    }

    /// CTR over the message area: counter starts at inc32(J0) and increments
    /// only in the low 32 bits, per the GCM spec.
    fn gctr(&self, j0: &[u8; 16], buf: &mut [u8]) {
        let mut counter = u32::from_be_bytes(j0[12..16].try_into().expect("ctr"));
        let mut block = *j0;
        ctr_stream(&self.aes, buf, move || {
            counter = counter.wrapping_add(1);
            block[12..16].copy_from_slice(&counter.to_be_bytes());
            block
        });
    }

    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Computes the tag for `ciphertext` under `aad`: `E(J0) ^ GHASH`.
    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = self.ghash(aad, ciphertext);
        let mut tag = *j0;
        self.aes.encrypt_block(&mut tag);
        for (t, s) in tag.iter_mut().zip(s.iter()) {
            *t ^= s;
        }
        tag
    }

    /// Encrypts `buf` in place and returns the detached authentication tag.
    ///
    /// Zero-copy core of [`AesGcm::seal`]: the caller owns the buffer and
    /// decides where the tag goes.
    #[must_use]
    pub fn seal_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        buf: &mut [u8],
        aad: &[u8],
    ) -> [u8; TAG_LEN] {
        let j0 = Self::j0(nonce);
        self.gctr(&j0, buf);
        self.tag(&j0, aad, buf)
    }

    /// Verifies the detached `tag` over the ciphertext in `buf`, then
    /// decrypts `buf` in place.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify; the
    /// buffer is left encrypted (no plaintext is released).
    pub fn open_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
        aad: &[u8],
    ) -> Result<(), CryptoError> {
        let j0 = Self::j0(nonce);
        let expect = self.tag(&j0, aad, buf);
        if !crate::ct_eq(&expect, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        self.gctr(&j0, buf);
        Ok(())
    }

    /// Encrypts the contents of `buf` in place and appends the 16-byte tag,
    /// so `buf` ends up holding `ciphertext || tag` — the same layout
    /// [`AesGcm::seal`] returns, without the extra allocation.
    pub fn seal_in_place(&self, nonce: &[u8; NONCE_LEN], buf: &mut Vec<u8>, aad: &[u8]) {
        let tag = self.seal_in_place_detached(nonce, buf, aad);
        buf.extend_from_slice(&tag);
    }

    /// Verifies and decrypts `buf` (holding `ciphertext || tag`) in place,
    /// truncating the tag so `buf` ends up holding the plaintext.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the input is shorter than a
    /// tag or the tag does not verify; `buf` is left unmodified in that case.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        buf: &mut Vec<u8>,
        aad: &[u8],
    ) -> Result<(), CryptoError> {
        if buf.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let split = buf.len() - TAG_LEN;
        let (ciphertext, tag) = buf.split_at_mut(split);
        let tag: [u8; TAG_LEN] = (&*tag).try_into().expect("tag suffix");
        self.open_in_place_detached(nonce, ciphertext, &tag, aad)?;
        buf.truncate(split);
        Ok(())
    }

    /// Encrypts `plaintext` and returns `ciphertext || tag`.
    ///
    /// Thin wrapper over [`AesGcm::seal_in_place`] that pays one allocation
    /// for the output buffer.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_in_place(nonce, &mut out, aad);
        out
    }

    /// Decrypts `sealed` (as produced by [`AesGcm::seal`]) and returns the
    /// plaintext.
    ///
    /// Thin wrapper over [`AesGcm::open_in_place_detached`] that pays one
    /// allocation for the output buffer.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the input is shorter than a
    /// tag or the tag does not verify; no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag.try_into().expect("tag suffix");
        let mut out = ciphertext.to_vec();
        self.open_in_place_detached(nonce, &mut out, &tag, aad)?;
        Ok(out)
    }
}

/// Builds a deterministic 12-byte nonce from a 4-byte domain and an 8-byte
/// sequence number. Callers must never reuse a (key, domain, seq) triple.
#[must_use]
pub fn nonce_from_seq(domain: u32, seq: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&domain.to_be_bytes());
    nonce[4..].copy_from_slice(&seq.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    #[test]
    fn nist_case_1_empty() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_case_2_single_block() {
        let cipher = AesGcm::new(&[0u8; 16]);
        let sealed = cipher.seal(&[0u8; 12], &[0u8; 16], b"");
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    #[test]
    fn nist_case_3_four_blocks() {
        let key: [u8; 16] = unhex("feffe9928665731c6d6a8f9467308308")
            .unwrap()
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = unhex("cafebabefacedbaddecaf888")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = unhex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b391aafd255"
        ))
        .unwrap();
        let sealed = AesGcm::new(&key).seal(&nonce, &pt, b"");
        assert_eq!(
            hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091473f5985",
                "4d5c2af327cd64a62cf35abd2ba6fab4"
            )
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key: [u8; 16] = unhex("feffe9928665731c6d6a8f9467308308")
            .unwrap()
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = unhex("cafebabefacedbaddecaf888")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = unhex(concat!(
            "d9313225f88406e5a55909c5aff5269a",
            "86a7a9531534f7da2e4c303d8a318a72",
            "1c3c0c95956809532fcf0e2449a6b525",
            "b16aedf5aa0de657ba637b39"
        ))
        .unwrap();
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2").unwrap();
        let cipher = AesGcm::new(&key);
        let sealed = cipher.seal(&nonce, &pt, &aad);
        assert_eq!(
            hex(&sealed),
            concat!(
                "42831ec2217774244b7221b784d0d49c",
                "e3aa212f2c02a4e035c17e2329aca12e",
                "21d514b25466931c7d8f6a5aac84aa05",
                "1ba30b396a0aac973d58e091",
                "5bc94fbc3221a5db94fae95ae7121a47"
            )
        );
        assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), pt);
    }

    #[test]
    fn open_rejects_tampering() {
        let cipher = AesGcm::new(&[3u8; 16]);
        let nonce = [5u8; 12];
        let sealed = cipher.seal(&nonce, b"payload", b"aad");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                cipher.open(&nonce, &bad, b"aad"),
                Err(CryptoError::AuthenticationFailed),
                "flip at byte {i} must be detected"
            );
        }
        assert!(cipher.open(&[6u8; 12], &sealed, b"aad").is_err());
        assert!(cipher.open(&nonce, &sealed[..8], b"aad").is_err());
    }

    #[test]
    fn in_place_matches_allocating_api() {
        let cipher = AesGcm::new(&[0x42u8; 16]);
        let nonce = [9u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = cipher.seal(&nonce, &plain, b"aad");

            let mut buf = plain.clone();
            cipher.seal_in_place(&nonce, &mut buf, b"aad");
            assert_eq!(buf, sealed, "seal_in_place, length {len}");

            cipher.open_in_place(&nonce, &mut buf, b"aad").unwrap();
            assert_eq!(buf, plain, "open_in_place, length {len}");
        }
    }

    #[test]
    fn open_in_place_leaves_buffer_on_failure() {
        let cipher = AesGcm::new(&[0x42u8; 16]);
        let nonce = [9u8; 12];
        let mut buf = b"payload".to_vec();
        cipher.seal_in_place(&nonce, &mut buf, b"aad");
        let sealed = buf.clone();
        assert_eq!(
            cipher.open_in_place(&nonce, &mut buf, b"wrong aad"),
            Err(CryptoError::AuthenticationFailed)
        );
        assert_eq!(buf, sealed, "failed open must not alter the buffer");
        let mut short = vec![0u8; TAG_LEN - 1];
        assert!(cipher.open_in_place(&nonce, &mut short, b"aad").is_err());
    }

    #[test]
    fn detached_tag_roundtrip() {
        let cipher = AesGcm::new(&[7u8; 16]);
        let nonce = [1u8; 12];
        let mut buf = *b"0123456789abcdef_tail";
        let tag = cipher.seal_in_place_detached(&nonce, &mut buf, b"");
        assert_ne!(&buf, b"0123456789abcdef_tail");
        cipher
            .open_in_place_detached(&nonce, &mut buf, &tag, b"")
            .unwrap();
        assert_eq!(&buf, b"0123456789abcdef_tail");
        let bad = [0u8; TAG_LEN];
        assert!(cipher
            .open_in_place_detached(&nonce, &mut buf, &bad, b"")
            .is_err());
    }

    #[test]
    fn nonce_from_seq_unique() {
        let a = nonce_from_seq(1, 1);
        let b = nonce_from_seq(1, 2);
        let c = nonce_from_seq(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
