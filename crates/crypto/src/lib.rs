//! Cryptographic primitives for the SecureCloud stack.
//!
//! Everything in this crate is implemented from scratch in safe Rust so that
//! the rest of the workspace has no external cryptographic dependencies:
//!
//! * [`sha256`] — SHA-256 hashing,
//! * [`hmac`] — HMAC-SHA256 and HKDF key derivation,
//! * [`aes`] — the AES-128 block cipher,
//! * [`gcm`] — AES-128-GCM authenticated encryption,
//! * [`x25519`] — Curve25519 Diffie-Hellman,
//! * [`channel`] — a mutually-authenticated secure channel (Noise-KK-like)
//!   used for SCF provisioning and inter-service communication,
//! * [`wire`] — a compact binary codec used across the workspace in place of
//!   a serde format crate.
//!
//! # Security note
//!
//! The algorithms are implemented faithfully and verified against the
//! standard test vectors (FIPS-197, RFC 4231, RFC 5869, RFC 7748, NIST GCM).
//! Comparisons of secrets are constant-time ([`ct_eq`]). The implementations
//! are nevertheless *reference grade*: they favour clarity over side-channel
//! hardening and must not be used outside this research prototype.
//!
//! # Example
//!
//! ```
//! use securecloud_crypto::{gcm::AesGcm, sha256::Sha256};
//!
//! let key: [u8; 16] = Sha256::digest(b"my password")[..16].try_into().unwrap();
//! let cipher = AesGcm::new(&key);
//! let sealed = cipher.seal(&[0u8; 12], b"meter reading 42 kWh", b"header");
//! let plain = cipher.open(&[0u8; 12], &sealed, b"header").unwrap();
//! assert_eq!(plain, b"meter reading 42 kWh");
//! ```

pub mod aes;
pub mod channel;
pub mod gcm;
pub mod hmac;
pub mod reference;
pub mod sha256;
pub mod wire;
pub mod x25519;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag or MAC failed to verify.
    AuthenticationFailed,
    /// An encoded structure could not be decoded.
    Malformed(String),
    /// A handshake failed (wrong peer, bad transcript, transport closed).
    Handshake(String),
    /// The underlying transport was closed.
    TransportClosed,
    /// A key had the wrong length or was otherwise unusable.
    InvalidKey(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::Malformed(what) => write!(f, "malformed encoding: {what}"),
            CryptoError::Handshake(why) => write!(f, "handshake failed: {why}"),
            CryptoError::TransportClosed => write!(f, "transport closed"),
            CryptoError::InvalidKey(why) => write!(f, "invalid key: {why}"),
        }
    }
}

impl StdError for CryptoError {}

/// Constant-time equality over byte slices.
///
/// Returns `false` for slices of unequal length without inspecting contents;
/// for equal lengths the comparison time does not depend on where the slices
/// differ.
///
/// ```
/// assert!(securecloud_crypto::ct_eq(b"tag", b"tag"));
/// assert!(!securecloud_crypto::ct_eq(b"tag", b"tab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Hex-encodes a byte slice (lowercase). Used pervasively in logs and tests.
#[must_use]
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// # Errors
///
/// Returns [`CryptoError::Malformed`] on odd length or non-hex characters.
pub fn unhex(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::Malformed("odd-length hex string".into()));
    }
    let digit = |c: u8| -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::Malformed(format!("non-hex byte {c:#x}"))),
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

/// Fills `buf` with bytes from the thread-local CSPRNG.
pub fn random_bytes(buf: &mut [u8]) {
    use rand::RngCore;
    rand::thread_rng().fill_bytes(buf);
}

/// Returns a fresh random array, convenience over [`random_bytes`].
#[must_use]
pub fn random_array<const N: usize>() -> [u8; N] {
    let mut out = [0u8; N];
    random_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0x00, 0x01, 0xab, 0xff];
        let s = hex(&bytes);
        assert_eq!(s, "0001abff");
        assert_eq!(unhex(&s).unwrap(), bytes);
        assert_eq!(unhex("ABFF").unwrap(), vec![0xab, 0xff]);
    }

    #[test]
    fn unhex_rejects_bad_input() {
        assert!(unhex("abc").is_err());
        assert!(unhex("zz").is_err());
    }

    #[test]
    fn random_arrays_differ() {
        let a: [u8; 32] = random_array();
        let b: [u8; 32] = random_array();
        assert_ne!(a, b, "256-bit collision is vanishingly unlikely");
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CryptoError::AuthenticationFailed,
            CryptoError::Malformed("x".into()),
            CryptoError::Handshake("y".into()),
            CryptoError::TransportClosed,
            CryptoError::InvalidKey("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
