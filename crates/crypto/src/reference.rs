//! Textbook reference implementations of the optimized kernels.
//!
//! The fast paths in [`crate::aes`] (T-table rounds, batched CTR) and
//! [`crate::gcm`] (windowed GHASH, in-place sealing) replaced byte-wise
//! loops. Those originals live on here, verbatim in behaviour, for two
//! reasons:
//!
//! * **equivalence testing** — property tests assert the optimized paths are
//!   byte-identical to these on arbitrary inputs, on top of the NIST vectors;
//! * **perf trajectory** — the `repro -- crypto` microbenchmark reports the
//!   fast paths' throughput as a multiple of these baselines, so regressions
//!   in either path are visible in `BENCH_crypto.json`.
//!
//! Nothing outside tests and the benchmark should call into this module.

use crate::aes::Aes128;
use crate::gcm::{NONCE_LEN, TAG_LEN};
use crate::CryptoError;

/// Encrypts one block with the byte-wise AES rounds
/// (`sub_bytes`/`shift_rows`/`mix_columns` applied per byte, no T-tables).
pub fn aes_encrypt_block(aes: &Aes128, block: &mut [u8; 16]) {
    aes.encrypt_block_scalar(block);
}

/// Carry-less multiplication in GF(2^128) with GCM's reflected bit order,
/// one shift/XOR iteration per bit (the loop the windowed table replaces).
#[must_use]
pub fn gf128_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(buf)
}

fn hash_key(key: &[u8; 16]) -> u128 {
    let mut h = [0u8; 16];
    Aes128::new(key).encrypt_block_scalar(&mut h);
    u128::from_be_bytes(h)
}

/// GHASH of `aad || ciphertext || lengths` under the hash key derived from
/// `key`, using the bit-by-bit [`gf128_mul`].
#[must_use]
pub fn ghash(key: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    let h = hash_key(key);
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = gf128_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ciphertext.chunks(16) {
        y = gf128_mul(y ^ block_to_u128(chunk), h);
    }
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    y = gf128_mul(y ^ lengths, h);
    y.to_be_bytes()
}

fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(nonce);
    j0[15] = 1;
    j0
}

/// Unbatched GCTR: one scalar block encryption and a byte-wise XOR per
/// 16-byte chunk.
fn gctr(aes: &Aes128, j0: &[u8; 16], buf: &mut [u8]) {
    let mut counter = u32::from_be_bytes(j0[12..16].try_into().expect("ctr"));
    let mut block = *j0;
    for chunk in buf.chunks_mut(16) {
        counter = counter.wrapping_add(1);
        block[12..16].copy_from_slice(&counter.to_be_bytes());
        let mut keystream = block;
        aes.encrypt_block_scalar(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

fn tag(key: &[u8; 16], j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let s = ghash(key, aad, ciphertext);
    let mut tag = *j0;
    Aes128::new(key).encrypt_block_scalar(&mut tag);
    for (t, s) in tag.iter_mut().zip(s.iter()) {
        *t ^= s;
    }
    tag
}

/// AES-128-GCM seal built entirely from the reference kernels; returns
/// `ciphertext || tag`, byte-identical to [`crate::gcm::AesGcm::seal`].
#[must_use]
pub fn seal(key: &[u8; 16], nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
    let aes = Aes128::new(key);
    let j0 = j0(nonce);
    let mut out = plaintext.to_vec();
    gctr(&aes, &j0, &mut out);
    let tag = tag(key, &j0, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// AES-128-GCM open built entirely from the reference kernels.
///
/// # Errors
///
/// [`CryptoError::AuthenticationFailed`] if the input is shorter than a tag
/// or the tag does not verify.
pub fn open(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    sealed: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::AuthenticationFailed);
    }
    let (ciphertext, expect_tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let j0 = j0(nonce);
    let tag = tag(key, &j0, aad, ciphertext);
    if !crate::ct_eq(&tag, expect_tag) {
        return Err(CryptoError::AuthenticationFailed);
    }
    let mut out = ciphertext.to_vec();
    gctr(&Aes128::new(key), &j0, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unhex;

    #[test]
    fn reference_seal_matches_nist_case_2() {
        let sealed = seal(&[0u8; 16], &[0u8; 12], &[0u8; 16], b"");
        assert_eq!(
            crate::hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    #[test]
    fn reference_roundtrip_and_reject() {
        let key = [0x11u8; 16];
        let nonce = [0x22u8; 12];
        let sealed = seal(&key, &nonce, b"reference payload", b"aad");
        assert_eq!(
            open(&key, &nonce, &sealed, b"aad").unwrap(),
            b"reference payload"
        );
        assert!(open(&key, &nonce, &sealed, b"bad").is_err());
        assert!(open(&key, &nonce, &sealed[..TAG_LEN - 1], b"aad").is_err());
    }

    #[test]
    fn gf128_mul_field_laws() {
        // In GCM's reflected bit order the multiplicative identity (x^0) is
        // the block with only its first bit set.
        const ONE: u128 = 1 << 127;
        let a = u128::from_be_bytes(
            unhex("66e94bd4ef8a2c3b884cfa59ca342b2e").unwrap()[..16]
                .try_into()
                .unwrap(),
        );
        let b = u128::from_be_bytes(
            unhex("0388dace60b6a392f328c2b971b2fe78").unwrap()[..16]
                .try_into()
                .unwrap(),
        );
        let c = 0x0123_4567_89ab_cdef_u128 | (1 << 127);
        assert_eq!(gf128_mul(ONE, a), a);
        assert_eq!(gf128_mul(a, ONE), a);
        assert_eq!(gf128_mul(a, 0), 0);
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
        assert_eq!(
            gf128_mul(a ^ b, c),
            gf128_mul(a, c) ^ gf128_mul(b, c),
            "multiplication distributes over XOR (field addition)"
        );
        assert_eq!(
            gf128_mul(gf128_mul(a, b), c),
            gf128_mul(a, gf128_mul(b, c)),
            "multiplication is associative"
        );
    }
}
