//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

use crate::sha256::Sha256;

/// Incremental HMAC-SHA256.
///
/// ```
/// use securecloud_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            block_key[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; 32] {
        let inner_hash = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_hash);
        outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    #[must_use]
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of `tag` against `message` under `key`.
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(&Self::mac(key, message), tag)
    }
}

/// HKDF-Extract: derives a pseudorandom key from input keying material.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` output bytes are requested (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0;
    while written < out.len() {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (out.len() - written).min(32);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Full HKDF (extract-then-expand), returning `N` bytes.
///
/// ```
/// let okm: [u8; 32] = securecloud_crypto::hmac::hkdf(b"salt", b"secret", b"ctx");
/// assert_ne!(okm, [0u8; 32]);
/// ```
#[must_use]
pub fn hkdf<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = hkdf_extract(salt, ikm);
    let mut out = [0u8; N];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c").unwrap();
        let info = unhex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let prk = hkdf_extract(&[], &ikm);
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn verify_rejects_wrong_tag() {
        let tag = HmacSha256::mac(b"k", b"m");
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"part one part two"));
    }

    #[test]
    fn hkdf_distinct_infos_produce_distinct_keys() {
        let a: [u8; 16] = hkdf(b"salt", b"ikm", b"client");
        let b: [u8; 16] = hkdf(b"salt", b"ikm", b"server");
        assert_ne!(a, b);
    }
}
