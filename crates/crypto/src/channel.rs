//! A mutually-authenticated secure channel.
//!
//! This is the "TLS-protected connection" of the paper's SCF provisioning
//! flow (§V-A) and the transport used between micro-services. The handshake
//! is Noise-KK-flavoured: X25519 ephemeral + static Diffie-Hellman, HKDF key
//! schedule bound to the transcript hash, explicit `Finished` MACs, and an
//! application *attestation payload* carried (and authenticated) in each
//! hello — the enclave quote rides here.
//!
//! ```
//! use securecloud_crypto::channel::{memory_pair, ChannelConfig, Identity, SecureChannel};
//!
//! let (a, b) = memory_pair();
//! let server_id = Identity::generate("config-service");
//! let client_id = Identity::generate("enclave");
//! let server_pub = server_id.public_key();
//!
//! let server = std::thread::spawn(move || {
//!     SecureChannel::respond(b, &server_id, ChannelConfig::default()).unwrap()
//! });
//! let mut client = SecureChannel::initiate(a, &client_id, ChannelConfig {
//!     expected_peer: Some(server_pub),
//!     ..ChannelConfig::default()
//! }).unwrap();
//! let mut server = server.join().unwrap();
//!
//! client.send(b"GET /scf").unwrap();
//! assert_eq!(server.recv().unwrap(), b"GET /scf");
//! ```

use crate::gcm::{nonce_from_seq, AesGcm};
use crate::hmac::{hkdf_expand, hkdf_extract, HmacSha256};
use crate::sha256::Sha256;
use crate::wire::{Reader, Wire};
use crate::x25519::{self, PublicKey, SecretKey};
use crate::CryptoError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use securecloud_telemetry::{TraceContext, CONTEXT_WIRE_LEN};

/// Byte-frame transport under a [`SecureChannel`].
pub trait Transport {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    fn send_frame(&self, frame: Vec<u8>) -> Result<(), CryptoError>;
    /// Receives one frame, blocking.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    fn recv_frame(&self) -> Result<Vec<u8>, CryptoError>;
}

/// In-memory duplex transport (the simulator's "network").
#[derive(Debug)]
pub struct MemoryTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-memory transports.
#[must_use]
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        MemoryTransport {
            tx: tx_ab,
            rx: rx_ba,
        },
        MemoryTransport {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

impl Transport for MemoryTransport {
    fn send_frame(&self, frame: Vec<u8>) -> Result<(), CryptoError> {
        self.tx
            .send(frame)
            .map_err(|_| CryptoError::TransportClosed)
    }
    fn recv_frame(&self) -> Result<Vec<u8>, CryptoError> {
        self.rx.recv().map_err(|_| CryptoError::TransportClosed)
    }
}

/// A long-term X25519 identity for a channel endpoint.
#[derive(Clone)]
pub struct Identity {
    name: String,
    secret: SecretKey,
    public: PublicKey,
}

impl std::fmt::Debug for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Identity")
            .field("name", &self.name)
            .field("public", &crate::hex(&self.public))
            .finish_non_exhaustive()
    }
}

impl Identity {
    /// Generates a fresh identity labelled `name`.
    #[must_use]
    pub fn generate(name: &str) -> Self {
        let (secret, public) = x25519::keypair();
        Identity {
            name: name.to_string(),
            secret,
            public,
        }
    }

    /// Reconstructs an identity from a stored secret key.
    #[must_use]
    pub fn from_secret(name: &str, secret: SecretKey) -> Self {
        let public = x25519::public_key(&secret);
        Identity {
            name: name.to_string(),
            secret,
            public,
        }
    }

    /// The endpoint's label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The public half of the identity.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.public
    }
}

/// Handshake configuration.
#[derive(Default)]
pub struct ChannelConfig {
    /// If set, the handshake fails unless the peer's static key matches.
    pub expected_peer: Option<PublicKey>,
    /// Opaque evidence (e.g. an attestation quote) sent to the peer,
    /// authenticated by the handshake transcript.
    pub attestation_payload: Vec<u8>,
    /// Callback validating the peer's static key and attestation payload.
    /// Returning `Err` aborts the handshake. Applied after `expected_peer`.
    #[allow(clippy::type_complexity)]
    pub verify_peer: Option<Box<dyn FnOnce(&PublicKey, &[u8]) -> Result<(), String> + Send>>,
}

impl std::fmt::Debug for ChannelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelConfig")
            .field("expected_peer", &self.expected_peer.map(|k| crate::hex(&k)))
            .field("attestation_payload_len", &self.attestation_payload.len())
            .field("verify_peer", &self.verify_peer.is_some())
            .finish()
    }
}

#[derive(Debug)]
struct Hello {
    ephemeral: [u8; 32],
    static_key: [u8; 32],
    payload: Vec<u8>,
}

impl Wire for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ephemeral.encode(out);
        self.static_key.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(Hello {
            ephemeral: Wire::decode(r)?,
            static_key: Wire::decode(r)?,
            payload: Wire::decode(r)?,
        })
    }
}

/// An established, authenticated, encrypted channel.
///
/// Each direction has its own AES-128-GCM key and sequence number; every
/// record is bound to the handshake transcript via the AAD.
pub struct SecureChannel<T: Transport> {
    transport: T,
    send_cipher: AesGcm,
    recv_cipher: AesGcm,
    send_seq: u64,
    recv_seq: u64,
    send_domain: u32,
    recv_domain: u32,
    transcript: [u8; 32],
    peer_static: PublicKey,
    peer_payload: Vec<u8>,
}

impl<T: Transport> std::fmt::Debug for SecureChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("peer", &crate::hex(&self.peer_static))
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

const DOMAIN_I2R: u32 = 0x6932_7200; // "i2r"
const DOMAIN_R2I: u32 = 0x7232_6900; // "r2i"

struct HandshakeKeys {
    i2r: [u8; 16],
    r2i: [u8; 16],
    finish_i: [u8; 32],
    finish_r: [u8; 32],
}

fn derive_keys(
    transcript: &[u8; 32],
    dh_ee: &[u8; 32],
    dh_es: &[u8; 32],
    dh_se: &[u8; 32],
    dh_ss: &[u8; 32],
) -> HandshakeKeys {
    let mut ikm = Vec::with_capacity(128);
    ikm.extend_from_slice(dh_ee);
    ikm.extend_from_slice(dh_es);
    ikm.extend_from_slice(dh_se);
    ikm.extend_from_slice(dh_ss);
    let prk = hkdf_extract(transcript, &ikm);
    let mut i2r = [0u8; 16];
    let mut r2i = [0u8; 16];
    let mut finish_i = [0u8; 32];
    let mut finish_r = [0u8; 32];
    hkdf_expand(&prk, b"securecloud channel i2r", &mut i2r);
    hkdf_expand(&prk, b"securecloud channel r2i", &mut r2i);
    hkdf_expand(&prk, b"securecloud finished i", &mut finish_i);
    hkdf_expand(&prk, b"securecloud finished r", &mut finish_r);
    HandshakeKeys {
        i2r,
        r2i,
        finish_i,
        finish_r,
    }
}

fn check_peer(
    config: ChannelConfig,
    peer_static: &PublicKey,
    peer_payload: &[u8],
) -> Result<(), CryptoError> {
    if let Some(expected) = config.expected_peer {
        if !crate::ct_eq(&expected, peer_static) {
            return Err(CryptoError::Handshake("unexpected peer static key".into()));
        }
    }
    if let Some(verify) = config.verify_peer {
        verify(peer_static, peer_payload).map_err(CryptoError::Handshake)?;
    }
    Ok(())
}

impl<T: Transport> SecureChannel<T> {
    /// Runs the initiator side of the handshake over `transport`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::Handshake`] if the peer fails authentication or the
    /// transcript MACs do not verify; [`CryptoError::TransportClosed`] if the
    /// peer disappears mid-handshake.
    pub fn initiate(
        transport: T,
        identity: &Identity,
        config: ChannelConfig,
    ) -> Result<Self, CryptoError> {
        let (eph_secret, eph_public) = x25519::keypair();
        let hello_i = Hello {
            ephemeral: eph_public,
            static_key: identity.public,
            payload: config.attestation_payload.clone(),
        };
        let hello_i_bytes = hello_i.to_wire();
        transport.send_frame(hello_i_bytes.clone())?;
        let hello_r_bytes = transport.recv_frame()?;
        let hello_r = Hello::from_wire(&hello_r_bytes)?;

        let mut transcript_hasher = Sha256::new();
        transcript_hasher.update(&hello_i_bytes);
        transcript_hasher.update(&hello_r_bytes);
        let transcript = transcript_hasher.finalize();

        let dh_ee = x25519::diffie_hellman(&eph_secret, &hello_r.ephemeral);
        let dh_es = x25519::diffie_hellman(&eph_secret, &hello_r.static_key);
        let dh_se = x25519::diffie_hellman(&identity.secret, &hello_r.ephemeral);
        let dh_ss = x25519::diffie_hellman(&identity.secret, &hello_r.static_key);
        let keys = derive_keys(&transcript, &dh_ee, &dh_es, &dh_se, &dh_ss);

        // Responder finishes first; its MAC proves it holds the static key.
        let finished_r = transport.recv_frame()?;
        if !crate::ct_eq(&HmacSha256::mac(&keys.finish_r, &transcript), &finished_r) {
            return Err(CryptoError::Handshake("responder finished MAC".into()));
        }
        transport.send_frame(HmacSha256::mac(&keys.finish_i, &transcript).to_vec())?;

        check_peer(config, &hello_r.static_key, &hello_r.payload)?;

        Ok(SecureChannel {
            transport,
            send_cipher: AesGcm::new(&keys.i2r),
            recv_cipher: AesGcm::new(&keys.r2i),
            send_seq: 0,
            recv_seq: 0,
            send_domain: DOMAIN_I2R,
            recv_domain: DOMAIN_R2I,
            transcript,
            peer_static: hello_r.static_key,
            peer_payload: hello_r.payload,
        })
    }

    /// Runs the responder side of the handshake over `transport`.
    ///
    /// # Errors
    ///
    /// See [`SecureChannel::initiate`].
    pub fn respond(
        transport: T,
        identity: &Identity,
        config: ChannelConfig,
    ) -> Result<Self, CryptoError> {
        let hello_i_bytes = transport.recv_frame()?;
        let hello_i = Hello::from_wire(&hello_i_bytes)?;
        let (eph_secret, eph_public) = x25519::keypair();
        let hello_r = Hello {
            ephemeral: eph_public,
            static_key: identity.public,
            payload: config.attestation_payload.clone(),
        };
        let hello_r_bytes = hello_r.to_wire();
        transport.send_frame(hello_r_bytes.clone())?;

        let mut transcript_hasher = Sha256::new();
        transcript_hasher.update(&hello_i_bytes);
        transcript_hasher.update(&hello_r_bytes);
        let transcript = transcript_hasher.finalize();

        let dh_ee = x25519::diffie_hellman(&eph_secret, &hello_i.ephemeral);
        let dh_se = x25519::diffie_hellman(&eph_secret, &hello_i.static_key);
        let dh_es = x25519::diffie_hellman(&identity.secret, &hello_i.ephemeral);
        let dh_ss = x25519::diffie_hellman(&identity.secret, &hello_i.static_key);
        let keys = derive_keys(&transcript, &dh_ee, &dh_es, &dh_se, &dh_ss);

        transport.send_frame(HmacSha256::mac(&keys.finish_r, &transcript).to_vec())?;
        let finished_i = transport.recv_frame()?;
        if !crate::ct_eq(&HmacSha256::mac(&keys.finish_i, &transcript), &finished_i) {
            return Err(CryptoError::Handshake("initiator finished MAC".into()));
        }

        check_peer(config, &hello_i.static_key, &hello_i.payload)?;

        Ok(SecureChannel {
            transport,
            send_cipher: AesGcm::new(&keys.r2i),
            recv_cipher: AesGcm::new(&keys.i2r),
            send_seq: 0,
            recv_seq: 0,
            send_domain: DOMAIN_R2I,
            recv_domain: DOMAIN_I2R,
            transcript,
            peer_static: hello_i.static_key,
            peer_payload: hello_i.payload,
        })
    }

    /// Encrypts and sends one message.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), CryptoError> {
        let nonce = nonce_from_seq(self.send_domain, self.send_seq);
        self.send_seq += 1;
        // Single exactly-sized allocation: copy the plaintext in, seal the
        // buffer in place, let the tag land in the reserved suffix.
        let mut sealed = Vec::with_capacity(plaintext.len() + crate::gcm::TAG_LEN);
        sealed.extend_from_slice(plaintext);
        self.send_cipher
            .seal_in_place(&nonce, &mut sealed, &self.transcript);
        self.transport.send_frame(sealed)
    }

    /// Encrypts and sends one message with a causal [`TraceContext`] carried
    /// *inside* the sealed record: the 24-byte context header is prepended to
    /// the plaintext before sealing, so the trace ids are confidentiality- and
    /// integrity-protected along with the payload. The peer must receive it
    /// with [`SecureChannel::recv_with_ctx`]; traced and plain records may be
    /// interleaved freely since each consumes exactly one sequence number.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn send_with_ctx(
        &mut self,
        plaintext: &[u8],
        ctx: TraceContext,
    ) -> Result<(), CryptoError> {
        let nonce = nonce_from_seq(self.send_domain, self.send_seq);
        self.send_seq += 1;
        let mut sealed =
            Vec::with_capacity(CONTEXT_WIRE_LEN + plaintext.len() + crate::gcm::TAG_LEN);
        sealed.extend_from_slice(&ctx.encode());
        sealed.extend_from_slice(plaintext);
        self.send_cipher
            .seal_in_place(&nonce, &mut sealed, &self.transcript);
        self.transport.send_frame(sealed)
    }

    /// Receives one record sent by [`SecureChannel::send_with_ctx`] and
    /// returns the authenticated trace context alongside the payload.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampered or replayed records;
    /// [`CryptoError::Malformed`] if the authenticated plaintext is too short
    /// to carry a context header; [`CryptoError::TransportClosed`] if the
    /// peer is gone.
    pub fn recv_with_ctx(&mut self) -> Result<(TraceContext, Vec<u8>), CryptoError> {
        let mut sealed = self.transport.recv_frame()?;
        let nonce = nonce_from_seq(self.recv_domain, self.recv_seq);
        self.recv_cipher
            .open_in_place(&nonce, &mut sealed, &self.transcript)?;
        self.recv_seq += 1;
        if sealed.len() < CONTEXT_WIRE_LEN {
            return Err(CryptoError::Malformed(
                "traced record shorter than a context header".into(),
            ));
        }
        let ctx = TraceContext::decode(&sealed[..CONTEXT_WIRE_LEN]).unwrap_or_default();
        Ok((ctx, sealed.split_off(CONTEXT_WIRE_LEN)))
    }

    /// Encrypts and sends a batch of messages as **one** sealed record: the
    /// messages are length-prefix framed together (wire `Vec<Vec<u8>>`
    /// layout) and the concatenation is sealed once — one sequence number,
    /// one nonce, one GHASH/tag pass — so a batch of N costs a single seal
    /// instead of N. The peer must receive it with
    /// [`SecureChannel::recv_batch`]; batch and single records may be
    /// interleaved freely since each consumes exactly one sequence number.
    ///
    /// # Errors
    ///
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn send_batch(&mut self, messages: &[Vec<u8>]) -> Result<(), CryptoError> {
        let nonce = nonce_from_seq(self.send_domain, self.send_seq);
        self.send_seq += 1;
        let framed: usize = messages.iter().map(|m| 4 + m.len()).sum();
        let mut sealed = Vec::with_capacity(4 + framed + crate::gcm::TAG_LEN);
        (messages.len() as u32).encode(&mut sealed);
        for message in messages {
            (message.len() as u32).encode(&mut sealed);
            sealed.extend_from_slice(message);
        }
        self.send_cipher
            .seal_in_place(&nonce, &mut sealed, &self.transcript);
        self.transport.send_frame(sealed)
    }

    /// Receives one batch record sent by [`SecureChannel::send_batch`] and
    /// returns its messages in order. The record is opened in place (one
    /// tag check for the whole batch) before the individual messages are
    /// split out.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampered or replayed
    /// records; [`CryptoError::Malformed`] if the authenticated plaintext
    /// is not a well-formed batch; [`CryptoError::TransportClosed`] if the
    /// peer is gone.
    pub fn recv_batch(&mut self) -> Result<Vec<Vec<u8>>, CryptoError> {
        let mut sealed = self.transport.recv_frame()?;
        let nonce = nonce_from_seq(self.recv_domain, self.recv_seq);
        self.recv_cipher
            .open_in_place(&nonce, &mut sealed, &self.transcript)?;
        self.recv_seq += 1;
        Vec::<Vec<u8>>::from_wire(&sealed)
    }

    /// Receives and decrypts one message.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] on tampered or replayed records;
    /// [`CryptoError::TransportClosed`] if the peer is gone.
    pub fn recv(&mut self) -> Result<Vec<u8>, CryptoError> {
        // The transport hands us an owned frame, so decrypting it in place
        // is zero-copy: the ciphertext buffer becomes the plaintext buffer.
        let mut sealed = self.transport.recv_frame()?;
        let nonce = nonce_from_seq(self.recv_domain, self.recv_seq);
        self.recv_cipher
            .open_in_place(&nonce, &mut sealed, &self.transcript)?;
        self.recv_seq += 1;
        Ok(sealed)
    }

    /// The peer's authenticated static public key.
    #[must_use]
    pub fn peer_static_key(&self) -> PublicKey {
        self.peer_static
    }

    /// The peer's attestation payload, authenticated by the handshake.
    #[must_use]
    pub fn peer_attestation(&self) -> &[u8] {
        &self.peer_payload
    }

    /// The handshake transcript hash (unique per session).
    #[must_use]
    pub fn session_id(&self) -> [u8; 32] {
        self.transcript
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair_with(
        client_cfg: ChannelConfig,
        server_cfg: ChannelConfig,
    ) -> (
        Result<SecureChannel<MemoryTransport>, CryptoError>,
        Result<SecureChannel<MemoryTransport>, CryptoError>,
    ) {
        let (a, b) = memory_pair();
        let client_id = Identity::generate("client");
        let server_id = Identity::generate("server");
        let server = thread::spawn(move || SecureChannel::respond(b, &server_id, server_cfg));
        let client = SecureChannel::initiate(a, &client_id, client_cfg);
        (client, server.join().unwrap())
    }

    #[test]
    fn roundtrip_both_directions() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let mut server = server.unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(server.recv().unwrap(), b"hello");
        server.send(b"world").unwrap();
        assert_eq!(client.recv().unwrap(), b"world");
        assert_eq!(client.session_id(), server.session_id());
        // Many messages: sequence numbers advance consistently.
        for i in 0..100u32 {
            client.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(server.recv().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn batch_roundtrip_interleaves_with_singles() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let mut server = server.unwrap();
        let batch: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; i as usize + 1]).collect();
        client.send_batch(&batch).unwrap();
        assert_eq!(server.recv_batch().unwrap(), batch);
        // One batch record consumed exactly one sequence number: plain
        // send/recv keeps working either side of it.
        client.send(b"after").unwrap();
        assert_eq!(server.recv().unwrap(), b"after");
        server.send_batch(&[b"reply".to_vec()]).unwrap();
        assert_eq!(server.send_seq, 1);
        assert_eq!(client.recv_batch().unwrap(), vec![b"reply".to_vec()]);
        // Empty batches and empty messages are legal frames.
        client.send_batch(&[]).unwrap();
        assert_eq!(client.send_seq, 3);
        assert!(server.recv_batch().unwrap().is_empty());
        client.send_batch(&[Vec::new(), b"x".to_vec()]).unwrap();
        assert_eq!(
            server.recv_batch().unwrap(),
            vec![Vec::new(), b"x".to_vec()]
        );
    }

    #[test]
    fn traced_roundtrip_interleaves_with_plain() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let mut server = server.unwrap();
        let ctx = TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            span_id: 0x99aa_bbcc_ddee_ff00,
            parent_span_id: 7,
        };
        client.send_with_ctx(b"traced payload", ctx).unwrap();
        let (got_ctx, payload) = server.recv_with_ctx().unwrap();
        assert_eq!(got_ctx, ctx);
        assert_eq!(payload, b"traced payload");
        // A traced record consumed exactly one sequence number, so plain
        // traffic keeps flowing either side of it.
        client.send(b"plain").unwrap();
        assert_eq!(server.recv().unwrap(), b"plain");
        // An absent context survives the trip as `TraceContext::none()`, and
        // empty payloads are legal.
        server.send_with_ctx(b"", TraceContext::none()).unwrap();
        let (none_ctx, empty) = client.recv_with_ctx().unwrap();
        assert!(none_ctx.is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn traced_record_too_short_is_malformed() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let mut server = server.unwrap();
        client.send(b"short").unwrap();
        assert!(matches!(
            server.recv_with_ctx(),
            Err(CryptoError::Malformed(_))
        ));
    }

    #[test]
    fn tampered_batch_rejected() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let server = server.unwrap();
        client.send_batch(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        let mut frame = server.transport.recv_frame().unwrap();
        frame[1] ^= 0x80;
        server.transport.tx.send(frame).ok(); // reinject toward client; open directly instead
        let nonce = nonce_from_seq(server.recv_domain, server.recv_seq);
        client.send_batch(&[b"c".to_vec()]).unwrap();
        let mut frame2 = server.transport.recv_frame().unwrap();
        frame2[0] ^= 1;
        assert!(server
            .recv_cipher
            .open(&nonce, &frame2, &server.transcript)
            .is_err());
    }

    #[test]
    fn attestation_payload_delivered() {
        let client_cfg = ChannelConfig {
            attestation_payload: b"quote:client".to_vec(),
            ..ChannelConfig::default()
        };
        let server_cfg = ChannelConfig {
            attestation_payload: b"quote:server".to_vec(),
            ..ChannelConfig::default()
        };
        let (client, server) = pair_with(client_cfg, server_cfg);
        assert_eq!(client.unwrap().peer_attestation(), b"quote:server");
        assert_eq!(server.unwrap().peer_attestation(), b"quote:client");
    }

    #[test]
    fn expected_peer_mismatch_fails() {
        let wrong_key = Identity::generate("other").public_key();
        let client_cfg = ChannelConfig {
            expected_peer: Some(wrong_key),
            ..ChannelConfig::default()
        };
        let (client, _server) = pair_with(client_cfg, ChannelConfig::default());
        assert!(matches!(client, Err(CryptoError::Handshake(_))));
    }

    #[test]
    fn verify_peer_callback_can_reject() {
        let server_cfg = ChannelConfig {
            verify_peer: Some(Box::new(|_, payload| {
                if payload == b"valid quote" {
                    Ok(())
                } else {
                    Err("bad quote".into())
                }
            })),
            ..ChannelConfig::default()
        };
        let client_cfg = ChannelConfig {
            attestation_payload: b"forged".to_vec(),
            ..ChannelConfig::default()
        };
        let (_client, server) = pair_with(client_cfg, server_cfg);
        assert!(matches!(server, Err(CryptoError::Handshake(_))));
    }

    #[test]
    fn tampered_record_rejected() {
        let (client, server) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let mut client = client.unwrap();
        let server = server.unwrap();
        client.send(b"secret").unwrap();
        // Tamper in flight: pull the frame, flip a bit, reinject.
        let frame = server.transport.recv_frame().unwrap();
        let mut bad = frame;
        bad[0] ^= 1;
        server.transport.tx.send(bad).ok();
        // Reinjected frame goes to client side; instead verify directly:
        // decrypting a tampered frame fails.
        client.send(b"second").unwrap();
        let frame2 = server.transport.recv_frame().unwrap();
        let mut bad2 = frame2;
        bad2[3] ^= 0xff;
        let nonce = nonce_from_seq(server.recv_domain, server.recv_seq);
        assert!(server
            .recv_cipher
            .open(&nonce, &bad2, &server.transcript)
            .is_err());
    }

    #[test]
    fn sessions_have_distinct_keys() {
        let (c1, _s1) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        let (c2, _s2) = pair_with(ChannelConfig::default(), ChannelConfig::default());
        assert_ne!(c1.unwrap().session_id(), c2.unwrap().session_id());
    }

    #[test]
    fn closed_transport_errors() {
        let (a, b) = memory_pair();
        drop(b);
        let id = Identity::generate("x");
        let result = SecureChannel::initiate(a, &id, ChannelConfig::default());
        assert!(matches!(result, Err(CryptoError::TransportClosed)));
    }
}
