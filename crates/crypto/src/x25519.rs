//! X25519 Diffie-Hellman (RFC 7748) over Curve25519.
//!
//! Field arithmetic uses five 51-bit limbs with `u128` intermediate
//! products; the scalar multiplication is a constant-time Montgomery ladder.

/// A public key: the little-endian encoding of a curve u-coordinate.
pub type PublicKey = [u8; 32];
/// A secret key: 32 random bytes (clamped internally).
pub type SecretKey = [u8; 32];

const MASK51: u64 = (1 << 51) - 1;

/// Element of GF(2^255 - 19), five 51-bit limbs, little-endian.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.carry().carry();
        // q = 1 iff self >= p, computed by propagating (limb + 19) carries.
        let mut q = (self.0[0].wrapping_add(19)) >> 51;
        for i in 1..5 {
            q = (self.0[i].wrapping_add(q)) >> 51;
        }
        self.0[0] = self.0[0].wrapping_add(19 * q);
        let mut carry = 0u64;
        for limb in &mut self.0 {
            let v = limb.wrapping_add(carry);
            *limb = v & MASK51;
            carry = v >> 51;
        }
        // Any final carry is the 2^255 bit, dropped by the mask above.
        let mut out = [0u8; 32];
        let l = self.0;
        let packed: [u64; 4] = [
            l[0] | (l[1] << 51),
            (l[1] >> 13) | (l[2] << 38),
            (l[2] >> 26) | (l[3] << 25),
            (l[3] >> 39) | (l[4] << 12),
        ];
        for (i, word) in packed.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    #[allow(clippy::needless_range_loop)]
    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        for i in 0..4 {
            c = l[i] >> 51;
            l[i] &= MASK51;
            l[i + 1] = l[i + 1].wrapping_add(c);
        }
        c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] = l[0].wrapping_add(19 * c);
        Fe(l)
    }

    fn add(self, other: Fe) -> Fe {
        let mut l = [0u64; 5];
        for ((out, a), b) in l.iter_mut().zip(&self.0).zip(&other.0) {
            *out = a + b;
        }
        Fe(l).carry()
    }

    fn sub(self, other: Fe) -> Fe {
        // Add 2p before subtracting to stay non-negative.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let mut l = TWO_P;
        for ((limb, a), b) in l.iter_mut().zip(&self.0).zip(&other.0) {
            *limb += a;
            *limb -= b;
        }
        Fe(l).carry()
    }

    fn mul(self, other: Fe) -> Fe {
        let f = self.0.map(u128::from);
        let g = other.0.map(u128::from);
        let g19: [u128; 5] = [g[0], 19 * g[1], 19 * g[2], 19 * g[3], 19 * g[4]];
        let r0 = f[0] * g[0] + f[1] * g19[4] + f[2] * g19[3] + f[3] * g19[2] + f[4] * g19[1];
        let r1 = f[0] * g[1] + f[1] * g[0] + f[2] * g19[4] + f[3] * g19[3] + f[4] * g19[2];
        let r2 = f[0] * g[2] + f[1] * g[1] + f[2] * g[0] + f[3] * g19[4] + f[4] * g19[3];
        let r3 = f[0] * g[3] + f[1] * g[2] + f[2] * g[1] + f[3] * g[0] + f[4] * g19[4];
        let r4 = f[0] * g[4] + f[1] * g[3] + f[2] * g[2] + f[3] * g[1] + f[4] * g[0];
        Fe::reduce_wide([r0, r1, r2, r3, r4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let s = u128::from(scalar);
        let mut r = [0u128; 5];
        for (out, limb) in r.iter_mut().zip(&self.0) {
            *out = u128::from(*limb) * s;
        }
        Fe::reduce_wide(r)
    }

    #[allow(clippy::needless_range_loop)]
    fn reduce_wide(mut r: [u128; 5]) -> Fe {
        let mut c: u128;
        for i in 0..4 {
            c = r[i] >> 51;
            r[i] &= u128::from(MASK51);
            r[i + 1] += c;
        }
        c = r[4] >> 51;
        r[4] &= u128::from(MASK51);
        r[0] += 19 * c;
        let l = r.map(|v| v as u64);
        Fe(l).carry()
    }

    /// Inversion by Fermat's little theorem: `self^(p-2)`.
    fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21 = 0x7fff...ffeb; square-and-multiply MSB-first.
        let mut exponent = [0xffu8; 32];
        exponent[0] = 0xeb;
        exponent[31] = 0x7f;
        let mut acc = Fe::ONE;
        for bit in (0..255).rev() {
            acc = acc.square();
            if (exponent[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Constant-time conditional swap; swaps when `condition` is 1.
    fn cswap(condition: u64, a: &mut Fe, b: &mut Fe) {
        let mask = 0u64.wrapping_sub(condition);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Scalar multiplication of the point with u-coordinate `u` by `scalar`.
#[must_use]
pub fn x25519(scalar: &SecretKey, u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;
    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// Computes the public key for `scalar` (scalar multiplication of the base
/// point, u = 9).
#[must_use]
pub fn public_key(scalar: &SecretKey) -> PublicKey {
    let mut base = [0u8; 32];
    base[0] = 9;
    x25519(scalar, &base)
}

/// Generates a fresh (secret, public) keypair.
#[must_use]
pub fn keypair() -> (SecretKey, PublicKey) {
    let secret: SecretKey = crate::random_array();
    let public = public_key(&secret);
    (secret, public)
}

/// Computes the shared secret between `our_secret` and `their_public`.
#[must_use]
pub fn diffie_hellman(our_secret: &SecretKey, their_public: &PublicKey) -> [u8; 32] {
    x25519(our_secret, their_public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    fn arr(s: &str) -> [u8; 32] {
        unhex(s).unwrap().try_into().unwrap()
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = arr("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = arr("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = arr("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = arr("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_once() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let u = k;
        let out = x25519(&k, &u);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn rfc7748_dh_vectors() {
        let alice_secret = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_secret = arr("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_public = public_key(&alice_secret);
        let bob_public = public_key(&bob_secret);
        assert_eq!(
            hex(&alice_public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = diffie_hellman(&alice_secret, &bob_public);
        let shared_b = diffie_hellman(&bob_secret, &alice_public);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        for _ in 0..8 {
            let (a_sec, a_pub) = keypair();
            let (b_sec, b_pub) = keypair();
            assert_eq!(
                diffie_hellman(&a_sec, &b_pub),
                diffie_hellman(&b_sec, &a_pub)
            );
        }
    }

    #[test]
    fn field_invert_roundtrip() {
        let x = Fe([12345, 678, 90123, 4, 5]);
        let one = x.mul(x.invert());
        assert_eq!(one.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn field_bytes_roundtrip() {
        let bytes = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
    }
}
