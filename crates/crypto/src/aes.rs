//! AES-128 block cipher (FIPS 197).
//!
//! The S-box is derived at first use from its algebraic definition
//! (multiplicative inverse in GF(2^8) followed by the affine transform)
//! rather than being transcribed, and the implementation is validated against
//! the FIPS-197 known-answer vector.
//!
//! Encryption runs table-driven: the classic four T-tables (each entry packs
//! `SubBytes` + `MixColumns` for one state byte) are precomputed from the
//! derived S-box, so a round is 16 lookups and a handful of XORs instead of
//! byte-wise `sub_bytes`/`shift_rows`/`mix_columns` passes. The byte-wise
//! round functions are retained as the reference path (see
//! [`crate::reference`]) and the two are property-tested for equivalence.
//! Table lookups are *not* constant-time; see DESIGN.md for why that is
//! acceptable in this simulator.

use std::sync::OnceLock;

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// Encryption T-tables. `te[0][x]` packs `(2s, s, s, 3s)` big-endian for
    /// `s = sbox[x]`; `te[1..4]` are byte rotations so each state byte indexes
    /// its own table.
    te: [[u32; 256]; 4],
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b; // x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    p
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Multiplicative inverses by brute force (256*256 is trivial).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..256usize {
            let i = inv[x];
            let s = i
                ^ i.rotate_left(1)
                ^ i.rotate_left(2)
                ^ i.rotate_left(3)
                ^ i.rotate_left(4)
                ^ 0x63;
            sbox[x] = s;
            inv_sbox[s as usize] = x as u8;
        }
        let mut te = [[0u32; 256]; 4];
        for x in 0..256usize {
            let s = sbox[x];
            let s2 = gf_mul(s, 2);
            let s3 = s2 ^ s;
            let word = u32::from_be_bytes([s2, s, s, s3]);
            te[0][x] = word;
            te[1][x] = word.rotate_right(8);
            te[2][x] = word.rotate_right(16);
            te[3][x] = word.rotate_right(24);
        }
        Tables { sbox, inv_sbox, te }
    })
}

/// An expanded AES-128 key, usable for block encryption and decryption.
///
/// ```
/// use securecloud_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    /// The same schedule as big-endian column words, so the table-driven
    /// rounds XOR whole words instead of bytes.
    round_words: [[u32; 4]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        let mut round_words = [[0u32; 4]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                round_words[r][c] = u32::from_be_bytes(w[4 * r + c]);
            }
        }
        Aes128 {
            round_keys,
            round_words,
        }
    }

    /// Encrypts one 16-byte block in place (table-driven fast path).
    ///
    /// The state is held as four big-endian column words; each round is 16
    /// T-table lookups and the final round applies the S-box alone. Verified
    /// byte-for-byte against [`Aes128::encrypt_block_scalar`] by property
    /// tests and against the FIPS-197 / NIST vectors.
    #[inline]
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        let rk = &self.round_words;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0][0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[0][1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[0][2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[0][3];
        for round in rk.iter().take(NR).skip(1) {
            // ShiftRows moves row r of output column c from input column
            // (c + r) mod 4, hence the rotating source words per table.
            let t0 = t.te[0][(s0 >> 24) as usize]
                ^ t.te[1][((s1 >> 16) & 0xff) as usize]
                ^ t.te[2][((s2 >> 8) & 0xff) as usize]
                ^ t.te[3][(s3 & 0xff) as usize]
                ^ round[0];
            let t1 = t.te[0][(s1 >> 24) as usize]
                ^ t.te[1][((s2 >> 16) & 0xff) as usize]
                ^ t.te[2][((s3 >> 8) & 0xff) as usize]
                ^ t.te[3][(s0 & 0xff) as usize]
                ^ round[1];
            let t2 = t.te[0][(s2 >> 24) as usize]
                ^ t.te[1][((s3 >> 16) & 0xff) as usize]
                ^ t.te[2][((s0 >> 8) & 0xff) as usize]
                ^ t.te[3][(s1 & 0xff) as usize]
                ^ round[2];
            let t3 = t.te[0][(s3 >> 24) as usize]
                ^ t.te[1][((s0 >> 16) & 0xff) as usize]
                ^ t.te[2][((s1 >> 8) & 0xff) as usize]
                ^ t.te[3][(s2 & 0xff) as usize]
                ^ round[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let sb = |b: u32| u32::from(t.sbox[(b & 0xff) as usize]);
        let o0 = (sb(s0 >> 24) << 24 | sb(s1 >> 16) << 16 | sb(s2 >> 8) << 8 | sb(s3)) ^ rk[NR][0];
        let o1 = (sb(s1 >> 24) << 24 | sb(s2 >> 16) << 16 | sb(s3 >> 8) << 8 | sb(s0)) ^ rk[NR][1];
        let o2 = (sb(s2 >> 24) << 24 | sb(s3 >> 16) << 16 | sb(s0 >> 8) << 8 | sb(s1)) ^ rk[NR][2];
        let o3 = (sb(s3 >> 24) << 24 | sb(s0 >> 16) << 16 | sb(s1 >> 8) << 8 | sb(s2)) ^ rk[NR][3];
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Encrypts one 16-byte block in place with the byte-wise reference
    /// rounds. Kept as the equivalence baseline for the table-driven path;
    /// exposed through [`crate::reference`].
    pub(crate) fn encrypt_block_scalar(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..NR {
            sub_bytes(block, &t.sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[NR]);
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        for round in (1..NR).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            sub_bytes(block, &t.inv_sbox);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts `buf` in CTR mode with the given 16-byte initial counter
    /// block; the same call decrypts.
    ///
    /// The counter is incremented over the full 128 bits, big-endian.
    /// Keystream blocks are generated [`CTR_BATCH`] at a time and XORed in as
    /// whole words.
    pub fn ctr_xor(&self, counter0: &[u8; 16], buf: &mut [u8]) {
        let mut counter = *counter0;
        ctr_stream(self, buf, move || {
            let block = counter;
            increment_be(&mut counter);
            block
        });
    }
}

/// Keystream blocks generated per batch before XORing into the message.
pub(crate) const CTR_BATCH: usize = 8;

/// Shared CTR engine: `next_counter` yields successive counter blocks (the
/// increment rule differs between raw CTR and GCM's 32-bit GCTR), and the
/// keystream is produced in batches of [`CTR_BATCH`] encryptions then XORed
/// into `buf` word-wise.
#[inline]
pub(crate) fn ctr_stream(aes: &Aes128, buf: &mut [u8], mut next_counter: impl FnMut() -> [u8; 16]) {
    let mut ks = [0u8; 16 * CTR_BATCH];
    let mut chunks = buf.chunks_exact_mut(16 * CTR_BATCH);
    for chunk in &mut chunks {
        for block in ks.chunks_exact_mut(16) {
            block.copy_from_slice(&next_counter());
            aes.encrypt_block(block.try_into().expect("16-byte keystream block"));
        }
        xor_words(chunk, &ks);
    }
    let tail = chunks.into_remainder();
    for chunk in tail.chunks_mut(16) {
        let mut keystream = next_counter();
        aes.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

/// XORs `src` into `dst` sixteen bytes (one `u128`) at a time.
/// `dst.len()` must equal `src.len()` and be a multiple of 16.
#[inline]
pub(crate) fn xor_words(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len() % 16, 0);
    for (d, s) in dst.chunks_exact_mut(16).zip(src.chunks_exact(16)) {
        let x = u128::from_ne_bytes(d.as_ref().try_into().expect("16-byte lane"))
            ^ u128::from_ne_bytes(s.try_into().expect("16-byte lane"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
}

#[inline]
fn increment_be(counter: &mut [u8; 16]) {
    for byte in counter.iter_mut().rev() {
        *byte = byte.wrapping_add(1);
        if *byte != 0 {
            break;
        }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    #[test]
    fn fips197_known_answer() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn sbox_spot_checks() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for x in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn nist_sp800_38a_ctr_f51() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let counter: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .unwrap()
            .try_into()
            .unwrap();
        let mut data = unhex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
        .unwrap();
        Aes128::new(&key).ctr_xor(&counter, &mut data);
        assert_eq!(
            hex(&data),
            concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            )
        );
    }

    #[test]
    fn ctr_roundtrip_odd_sizes() {
        let aes = Aes128::new(&[7u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 100] {
            let mut data: Vec<u8> = (0..len as u8).collect();
            let original = data.clone();
            aes.ctr_xor(&[0u8; 16], &mut data);
            if len > 0 {
                assert_ne!(data, original);
            }
            aes.ctr_xor(&[0u8; 16], &mut data);
            assert_eq!(data, original, "length {len}");
        }
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_be(&mut c);
        assert_eq!(c, [0u8; 16]);
        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_be(&mut c);
        assert_eq!(c[15], 0);
        assert_eq!(c[14], 1);
    }

    #[test]
    fn table_path_matches_scalar_path() {
        let aes = Aes128::new(&[0x5au8; 16]);
        let mut block = [0u8; 16];
        for trial in 0..64u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_mul(31).wrapping_add(trial ^ i as u8);
            }
            let mut fast = block;
            let mut scalar = block;
            aes.encrypt_block(&mut fast);
            aes.encrypt_block_scalar(&mut scalar);
            assert_eq!(fast, scalar, "trial {trial}");
            block = fast;
        }
    }

    #[test]
    fn debug_hides_keys() {
        let aes = Aes128::new(&[9u8; 16]);
        let s = format!("{aes:?}");
        assert!(s.contains("Aes128"));
        assert!(!s.contains('9'));
    }
}
