//! AES-128 block cipher (FIPS 197).
//!
//! The S-box is derived at first use from its algebraic definition
//! (multiplicative inverse in GF(2^8) followed by the affine transform)
//! rather than being transcribed, and the implementation is validated against
//! the FIPS-197 known-answer vector.

use std::sync::OnceLock;

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b; // x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    p
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Multiplicative inverses by brute force (256*256 is trivial).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..256usize {
            let i = inv[x];
            let s = i
                ^ i.rotate_left(1)
                ^ i.rotate_left(2)
                ^ i.rotate_left(3)
                ^ i.rotate_left(4)
                ^ 0x63;
            sbox[x] = s;
            inv_sbox[s as usize] = x as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// An expanded AES-128 key, usable for block encryption and decryption.
///
/// ```
/// use securecloud_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..NR {
            sub_bytes(block, &t.sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[NR]);
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        for round in (1..NR).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            sub_bytes(block, &t.inv_sbox);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts `buf` in CTR mode with the given 16-byte initial counter
    /// block; the same call decrypts.
    ///
    /// The counter is incremented over the full 128 bits, big-endian.
    pub fn ctr_xor(&self, counter0: &[u8; 16], buf: &mut [u8]) {
        let mut counter = *counter0;
        for chunk in buf.chunks_mut(16) {
            let mut keystream = counter;
            self.encrypt_block(&mut keystream);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            increment_be(&mut counter);
        }
    }
}

fn increment_be(counter: &mut [u8; 16]) {
    for byte in counter.iter_mut().rev() {
        *byte = byte.wrapping_add(1);
        if *byte != 0 {
            break;
        }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex, unhex};

    #[test]
    fn fips197_known_answer() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
    }

    #[test]
    fn sbox_spot_checks() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for x in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn nist_sp800_38a_ctr_f51() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let counter: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .unwrap()
            .try_into()
            .unwrap();
        let mut data = unhex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ))
        .unwrap();
        Aes128::new(&key).ctr_xor(&counter, &mut data);
        assert_eq!(
            hex(&data),
            concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            )
        );
    }

    #[test]
    fn ctr_roundtrip_odd_sizes() {
        let aes = Aes128::new(&[7u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 100] {
            let mut data: Vec<u8> = (0..len as u8).collect();
            let original = data.clone();
            aes.ctr_xor(&[0u8; 16], &mut data);
            if len > 0 {
                assert_ne!(data, original);
            }
            aes.ctr_xor(&[0u8; 16], &mut data);
            assert_eq!(data, original, "length {len}");
        }
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_be(&mut c);
        assert_eq!(c, [0u8; 16]);
        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_be(&mut c);
        assert_eq!(c[15], 0);
        assert_eq!(c[14], 1);
    }

    #[test]
    fn debug_hides_keys() {
        let aes = Aes128::new(&[9u8; 16]);
        let s = format!("{aes:?}");
        assert!(s.contains("Aes128"));
        assert!(!s.contains('9'));
    }
}
