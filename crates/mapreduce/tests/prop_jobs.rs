//! Property tests: map/reduce results are independent of partitioning and
//! failure injection, and equal a sequential reference computation.

use proptest::prelude::*;
use securecloud_mapreduce::{
    partition_for, FnMapper, FnReducer, JobConfig, MapReduceRunner, Record,
};
use securecloud_sgx::enclave::Platform;
use std::collections::BTreeMap;

fn word_count_reference(input: &[Record]) -> BTreeMap<Vec<u8>, u64> {
    let mut counts = BTreeMap::new();
    for (_, value) in input {
        for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            *counts.entry(word.to_vec()).or_insert(0u64) += 1;
        }
    }
    counts
}

fn run_word_count(
    input: &[Record],
    mappers: usize,
    reducers: usize,
    fail_task: Option<usize>,
) -> BTreeMap<Vec<u8>, u64> {
    let runner = MapReduceRunner::new(Platform::new());
    if let Some(task) = fail_task {
        runner.injector().fail_map_task(task, 1);
    }
    let result = runner
        .run(
            &JobConfig {
                mappers,
                reducers,
                max_retries: 2,
            },
            input,
            &FnMapper(
                |_k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                    for word in v.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                        emit(word.to_vec(), 1u64.to_le_bytes().to_vec());
                    }
                },
            ),
            &FnReducer(|_k: &[u8], values: &[Vec<u8>]| {
                values
                    .iter()
                    .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                    .sum::<u64>()
                    .to_le_bytes()
                    .to_vec()
            }),
        )
        .expect("job completes");
    result
        .output
        .into_iter()
        .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
        .collect()
}

fn arb_input() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        prop::collection::vec(prop_oneof!["[a-e]{1,3}".prop_map(String::into_bytes)], 0..6)
            .prop_map(|words| words.join(&b' ')),
        0..12,
    )
    .prop_map(|lines| {
        lines
            .into_iter()
            .enumerate()
            .map(|(i, line)| ((i as u64).to_le_bytes().to_vec(), line))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The distributed result equals the sequential reference for any
    /// input and any (mappers, reducers) shape.
    #[test]
    fn equals_reference(
        input in arb_input(),
        mappers in 1usize..6,
        reducers in 1usize..5,
    ) {
        let got = run_word_count(&input, mappers, reducers, None);
        prop_assert_eq!(got, word_count_reference(&input));
    }

    /// An injected worker failure (with retries available) never changes
    /// the result.
    #[test]
    fn failure_transparent(
        input in arb_input(),
        fail_task in 0usize..4,
    ) {
        let clean = run_word_count(&input, 4, 2, None);
        let faulty = run_word_count(&input, 4, 2, Some(fail_task));
        prop_assert_eq!(clean, faulty);
    }

    /// The partitioner is deterministic, bounded, and spreads keys.
    #[test]
    fn partitioner_properties(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 1..8), 1..100),
        reducers in 1usize..9,
    ) {
        let mut used = vec![false; reducers];
        for key in &keys {
            let p = partition_for(key, reducers);
            prop_assert!(p < reducers);
            prop_assert_eq!(p, partition_for(key, reducers));
            used[p] = true;
        }
        // With many distinct keys, at least half the partitions are hit.
        if keys.len() >= reducers * 8 {
            let hit = used.iter().filter(|&&u| u).count();
            prop_assert!(hit * 2 >= reducers, "{hit}/{reducers} partitions used");
        }
    }
}
