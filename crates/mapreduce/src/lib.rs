//! Secure map/reduce computations (paper §III-B: "map/reduce based
//! computations" as a big-data building block).
//!
//! Mappers and reducers execute inside simulated enclaves; the shuffle —
//! the only stage whose data rests on untrusted storage — is encrypted and
//! authenticated per partition chunk. Worker failures are injected for
//! testing and handled by deterministic re-execution, MapReduce's classic
//! fault-tolerance story.
//!
//! # Example
//!
//! ```
//! use securecloud_mapreduce::{FnMapper, FnReducer, JobConfig, MapReduceRunner};
//! use securecloud_sgx::enclave::Platform;
//!
//! let runner = MapReduceRunner::new(Platform::new());
//! let input = vec![
//!     (b"line1".to_vec(), b"a b a".to_vec()),
//!     (b"line2".to_vec(), b"b".to_vec()),
//! ];
//! let result = runner
//!     .run(
//!         &JobConfig::default(),
//!         &input,
//!         &FnMapper(|_k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
//!             for word in v.split(|&b| b == b' ') {
//!                 emit(word.to_vec(), vec![1]);
//!             }
//!         }),
//!         &FnReducer(|_k: &[u8], values: &[Vec<u8>]| vec![values.len() as u8]),
//!     )
//!     .unwrap();
//! assert_eq!(result.output[&b"a"[..].to_vec()], vec![2]);
//! ```

use securecloud_crypto::gcm::{nonce_from_seq, AesGcm};
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::wire::Wire;
use securecloud_crypto::CryptoError;
use securecloud_sgx::enclave::{EnclaveConfig, Platform};
use securecloud_sgx::SgxError;
use securecloud_telemetry::stats::Welford;
use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A key-value input/output record.
pub type Record = (Vec<u8>, Vec<u8>);

/// User map function.
pub trait Mapper: Sync {
    /// Maps one record, emitting intermediate pairs.
    fn map(&self, key: &[u8], value: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// User reduce function.
pub trait Reducer: Sync {
    /// Reduces all values of one intermediate key to an output value.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>]) -> Vec<u8>;
}

/// Closure adapter for [`Mapper`].
pub struct FnMapper<F>(pub F);
impl<F> Mapper for FnMapper<F>
where
    F: Fn(&[u8], &[u8], &mut dyn FnMut(Vec<u8>, Vec<u8>)) + Sync,
{
    fn map(&self, key: &[u8], value: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        (self.0)(key, value, emit);
    }
}

/// Closure adapter for [`Reducer`].
pub struct FnReducer<F>(pub F);
impl<F> Reducer for FnReducer<F>
where
    F: Fn(&[u8], &[Vec<u8>]) -> Vec<u8> + Sync,
{
    fn reduce(&self, key: &[u8], values: &[Vec<u8>]) -> Vec<u8> {
        (self.0)(key, values)
    }
}

/// Job parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Number of map tasks.
    pub mappers: usize,
    /// Number of reduce partitions.
    pub reducers: usize,
    /// Maximum re-executions per failed task.
    pub max_retries: u32,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            mappers: 4,
            reducers: 2,
            max_retries: 2,
        }
    }
}

/// Counters for one job run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Input records consumed.
    pub records_in: u64,
    /// Intermediate pairs emitted by mappers.
    pub pairs_emitted: u64,
    /// Ciphertext bytes that crossed the shuffle.
    pub shuffle_bytes: u64,
    /// Distinct reduce keys.
    pub reduce_groups: u64,
    /// Task re-executions after injected failures.
    pub retries: u64,
    /// Simulated enclave cycles across all workers.
    pub worker_cycles: u64,
}

/// Result of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Reduced output, ordered by key.
    pub output: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Counters.
    pub stats: JobStats,
    /// Distribution of enclave cycles per worker task (map attempts and
    /// reduce partitions), for straggler analysis. Kept outside
    /// [`JobStats`] because that struct is `Eq` and exact counters only.
    pub task_cycle_stats: Welford,
}

/// Errors from the map/reduce runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MrError {
    /// A task kept failing past `max_retries`.
    TaskFailed {
        /// Which map task.
        task: usize,
        /// Attempts made.
        attempts: u32,
    },
    /// Shuffle data failed authentication (untrusted storage tampered).
    ShuffleTampered(CryptoError),
    /// Enclave machinery failed.
    Sgx(SgxError),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::TaskFailed { task, attempts } => {
                write!(f, "map task {task} failed after {attempts} attempts")
            }
            MrError::ShuffleTampered(e) => write!(f, "shuffle data tampered: {e}"),
            MrError::Sgx(e) => write!(f, "enclave failure: {e}"),
        }
    }
}

impl StdError for MrError {}

/// Deterministic partitioner: SHA-256 of the key, mod `reducers`.
#[must_use]
pub fn partition_for(key: &[u8], reducers: usize) -> usize {
    let digest = Sha256::digest(key);
    let x = u64::from_be_bytes(digest[..8].try_into().expect("sized"));
    (x % reducers.max(1) as u64) as usize
}

/// Fault injection: makes chosen map tasks fail on their first attempt(s).
#[derive(Debug, Default)]
pub struct FailureInjector {
    /// For each map task index, how many initial attempts should fail.
    failures: Mutex<BTreeMap<usize, u32>>,
    tripped: AtomicU64,
}

impl FailureInjector {
    /// Creates a no-op injector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes map task `task` fail its first `times` attempts.
    pub fn fail_map_task(&self, task: usize, times: u32) {
        self.failures
            .lock()
            .expect("poison-free")
            .insert(task, times);
    }

    fn should_fail(&self, task: usize) -> bool {
        let mut failures = self.failures.lock().expect("poison-free");
        match failures.get_mut(&task) {
            Some(remaining) if *remaining > 0 => {
                *remaining -= 1;
                self.tripped.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// How many failures actually triggered.
    #[must_use]
    pub fn tripped(&self) -> u64 {
        self.tripped.load(Ordering::Relaxed)
    }
}

/// The job runner: owns the platform on which worker enclaves launch.
#[derive(Debug)]
pub struct MapReduceRunner {
    platform: Platform,
    injector: FailureInjector,
}

impl MapReduceRunner {
    /// Creates a runner on `platform`.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        MapReduceRunner {
            platform,
            injector: FailureInjector::new(),
        }
    }

    /// Access to the failure injector (tests, chaos benchmarks).
    #[must_use]
    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// Runs a job to completion.
    ///
    /// # Errors
    ///
    /// [`MrError::TaskFailed`] if a task exceeds its retry budget,
    /// [`MrError::ShuffleTampered`] if sealed shuffle data fails to open,
    /// [`MrError::Sgx`] on enclave launch failure.
    pub fn run(
        &self,
        config: &JobConfig,
        input: &[Record],
        mapper: &dyn Mapper,
        reducer: &dyn Reducer,
    ) -> Result<JobResult, MrError> {
        let job_key: [u8; 16] = securecloud_crypto::random_array();
        let mut stats = JobStats {
            records_in: input.len() as u64,
            ..JobStats::default()
        };
        let mut task_cycle_stats = Welford::new();

        // ---- Map phase: one enclave per task, encrypted shuffle output.
        // shuffle[reducer][..] = (map task, sealed chunk) on untrusted storage.
        let mut shuffle: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); config.reducers.max(1)];
        let chunk_len = input.len().div_ceil(config.mappers.max(1)).max(1);
        for (task, chunk) in input.chunks(chunk_len).enumerate() {
            let mut attempts = 0;
            let partitions = loop {
                attempts += 1;
                if attempts > config.max_retries + 1 {
                    return Err(MrError::TaskFailed {
                        task,
                        attempts: attempts - 1,
                    });
                }
                match self.run_map_task(
                    config,
                    task,
                    chunk,
                    mapper,
                    &job_key,
                    &mut stats,
                    &mut task_cycle_stats,
                ) {
                    Ok(partitions) => break partitions,
                    Err(TaskFault) => {
                        stats.retries += 1;
                        continue;
                    }
                }
            };
            for (reducer_idx, sealed) in partitions.into_iter().enumerate() {
                if let Some(sealed) = sealed {
                    stats.shuffle_bytes += sealed.len() as u64;
                    shuffle[reducer_idx].push((task, sealed));
                }
            }
        }

        // ---- Reduce phase: one enclave per partition.
        let mut output = BTreeMap::new();
        for (reducer_idx, chunks) in shuffle.iter().enumerate() {
            let mut enclave = self
                .platform
                .launch(EnclaveConfig::new(
                    &format!("reduce-{reducer_idx}"),
                    b"securecloud mapreduce reducer v1",
                ))
                .map_err(MrError::Sgx)?;
            let mut groups: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
            for (task, sealed) in chunks {
                let nonce = nonce_from_seq(reducer_idx as u32, *task as u64);
                let plain = AesGcm::new(&job_key)
                    .open(&nonce, sealed, b"securecloud shuffle")
                    .map_err(MrError::ShuffleTampered)?;
                enclave.memory().charge_cycles(sealed.len() as u64 * 2);
                let pairs: Vec<Record> =
                    Wire::from_wire(&plain).map_err(MrError::ShuffleTampered)?;
                for (k, v) in pairs {
                    groups.entry(k).or_default().push(v);
                }
            }
            stats.reduce_groups += groups.len() as u64;
            let result = enclave
                .ecall(|mem| {
                    let mut out = Vec::with_capacity(groups.len());
                    for (key, values) in &groups {
                        mem.charge_ops(1 + values.len() as u64);
                        out.push((key.clone(), reducer.reduce(key, values)));
                    }
                    out
                })
                .map_err(MrError::Sgx)?;
            let cycles = enclave.memory().cycles();
            stats.worker_cycles += cycles;
            task_cycle_stats.observe(cycles as f64);
            for (k, v) in result {
                output.insert(k, v);
            }
        }
        Ok(JobResult {
            output,
            stats,
            task_cycle_stats,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_map_task(
        &self,
        config: &JobConfig,
        task: usize,
        chunk: &[Record],
        mapper: &dyn Mapper,
        job_key: &[u8; 16],
        stats: &mut JobStats,
        task_cycle_stats: &mut Welford,
    ) -> Result<Vec<Option<Vec<u8>>>, TaskFault> {
        if self.injector.should_fail(task) {
            return Err(TaskFault);
        }
        let mut enclave = self
            .platform
            .launch(EnclaveConfig::new(
                &format!("map-{task}"),
                b"securecloud mapreduce mapper v1",
            ))
            .map_err(|_| TaskFault)?;
        let mut partitions: Vec<Vec<Record>> = vec![Vec::new(); config.reducers.max(1)];
        let mut emitted = 0u64;
        enclave
            .ecall(|mem| {
                for (key, value) in chunk {
                    mem.charge_ops(2 + (value.len() as u64) / 16);
                    mapper.map(key, value, &mut |k, v| {
                        let p = partition_for(&k, config.reducers);
                        emitted += 1;
                        partitions[p].push((k, v));
                    });
                }
            })
            .map_err(|_| TaskFault)?;
        stats.pairs_emitted += emitted;

        // Seal each non-empty partition; nonce binds (reducer, mapper task).
        let sealed: Vec<Option<Vec<u8>>> = partitions
            .into_iter()
            .enumerate()
            .map(|(reducer_idx, pairs)| {
                if pairs.is_empty() {
                    return None;
                }
                let nonce = nonce_from_seq(reducer_idx as u32, task as u64);
                let body = pairs.to_wire();
                enclave.memory().charge_cycles(body.len() as u64 * 2);
                Some(AesGcm::new(job_key).seal(&nonce, &body, b"securecloud shuffle"))
            })
            .collect();
        let cycles = enclave.memory().cycles();
        stats.worker_cycles += cycles;
        task_cycle_stats.observe(cycles as f64);
        Ok(sealed)
    }
}

struct TaskFault;

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count_input() -> Vec<Record> {
        vec![
            (b"l1".to_vec(), b"the quick brown fox".to_vec()),
            (b"l2".to_vec(), b"the lazy dog".to_vec()),
            (b"l3".to_vec(), b"the quick dog".to_vec()),
        ]
    }

    fn word_mapper() -> impl Mapper {
        FnMapper(
            |_k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                for word in v.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                    emit(word.to_vec(), vec![1u8]);
                }
            },
        )
    }

    fn count_reducer() -> impl Reducer {
        FnReducer(|_k: &[u8], values: &[Vec<u8>]| {
            (values.iter().map(|v| u64::from(v[0])).sum::<u64>())
                .to_le_bytes()
                .to_vec()
        })
    }

    fn counts(result: &JobResult) -> BTreeMap<String, u64> {
        result
            .output
            .iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(k).to_string(),
                    u64::from_le_bytes(v.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn word_count_correct() {
        let runner = MapReduceRunner::new(Platform::new());
        let result = runner
            .run(
                &JobConfig::default(),
                &word_count_input(),
                &word_mapper(),
                &count_reducer(),
            )
            .unwrap();
        let counts = counts(&result);
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["quick"], 2);
        assert_eq!(counts["dog"], 2);
        assert_eq!(counts["fox"], 1);
        assert_eq!(result.stats.records_in, 3);
        assert_eq!(result.stats.pairs_emitted, 10);
        assert!(result.stats.shuffle_bytes > 0);
        assert!(result.stats.worker_cycles > 0);
        assert_eq!(result.stats.reduce_groups, 6);
        // One Welford sample per map attempt and reduce partition, and the
        // distribution's total matches the scalar counter.
        assert!(result.task_cycle_stats.count() > 0);
        let total = result.task_cycle_stats.mean() * result.task_cycle_stats.count() as f64;
        assert!((total - result.stats.worker_cycles as f64).abs() < 1.0);
    }

    #[test]
    fn results_stable_across_partition_counts() {
        let runner = MapReduceRunner::new(Platform::new());
        let mut baseline = None;
        for (mappers, reducers) in [(1, 1), (2, 3), (8, 5)] {
            let result = runner
                .run(
                    &JobConfig {
                        mappers,
                        reducers,
                        max_retries: 0,
                    },
                    &word_count_input(),
                    &word_mapper(),
                    &count_reducer(),
                )
                .unwrap();
            let c = counts(&result);
            match &baseline {
                None => baseline = Some(c),
                Some(b) => assert_eq!(&c, b, "{mappers}x{reducers}"),
            }
        }
    }

    #[test]
    fn failure_injection_retries_and_recovers() {
        let runner = MapReduceRunner::new(Platform::new());
        runner.injector().fail_map_task(0, 1);
        let result = runner
            .run(
                &JobConfig::default(),
                &word_count_input(),
                &word_mapper(),
                &count_reducer(),
            )
            .unwrap();
        assert_eq!(result.stats.retries, 1);
        assert_eq!(runner.injector().tripped(), 1);
        assert_eq!(counts(&result)["the"], 3, "result unchanged by retry");
    }

    #[test]
    fn exhausted_retries_fail_job() {
        let runner = MapReduceRunner::new(Platform::new());
        runner.injector().fail_map_task(0, 10);
        let err = runner.run(
            &JobConfig {
                max_retries: 2,
                ..JobConfig::default()
            },
            &word_count_input(),
            &word_mapper(),
            &count_reducer(),
        );
        assert!(matches!(
            err,
            Err(MrError::TaskFailed {
                task: 0,
                attempts: 3
            })
        ));
    }

    #[test]
    fn partitioner_deterministic_and_bounded() {
        for key in [b"a".as_slice(), b"meter/7", b"", b"\xff\xff"] {
            let p = partition_for(key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(key, 7));
        }
        assert_eq!(partition_for(b"x", 1), 0);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let runner = MapReduceRunner::new(Platform::new());
        let result = runner
            .run(&JobConfig::default(), &[], &word_mapper(), &count_reducer())
            .unwrap();
        assert!(result.output.is_empty());
        assert_eq!(result.stats.pairs_emitted, 0);
    }

    #[test]
    fn shuffle_never_exposes_plaintext() {
        // Run a tiny job and check the sealed chunks do not contain the
        // intermediate words. We reach into run_map_task via the public
        // API by using a mapper that emits a distinctive secret token.
        let runner = MapReduceRunner::new(Platform::new());
        let input = vec![(b"k".to_vec(), b"SECRETTOKEN".to_vec())];
        // Capture shuffle bytes through stats + a custom reducer that
        // asserts it received the token (so encryption round-trips).
        let result = runner
            .run(
                &JobConfig::default(),
                &input,
                &FnMapper(
                    |_k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                        emit(v.to_vec(), vec![1]);
                    },
                ),
                &FnReducer(|k: &[u8], _v: &[Vec<u8>]| {
                    assert_eq!(k, b"SECRETTOKEN");
                    vec![1]
                }),
            )
            .unwrap();
        assert_eq!(result.output.len(), 1);
    }
}
