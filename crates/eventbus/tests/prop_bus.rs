//! Property tests for the event bus's at-least-once delivery contract.

use proptest::prelude::*;
use securecloud_eventbus::bus::EventBus;
use securecloud_scbr::types::Publication;

proptest! {
    /// Every published message is eventually delivered at least once to a
    /// single unfiltered subscriber, in publish order, regardless of an
    /// arbitrary ack/nack/crash pattern — and acked messages stop.
    #[test]
    fn at_least_once_under_arbitrary_consumer(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..25),
        // 0 = ack, 1 = nack, 2 = drop (crash, lease expires)
        behaviours in prop::collection::vec(0u8..3, 1..25),
    ) {
        let lease = 100;
        let mut bus = EventBus::new(lease);
        let subscriber = bus.subscribe("t", None);
        for (i, payload) in payloads.iter().enumerate() {
            // Prefix the index so deliveries can be tracked even when the
            // generated payloads collide.
            let mut framed = (i as u64).to_le_bytes().to_vec();
            framed.extend_from_slice(payload);
            bus.publish("t", framed, Publication::new());
        }
        let mut delivered_at_least_once = vec![0u32; payloads.len()];
        let mut next_expected = 0usize;
        // Drive until everything is acked (bounded by a generous budget).
        let mut budget = payloads.len() * 20 + 50;
        let mut acked = 0usize;
        while acked < payloads.len() && budget > 0 {
            budget -= 1;
            match bus.fetch(subscriber) {
                Some(message) => {
                    let index =
                        u64::from_le_bytes(message.payload[..8].try_into().unwrap()) as usize;
                    prop_assert_eq!(&message.payload[8..], &payloads[index][..]);
                    delivered_at_least_once[index] += 1;
                    // First deliveries arrive in publish order.
                    if message.attempt == 1 {
                        prop_assert!(index >= next_expected);
                        next_expected = next_expected.max(index);
                    }
                    let behaviour = behaviours[index % behaviours.len()];
                    match behaviour {
                        0 => {
                            prop_assert!(bus.ack(subscriber, message.id));
                            acked += 1;
                        }
                        1 => {
                            prop_assert!(bus.nack(subscriber, message.id));
                        }
                        _ => { /* crash: no ack; lease will expire */ }
                    }
                }
                None => bus.advance(lease + 1),
            }
        }
        // Whatever the consumer did, every message was delivered at least
        // once (at-least-once), and permanently-unacked ones simply keep
        // their redelivery eligibility.
        for (index, &count) in delivered_at_least_once.iter().enumerate() {
            prop_assert!(
                count >= 1,
                "message {index} was never delivered (budget exhausted)"
            );
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.published, payloads.len() as u64);
        prop_assert!(stats.delivered >= stats.acked);
    }

    /// A crashed consumer (fetch, never ack) gets every message back after
    /// the lease expires: one redelivery per message, nothing lost.
    #[test]
    fn lease_expiry_redelivers_everything(
        count in 1usize..30,
        lease in 1u64..1_000,
        overshoot in 0u64..100,
    ) {
        let mut bus = EventBus::new(lease);
        let subscriber = bus.subscribe("t", None);
        for i in 0..count {
            bus.publish("t", vec![i as u8], Publication::new());
        }
        // Consumer takes everything, then crashes before acking.
        let mut first_ids = Vec::new();
        while let Some(message) = bus.fetch(subscriber) {
            prop_assert_eq!(message.attempt, 1);
            first_ids.push(message.id);
        }
        prop_assert_eq!(first_ids.len(), count);
        prop_assert_eq!(bus.backlog(subscriber), 0);
        // Advancing to just before expiry redelivers nothing...
        if lease > 1 {
            bus.advance(lease - 1);
            prop_assert_eq!(bus.backlog(subscriber), 0);
            prop_assert_eq!(bus.stats().redelivered, 0);
        }
        // ...and past it, everything comes back exactly once, attempt 2.
        bus.advance(if lease > 1 { 1 + overshoot } else { lease + overshoot });
        prop_assert_eq!(bus.backlog(subscriber), count);
        prop_assert_eq!(bus.stats().redelivered, count as u64);
        let mut redelivered_ids = Vec::new();
        while let Some(message) = bus.fetch(subscriber) {
            prop_assert_eq!(message.attempt, 2);
            redelivered_ids.push(message.id);
            prop_assert!(bus.ack(subscriber, message.id));
        }
        redelivered_ids.sort();
        first_ids.sort();
        prop_assert_eq!(redelivered_ids, first_ids, "no loss, no spurious ids");
        prop_assert_eq!(bus.stats().acked, count as u64);
    }

    /// Nacked messages requeue (to the back) and redeliver with a bumped
    /// attempt counter until acked; within the retry budget nothing is
    /// lost, and beyond it everything lands in the dead-letter queue.
    #[test]
    fn nack_requeues_until_budget(
        count in 1usize..20,
        nacks_before_ack in 1u32..6,
        budget in 1u32..8,
    ) {
        let mut bus = EventBus::new(1_000);
        bus.set_max_attempts(Some(budget));
        let subscriber = bus.subscribe("t", None);
        for i in 0..count {
            bus.publish("t", vec![i as u8], Publication::new());
        }
        // Nack every message `nacks_before_ack` times, then ack.
        let mut acked = 0u64;
        let mut steps = count as u32 * (nacks_before_ack + 1) + 10;
        while let Some(message) = bus.fetch(subscriber) {
            prop_assert!(message.attempt <= budget);
            if message.attempt > nacks_before_ack {
                prop_assert!(bus.ack(subscriber, message.id));
                acked += 1;
            } else {
                prop_assert!(bus.nack(subscriber, message.id));
            }
            steps -= 1;
            prop_assert!(steps > 0, "bus kept redelivering past any budget");
        }
        let stats = bus.stats();
        if nacks_before_ack < budget {
            // Budget never bites: everything eventually acked, DLQ empty.
            prop_assert_eq!(acked, count as u64);
            prop_assert!(bus.dead_letters().is_empty());
            prop_assert_eq!(stats.redelivered, (count as u32 * nacks_before_ack) as u64);
        } else {
            // Budget exhausted before the consumer relented: every message
            // is parked in the DLQ at exactly `budget` attempts — none lost.
            prop_assert_eq!(acked, 0);
            prop_assert_eq!(bus.dead_letters().len(), count);
            prop_assert_eq!(stats.dead_lettered, count as u64);
            for dead in bus.dead_letters() {
                prop_assert_eq!(dead.message.attempt, budget);
                prop_assert_eq!(dead.reason, "nack");
            }
        }
        prop_assert_eq!(stats.acked, acked);
    }

    /// Virtual time only moves forward and redelivery counts are sane.
    #[test]
    fn stats_invariants(
        publishes in 0u8..20,
        advances in prop::collection::vec(1u64..500, 0..10),
    ) {
        let mut bus = EventBus::new(50);
        let subscriber = bus.subscribe("t", None);
        for i in 0..publishes {
            bus.publish("t", vec![i], Publication::new());
        }
        // Fetch everything, ack nothing.
        while bus.fetch(subscriber).is_some() {}
        let mut last = bus.now_ms();
        for a in advances {
            bus.advance(a);
            prop_assert!(bus.now_ms() >= last);
            last = bus.now_ms();
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.acked, 0);
        prop_assert!(stats.delivered <= stats.published + stats.redelivered);
    }
}
