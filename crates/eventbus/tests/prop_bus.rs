//! Property tests for the event bus's at-least-once delivery contract.

use proptest::prelude::*;
use securecloud_eventbus::bus::EventBus;
use securecloud_scbr::types::Publication;

proptest! {
    /// Every published message is eventually delivered at least once to a
    /// single unfiltered subscriber, in publish order, regardless of an
    /// arbitrary ack/nack/crash pattern — and acked messages stop.
    #[test]
    fn at_least_once_under_arbitrary_consumer(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..25),
        // 0 = ack, 1 = nack, 2 = drop (crash, lease expires)
        behaviours in prop::collection::vec(0u8..3, 1..25),
    ) {
        let lease = 100;
        let mut bus = EventBus::new(lease);
        let subscriber = bus.subscribe("t", None);
        for (i, payload) in payloads.iter().enumerate() {
            // Prefix the index so deliveries can be tracked even when the
            // generated payloads collide.
            let mut framed = (i as u64).to_le_bytes().to_vec();
            framed.extend_from_slice(payload);
            bus.publish("t", framed, Publication::new());
        }
        let mut delivered_at_least_once = vec![0u32; payloads.len()];
        let mut next_expected = 0usize;
        // Drive until everything is acked (bounded by a generous budget).
        let mut budget = payloads.len() * 20 + 50;
        let mut acked = 0usize;
        while acked < payloads.len() && budget > 0 {
            budget -= 1;
            match bus.fetch(subscriber) {
                Some(message) => {
                    let index =
                        u64::from_le_bytes(message.payload[..8].try_into().unwrap()) as usize;
                    prop_assert_eq!(&message.payload[8..], &payloads[index][..]);
                    delivered_at_least_once[index] += 1;
                    // First deliveries arrive in publish order.
                    if message.attempt == 1 {
                        prop_assert!(index >= next_expected);
                        next_expected = next_expected.max(index);
                    }
                    let behaviour = behaviours[index % behaviours.len()];
                    match behaviour {
                        0 => {
                            prop_assert!(bus.ack(subscriber, message.id));
                            acked += 1;
                        }
                        1 => {
                            prop_assert!(bus.nack(subscriber, message.id));
                        }
                        _ => { /* crash: no ack; lease will expire */ }
                    }
                }
                None => bus.advance(lease + 1),
            }
        }
        // Whatever the consumer did, every message was delivered at least
        // once (at-least-once), and permanently-unacked ones simply keep
        // their redelivery eligibility.
        for (index, &count) in delivered_at_least_once.iter().enumerate() {
            prop_assert!(
                count >= 1,
                "message {index} was never delivered (budget exhausted)"
            );
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.published, payloads.len() as u64);
        prop_assert!(stats.delivered >= stats.acked);
    }

    /// Virtual time only moves forward and redelivery counts are sane.
    #[test]
    fn stats_invariants(
        publishes in 0u8..20,
        advances in prop::collection::vec(1u64..500, 0..10),
    ) {
        let mut bus = EventBus::new(50);
        let subscriber = bus.subscribe("t", None);
        for i in 0..publishes {
            bus.publish("t", vec![i], Publication::new());
        }
        // Fetch everything, ack nothing.
        while bus.fetch(subscriber).is_some() {}
        let mut last = bus.now_ms();
        for a in advances {
            bus.advance(a);
            prop_assert!(bus.now_ms() >= last);
            last = bus.now_ms();
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.acked, 0);
        prop_assert!(stats.delivered <= stats.published + stats.redelivered);
    }
}
