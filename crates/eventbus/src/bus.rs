//! The event bus: topics, content filters, leases, and redelivery.
//!
//! The bus implements *at-least-once* delivery with a lease/ack protocol:
//! a fetched message is leased to the subscriber; if it is not acknowledged
//! before the lease expires (crash, slow consumer), the bus redelivers it.
//! Subscribers may attach an SCBR [`Subscription`] as a content filter, so
//! the bus doubles as the "secure hook-up" between micro-services (§V-B).
//!
//! Time is virtual: the application (or the simulation harness) advances it
//! with [`EventBus::advance`].

use securecloud_scbr::types::{Publication, Subscription};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Bus-assigned message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// Bus-assigned subscriber identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(pub u64);

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Unique id (stable across redeliveries).
    pub id: MessageId,
    /// Topic it was published to.
    pub topic: String,
    /// Payload bytes (opaque to the bus; typically sealed).
    pub payload: Vec<u8>,
    /// Routable attributes evaluated against content filters.
    pub attributes: Publication,
    /// Delivery attempt counter (1 on first delivery).
    pub attempt: u32,
}

/// Bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries (including redeliveries).
    pub delivered: u64,
    /// Redeliveries after lease expiry or nack.
    pub redelivered: u64,
    /// Acknowledgements.
    pub acked: u64,
    /// Publications that matched no subscriber.
    pub dropped: u64,
}

#[derive(Debug)]
struct SubscriberState {
    topic: String,
    filter: Option<Subscription>,
    queue: VecDeque<Message>,
    leased: BTreeMap<MessageId, (Message, u64)>, // message, lease expiry
}

/// The event bus connecting micro-services (paper Figure 1).
#[derive(Debug)]
pub struct EventBus {
    subscribers: BTreeMap<SubscriberId, SubscriberState>,
    by_topic: HashMap<String, Vec<SubscriberId>>,
    now_ms: u64,
    lease_ms: u64,
    next_subscriber: u64,
    next_message: u64,
    stats: BusStats,
}

impl EventBus {
    /// Creates a bus with the given lease duration.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        EventBus {
            subscribers: BTreeMap::new(),
            by_topic: HashMap::new(),
            now_ms: 0,
            lease_ms,
            next_subscriber: 1,
            next_message: 1,
            stats: BusStats::default(),
        }
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Bus statistics.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Subscribes to `topic`, optionally with a content filter evaluated
    /// against message attributes.
    pub fn subscribe(&mut self, topic: &str, filter: Option<Subscription>) -> SubscriberId {
        let id = SubscriberId(self.next_subscriber);
        self.next_subscriber += 1;
        self.subscribers.insert(
            id,
            SubscriberState {
                topic: topic.to_string(),
                filter,
                queue: VecDeque::new(),
                leased: BTreeMap::new(),
            },
        );
        self.by_topic.entry(topic.to_string()).or_default().push(id);
        id
    }

    /// Removes a subscriber; its queued and leased messages are dropped.
    pub fn unsubscribe(&mut self, id: SubscriberId) {
        if let Some(state) = self.subscribers.remove(&id) {
            if let Some(list) = self.by_topic.get_mut(&state.topic) {
                list.retain(|&s| s != id);
            }
        }
    }

    /// Publishes to `topic`, fanning out to every subscriber whose filter
    /// accepts `attributes`. Returns the message id.
    pub fn publish(&mut self, topic: &str, payload: Vec<u8>, attributes: Publication) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        self.stats.published += 1;
        let mut matched = false;
        let subscriber_ids = self.by_topic.get(topic).cloned().unwrap_or_default();
        for sub_id in subscriber_ids {
            let Some(state) = self.subscribers.get_mut(&sub_id) else {
                continue;
            };
            let accepts = state.filter.as_ref().is_none_or(|f| f.matches(&attributes));
            if accepts {
                matched = true;
                state.queue.push_back(Message {
                    id,
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    attributes: attributes.clone(),
                    attempt: 0,
                });
            }
        }
        if !matched {
            self.stats.dropped += 1;
        }
        id
    }

    /// Fetches the next message for `subscriber`, leasing it until acked or
    /// the lease expires.
    pub fn fetch(&mut self, subscriber: SubscriberId) -> Option<Message> {
        let lease_until = self.now_ms + self.lease_ms;
        let state = self.subscribers.get_mut(&subscriber)?;
        let mut message = state.queue.pop_front()?;
        message.attempt += 1;
        self.stats.delivered += 1;
        state
            .leased
            .insert(message.id, (message.clone(), lease_until));
        Some(message)
    }

    /// Acknowledges a leased message; returns whether it was leased.
    pub fn ack(&mut self, subscriber: SubscriberId, message: MessageId) -> bool {
        let Some(state) = self.subscribers.get_mut(&subscriber) else {
            return false;
        };
        let acked = state.leased.remove(&message).is_some();
        if acked {
            self.stats.acked += 1;
        }
        acked
    }

    /// Negative-acknowledges a leased message: immediate requeue.
    pub fn nack(&mut self, subscriber: SubscriberId, message: MessageId) -> bool {
        let Some(state) = self.subscribers.get_mut(&subscriber) else {
            return false;
        };
        match state.leased.remove(&message) {
            Some((msg, _)) => {
                self.stats.redelivered += 1;
                // Requeue at the back: a message the consumer keeps
                // rejecting must not starve the rest of the queue.
                state.queue.push_back(msg);
                true
            }
            None => false,
        }
    }

    /// Advances virtual time; expired leases are requeued for redelivery.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms += ms;
        let now = self.now_ms;
        for state in self.subscribers.values_mut() {
            let expired: Vec<MessageId> = state
                .leased
                .iter()
                .filter(|(_, (_, expiry))| *expiry <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let (message, _) = state.leased.remove(&id).expect("listed above");
                self.stats.redelivered += 1;
                // Back of the queue, for the same fairness reason as nack:
                // redelivery may therefore reorder relative to fresh
                // messages (at-least-once, not FIFO-exactly-once).
                state.queue.push_back(message);
            }
        }
    }

    /// Messages waiting (not leased) for `subscriber`.
    #[must_use]
    pub fn backlog(&self, subscriber: SubscriberId) -> usize {
        self.subscribers
            .get(&subscriber)
            .map_or(0, |s| s.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_scbr::types::{Op, Predicate, Value};

    fn attrs(kind: &str, severity: i64) -> Publication {
        Publication::new()
            .with("kind", Value::Str(kind.into()))
            .with("severity", Value::Int(severity))
    }

    #[test]
    fn fan_out_and_ack() {
        let mut bus = EventBus::new(1000);
        let a = bus.subscribe("alerts", None);
        let b = bus.subscribe("alerts", None);
        let other = bus.subscribe("metrics", None);
        bus.publish("alerts", b"overvoltage".to_vec(), attrs("pq", 3));
        assert_eq!(bus.backlog(a), 1);
        assert_eq!(bus.backlog(b), 1);
        assert_eq!(bus.backlog(other), 0);
        let msg = bus.fetch(a).unwrap();
        assert_eq!(msg.payload, b"overvoltage");
        assert_eq!(msg.attempt, 1);
        assert!(bus.ack(a, msg.id));
        assert!(!bus.ack(a, msg.id), "double ack rejected");
        assert_eq!(bus.stats().acked, 1);
    }

    #[test]
    fn content_filter_selects() {
        let mut bus = EventBus::new(1000);
        let critical_only = bus.subscribe(
            "alerts",
            Some(Subscription::new(vec![Predicate::new(
                "severity",
                Op::Ge,
                Value::Int(4),
            )])),
        );
        bus.publish("alerts", b"minor".to_vec(), attrs("pq", 1));
        bus.publish("alerts", b"major".to_vec(), attrs("pq", 5));
        assert_eq!(bus.backlog(critical_only), 1);
        assert_eq!(bus.fetch(critical_only).unwrap().payload, b"major");
        assert_eq!(bus.stats().dropped, 1, "unmatched publication dropped");
    }

    #[test]
    fn lease_expiry_redelivers() {
        let mut bus = EventBus::new(500);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m1 = bus.fetch(s).unwrap();
        assert_eq!(m1.attempt, 1);
        // Subscriber "crashes" — no ack. Lease expires.
        bus.advance(499);
        assert_eq!(bus.backlog(s), 0);
        bus.advance(1);
        assert_eq!(bus.backlog(s), 1);
        let m2 = bus.fetch(s).unwrap();
        assert_eq!(m2.id, m1.id);
        assert_eq!(m2.attempt, 2);
        assert!(bus.ack(s, m2.id));
        bus.advance(10_000);
        assert_eq!(bus.backlog(s), 0, "acked message never redelivered");
        assert_eq!(bus.stats().redelivered, 1);
    }

    #[test]
    fn nack_requeues_immediately() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m = bus.fetch(s).unwrap();
        assert!(bus.nack(s, m.id));
        assert_eq!(bus.backlog(s), 1);
        assert!(!bus.nack(s, m.id));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        bus.unsubscribe(s);
        bus.publish("t", b"x".to_vec(), Publication::new());
        assert_eq!(bus.fetch(s), None);
        assert_eq!(bus.stats().dropped, 1);
    }

    #[test]
    fn ordering_preserved_within_subscriber() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        for i in 0..5u8 {
            bus.publish("t", vec![i], Publication::new());
        }
        for i in 0..5u8 {
            let m = bus.fetch(s).unwrap();
            assert_eq!(m.payload, vec![i]);
            bus.ack(s, m.id);
        }
    }
}
