//! The event bus: topics, content filters, leases, and redelivery.
//!
//! The bus implements *at-least-once* delivery with a lease/ack protocol:
//! a fetched message is leased to the subscriber; if it is not acknowledged
//! before the lease expires (crash, slow consumer), the bus redelivers it.
//! Subscribers may attach an SCBR [`Subscription`] as a content filter, so
//! the bus doubles as the "secure hook-up" between micro-services (§V-B).
//!
//! Time is virtual: the application (or the simulation harness) advances it
//! with [`EventBus::advance`].
//!
//! Two robustness features bound the at-least-once loop:
//!
//! * a **retry budget** ([`EventBus::set_max_attempts`]): a message that has
//!   been delivered that many times and still comes back (nack or lease
//!   expiry) is moved to a per-bus **dead-letter queue**
//!   ([`EventBus::dead_letters`]) instead of being requeued forever;
//! * an optional **fault injector** ([`EventBus::set_fault_injector`]):
//!   fetched deliveries may be lost (the lease still starts, so expiry
//!   redelivers — losses never violate at-least-once) or duplicated
//!   (consumers dedup by [`MessageId`]).

use securecloud_faults::{FaultInjector, MessageFate};
use securecloud_scbr::types::{Publication, Subscription};
use securecloud_telemetry::{Counter, Gauge, Histogram, Telemetry, TraceContext};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Registry name of the backpressure-refusal counter. Exported so scaling
/// policies can look up the bus's live handle instead of repeating the
/// string.
pub const METRIC_BACKPRESSURED: &str = "securecloud_bus_backpressured_total";
/// Registry name of the dead-letter-queue depth gauge.
pub const METRIC_DEAD_LETTER_DEPTH: &str = "securecloud_bus_dead_letter_depth";
/// Registry name of the publish→ack latency histogram (virtual ms).
pub const METRIC_PUBLISH_TO_ACK_MS: &str = "securecloud_bus_publish_to_ack_ms";
/// Registry name of the wasted-fetch counter: fetches that polled an empty
/// queue. The switchless delivery loop ([`crate::service::ServiceHost`])
/// consults the bus's ready set instead of polling, so this stays ~0 there.
pub const METRIC_WASTED_FETCHES: &str = "securecloud_bus_wasted_fetches_total";

/// Bus-assigned message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// Bus-assigned subscriber identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(pub u64);

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Unique id (stable across redeliveries).
    pub id: MessageId,
    /// Topic it was published to.
    pub topic: String,
    /// Payload bytes (opaque to the bus; typically sealed).
    pub payload: Vec<u8>,
    /// Routable attributes evaluated against content filters.
    pub attributes: Publication,
    /// Delivery attempt counter (1 on first delivery).
    pub attempt: u32,
    /// Virtual time at which the message was published (for publish→ack
    /// latency accounting).
    pub published_at_ms: u64,
    /// Causal trace context minted at publish (all-zero when the bus has
    /// no telemetry attached). Stable across redeliveries, so every retry
    /// of a request folds into the same trace.
    pub ctx: TraceContext,
}

/// Why a publication (or batch) was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PublishError {
    /// Admitting the publication would push a matching subscriber's queue
    /// past its configured depth limit. Nothing was enqueued — admission is
    /// all-or-nothing, so the publisher can retry the whole batch after
    /// draining.
    Backpressure {
        /// The subscriber whose queue is full.
        subscriber: SubscriberId,
        /// Its current queue depth.
        depth: usize,
        /// The configured limit it would exceed.
        limit: usize,
    },
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::Backpressure {
                subscriber,
                depth,
                limit,
            } => write!(
                f,
                "backpressure: subscriber s{} queue depth {depth} would exceed limit {limit}",
                subscriber.0
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// Bus statistics snapshot. All counters saturate at `u64::MAX` — a
/// runaway counter pegs rather than wrapping back to small values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries (including redeliveries).
    pub delivered: u64,
    /// Redeliveries after lease expiry or nack.
    pub redelivered: u64,
    /// Acknowledgements.
    pub acked: u64,
    /// Publications that matched no subscriber.
    pub dropped: u64,
    /// Messages moved to the dead-letter queue after exhausting their
    /// retry budget.
    pub dead_lettered: u64,
    /// Negative acknowledgements received.
    pub nacked: u64,
    /// Publications (or whole batches) refused for backpressure.
    pub backpressured: u64,
    /// Fetches that polled an empty queue (event-driven consumers keep
    /// this at zero by consulting [`EventBus::ready_subscribers`]).
    pub wasted_fetches: u64,
}

/// The bus's live metric handles. These are the single source of truth:
/// [`EventBus::stats`] reads them, and [`EventBus::set_telemetry`] adopts
/// the very same handles into the shared registry for export.
#[derive(Debug, Clone, Default)]
struct BusMetrics {
    published: Counter,
    delivered: Counter,
    redelivered: Counter,
    acked: Counter,
    dropped: Counter,
    dead_lettered: Counter,
    nacked: Counter,
    backpressured: Counter,
    wasted_fetches: Counter,
    dead_letter_depth: Gauge,
    publish_to_ack_ms: Histogram,
}

impl BusMetrics {
    fn adopt_into(&self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter("securecloud_bus_published_total", &[], &self.published);
        registry.adopt_counter("securecloud_bus_delivered_total", &[], &self.delivered);
        registry.adopt_counter("securecloud_bus_redelivered_total", &[], &self.redelivered);
        registry.adopt_counter("securecloud_bus_acked_total", &[], &self.acked);
        registry.adopt_counter("securecloud_bus_dropped_total", &[], &self.dropped);
        registry.adopt_counter(
            "securecloud_bus_dead_lettered_total",
            &[],
            &self.dead_lettered,
        );
        registry.adopt_counter("securecloud_bus_nacked_total", &[], &self.nacked);
        registry.adopt_counter(METRIC_BACKPRESSURED, &[], &self.backpressured);
        registry.adopt_counter(METRIC_WASTED_FETCHES, &[], &self.wasted_fetches);
        registry.adopt_gauge(METRIC_DEAD_LETTER_DEPTH, &[], &self.dead_letter_depth);
        registry.adopt_histogram(METRIC_PUBLISH_TO_ACK_MS, &[], &self.publish_to_ack_ms);
    }
}

/// A message that exhausted its retry budget, parked for inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The subscriber that kept failing it.
    pub subscriber: SubscriberId,
    /// The message as of its final attempt.
    pub message: Message,
    /// Why it was parked (`"nack"` or `"lease-expired"`).
    pub reason: &'static str,
}

#[derive(Debug)]
struct SubscriberState {
    topic: String,
    filter: Option<Subscription>,
    queue: VecDeque<Message>,
    leased: BTreeMap<MessageId, (Message, u64)>, // message, lease expiry
    /// Per-subscriber queue-depth cap; overrides the bus-wide default.
    queue_limit: Option<usize>,
}

/// The event bus connecting micro-services (paper Figure 1).
#[derive(Debug)]
pub struct EventBus {
    subscribers: BTreeMap<SubscriberId, SubscriberState>,
    by_topic: HashMap<String, Vec<SubscriberId>>,
    /// Subscribers with at least one waiting (not leased) message. Kept
    /// exact at every queue mutation so event-driven consumers can ask
    /// "who has work?" without polling every queue; BTreeSet iteration
    /// order (ascending id) keeps the answer deterministic.
    ready: BTreeSet<SubscriberId>,
    now_ms: u64,
    lease_ms: u64,
    next_subscriber: u64,
    next_message: u64,
    metrics: BusMetrics,
    max_attempts: Option<u32>,
    /// Bus-wide default queue-depth limit enforced by the `try_publish` /
    /// `publish_batch` admission path. `None` = unbounded.
    queue_limit: Option<usize>,
    dead: Vec<DeadLetter>,
    injector: Option<Arc<FaultInjector>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl EventBus {
    /// Creates a bus with the given lease duration.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        EventBus {
            subscribers: BTreeMap::new(),
            by_topic: HashMap::new(),
            ready: BTreeSet::new(),
            now_ms: 0,
            lease_ms,
            next_subscriber: 1,
            next_message: 1,
            metrics: BusMetrics::default(),
            max_attempts: None,
            queue_limit: None,
            dead: Vec::new(),
            injector: None,
            telemetry: None,
        }
    }

    /// Attaches shared telemetry: the bus's live counters are adopted into
    /// the registry, dead-letter events become trace events, and
    /// [`EventBus::advance`] publishes the bus clock to the virtual clock.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics.adopt_into(&telemetry);
        self.telemetry = Some(telemetry);
    }

    /// Sets the per-message retry budget. A message whose `attempt` count
    /// has reached `max_attempts` when it comes back (nack or lease expiry)
    /// is dead-lettered instead of requeued. `None` (the default) retries
    /// forever.
    pub fn set_max_attempts(&mut self, max_attempts: Option<u32>) {
        self.max_attempts = max_attempts;
    }

    /// Attaches a fault injector that decides the fate of each fetched
    /// delivery (lose / duplicate / deliver).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Sets the bus-wide default queue-depth limit enforced by the
    /// admission-controlled publish paths ([`EventBus::try_publish`],
    /// [`EventBus::publish_batch`]). `None` (the default) admits everything.
    /// The legacy [`EventBus::publish`] bypasses admission control.
    pub fn set_queue_limit(&mut self, limit: Option<usize>) {
        self.queue_limit = limit;
    }

    /// Overrides the queue-depth limit for one subscriber (takes precedence
    /// over the bus-wide default). Returns whether the subscriber exists.
    pub fn set_subscriber_queue_limit(
        &mut self,
        subscriber: SubscriberId,
        limit: Option<usize>,
    ) -> bool {
        match self.subscribers.get_mut(&subscriber) {
            Some(state) => {
                state.queue_limit = limit;
                true
            }
            None => false,
        }
    }

    /// The dead-letter queue, in parking order.
    #[must_use]
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead
    }

    /// Drains the dead-letter queue (e.g. to reprocess after a fix).
    pub fn take_dead_letters(&mut self) -> Vec<DeadLetter> {
        self.metrics.dead_letter_depth.set(0);
        std::mem::take(&mut self.dead)
    }

    /// Parks a message in the dead-letter queue, with metrics and a trace
    /// event.
    fn dead_letter(
        subscriber: SubscriberId,
        message: Message,
        metrics: &BusMetrics,
        dead: &mut Vec<DeadLetter>,
        telemetry: Option<&Telemetry>,
        reason: &'static str,
    ) {
        metrics.dead_lettered.inc();
        metrics.dead_letter_depth.add(1);
        if let Some(t) = telemetry {
            t.event(
                "eventbus",
                "dead_letter",
                vec![
                    ("message", format!("m{}", message.id.0)),
                    ("subscriber", format!("s{}", subscriber.0)),
                    ("reason", reason.to_string()),
                ],
            );
        }
        dead.push(DeadLetter {
            subscriber,
            message,
            reason,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn park_or_requeue(
        state: &mut SubscriberState,
        ready: &mut BTreeSet<SubscriberId>,
        subscriber: SubscriberId,
        message: Message,
        max_attempts: Option<u32>,
        metrics: &BusMetrics,
        dead: &mut Vec<DeadLetter>,
        telemetry: Option<&Telemetry>,
        reason: &'static str,
    ) {
        if max_attempts.is_some_and(|max| message.attempt >= max) {
            Self::dead_letter(subscriber, message, metrics, dead, telemetry, reason);
        } else {
            metrics.redelivered.inc();
            // Requeue at the back: a message the consumer keeps rejecting
            // must not starve the rest of the queue.
            state.queue.push_back(message);
            ready.insert(subscriber);
        }
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Bus statistics, snapshotted from the live metric handles.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        BusStats {
            published: self.metrics.published.value(),
            delivered: self.metrics.delivered.value(),
            redelivered: self.metrics.redelivered.value(),
            acked: self.metrics.acked.value(),
            dropped: self.metrics.dropped.value(),
            dead_lettered: self.metrics.dead_lettered.value(),
            nacked: self.metrics.nacked.value(),
            backpressured: self.metrics.backpressured.value(),
            wasted_fetches: self.metrics.wasted_fetches.value(),
        }
    }

    /// Subscribes to `topic`, optionally with a content filter evaluated
    /// against message attributes.
    pub fn subscribe(&mut self, topic: &str, filter: Option<Subscription>) -> SubscriberId {
        let id = SubscriberId(self.next_subscriber);
        self.next_subscriber += 1;
        self.subscribers.insert(
            id,
            SubscriberState {
                topic: topic.to_string(),
                filter,
                queue: VecDeque::new(),
                leased: BTreeMap::new(),
                queue_limit: None,
            },
        );
        self.by_topic.entry(topic.to_string()).or_default().push(id);
        id
    }

    /// Removes a subscriber; its queued and leased messages are dropped.
    pub fn unsubscribe(&mut self, id: SubscriberId) {
        if let Some(state) = self.subscribers.remove(&id) {
            if let Some(list) = self.by_topic.get_mut(&state.topic) {
                list.retain(|&s| s != id);
            }
        }
        self.ready.remove(&id);
    }

    /// Subscribers with at least one waiting (not leased) message, in
    /// ascending id order. Event-driven delivery loops iterate this instead
    /// of polling every subscriber's queue.
    #[must_use]
    pub fn ready_subscribers(&self) -> Vec<SubscriberId> {
        self.ready.iter().copied().collect()
    }

    /// Whether any subscriber has a waiting message.
    #[must_use]
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Publishes to `topic`, fanning out to every subscriber whose filter
    /// accepts `attributes`. Returns the message id.
    ///
    /// This legacy path bypasses queue-depth admission control and never
    /// fails; use [`EventBus::try_publish`] or [`EventBus::publish_batch`]
    /// to get typed backpressure instead.
    pub fn publish(&mut self, topic: &str, payload: Vec<u8>, attributes: Publication) -> MessageId {
        self.enqueue(topic, payload, attributes)
    }

    /// Publishes to `topic` with admission control: if any matching
    /// subscriber's queue is at its depth limit, nothing is enqueued and a
    /// typed [`PublishError::Backpressure`] is returned.
    ///
    /// # Errors
    /// [`PublishError::Backpressure`] when a matching subscriber has no room.
    pub fn try_publish(
        &mut self,
        topic: &str,
        payload: Vec<u8>,
        attributes: Publication,
    ) -> Result<MessageId, PublishError> {
        self.admit(topic, &[&attributes])?;
        Ok(self.enqueue(topic, payload, attributes))
    }

    /// Publishes a batch of `(payload, attributes)` pairs to `topic` with
    /// all-or-nothing admission: either every message is enqueued (ids
    /// returned in batch order, assigned consecutively) or — if admitting
    /// the whole batch would push any matching subscriber past its
    /// queue-depth limit — nothing is, and the publisher gets a typed
    /// backpressure error to retry after draining.
    ///
    /// Once admitted, a batch of N is observably identical to N
    /// [`EventBus::publish`] calls: same fan-out, same per-message
    /// published/dropped accounting, same ordering.
    ///
    /// # Errors
    /// [`PublishError::Backpressure`] when a matching subscriber cannot
    /// absorb its share of the batch.
    pub fn publish_batch(
        &mut self,
        topic: &str,
        batch: Vec<(Vec<u8>, Publication)>,
    ) -> Result<Vec<MessageId>, PublishError> {
        let attrs: Vec<&Publication> = batch.iter().map(|(_, a)| a).collect();
        self.admit(topic, &attrs)?;
        Ok(batch
            .into_iter()
            .map(|(payload, attributes)| self.enqueue(topic, payload, attributes))
            .collect())
    }

    /// Checks that every matching subscriber can absorb its share of a
    /// batch with the given attribute sets, against its queue-depth limit
    /// (per-subscriber override, else the bus-wide default). Charges the
    /// backpressure counter on refusal.
    fn admit(&self, topic: &str, batch: &[&Publication]) -> Result<(), PublishError> {
        let Some(sub_ids) = self.by_topic.get(topic) else {
            return Ok(());
        };
        for &sub_id in sub_ids {
            let Some(state) = self.subscribers.get(&sub_id) else {
                continue;
            };
            let Some(limit) = state.queue_limit.or(self.queue_limit) else {
                continue;
            };
            let incoming = batch
                .iter()
                .filter(|attrs| state.filter.as_ref().is_none_or(|f| f.matches(attrs)))
                .count();
            if incoming > 0 && state.queue.len() + incoming > limit {
                self.metrics.backpressured.inc();
                return Err(PublishError::Backpressure {
                    subscriber: sub_id,
                    depth: state.queue.len(),
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Publishes with a caller-supplied causal context instead of minting a
    /// fresh root — the causally-linked republish path (a service reacting
    /// to a delivery publishes downstream work under a child context, so
    /// the whole chain folds into one trace).
    pub fn publish_with_ctx(
        &mut self,
        topic: &str,
        payload: Vec<u8>,
        attributes: Publication,
        ctx: TraceContext,
    ) -> MessageId {
        self.enqueue_with(topic, payload, attributes, ctx)
    }

    /// Admission-controlled flavour of [`EventBus::publish_with_ctx`].
    ///
    /// # Errors
    /// [`PublishError::Backpressure`] when a matching subscriber has no room.
    pub fn try_publish_with_ctx(
        &mut self,
        topic: &str,
        payload: Vec<u8>,
        attributes: Publication,
        ctx: TraceContext,
    ) -> Result<MessageId, PublishError> {
        self.admit(topic, &[&attributes])?;
        Ok(self.enqueue_with(topic, payload, attributes, ctx))
    }

    /// The shared fan-out path behind every publish flavour: mints a root
    /// context for the new request (when telemetry is attached) and opens
    /// its flow.
    fn enqueue(&mut self, topic: &str, payload: Vec<u8>, attributes: Publication) -> MessageId {
        let ctx = self
            .telemetry
            .as_deref()
            .map_or_else(TraceContext::none, Telemetry::mint_root);
        self.enqueue_with(topic, payload, attributes, ctx)
    }

    fn enqueue_with(
        &mut self,
        topic: &str,
        payload: Vec<u8>,
        attributes: Publication,
        ctx: TraceContext,
    ) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        self.metrics.published.inc();
        if let Some(t) = &self.telemetry {
            if !ctx.is_none() {
                t.flow_start("eventbus", "publish", ctx);
            }
        }
        let mut matched = false;
        let subscriber_ids = self.by_topic.get(topic).cloned().unwrap_or_default();
        for sub_id in subscriber_ids {
            let Some(state) = self.subscribers.get_mut(&sub_id) else {
                continue;
            };
            let accepts = state.filter.as_ref().is_none_or(|f| f.matches(&attributes));
            if accepts {
                matched = true;
                self.ready.insert(sub_id);
                state.queue.push_back(Message {
                    id,
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    attributes: attributes.clone(),
                    attempt: 0,
                    published_at_ms: self.now_ms,
                    ctx,
                });
            }
        }
        if !matched {
            self.metrics.dropped.inc();
        }
        id
    }

    /// Fetches the next message for `subscriber`, leasing it until acked or
    /// the lease expires.
    ///
    /// With a fault injector attached the delivery may be *lost* — the
    /// lease still starts, so the message comes back via lease expiry (an
    /// at-least-once loss, never a silent drop) — or *duplicated*, leaving
    /// an extra copy in the queue for a later fetch.
    pub fn fetch(&mut self, subscriber: SubscriberId) -> Option<Message> {
        let lease_until = self.now_ms + self.lease_ms;
        let fate = |id: MessageId, injector: &Option<Arc<FaultInjector>>| {
            injector
                .as_ref()
                .map_or(MessageFate::Deliver, |i| i.message_fate(id.0))
        };
        let injector = self.injector.clone();
        let state = self.subscribers.get_mut(&subscriber)?;
        let Some(mut message) = state.queue.pop_front() else {
            // Polled an empty queue: harmless, but the event-driven loop
            // exists precisely so this never happens.
            self.metrics.wasted_fetches.inc();
            return None;
        };
        message.attempt += 1;
        state
            .leased
            .insert(message.id, (message.clone(), lease_until));
        match fate(message.id, &injector) {
            MessageFate::Deliver => {}
            MessageFate::Lose => {
                // In-flight loss: the subscriber never sees this attempt;
                // the lease we just took expires and redelivers.
                if state.queue.is_empty() {
                    self.ready.remove(&subscriber);
                }
                return None;
            }
            MessageFate::Duplicate => {
                state.queue.push_back(message.clone());
            }
        }
        if state.queue.is_empty() {
            self.ready.remove(&subscriber);
        }
        self.metrics.delivered.inc();
        Some(message)
    }

    /// Fetches up to `max` messages for `subscriber` in one call, leasing
    /// each exactly as [`EventBus::fetch`] would. Returns fewer than `max`
    /// when the queue drains first. Injected fates still apply per message
    /// (a lost delivery occupies a slot of the batch but is not returned —
    /// its lease expiry redelivers it later), so the loop always terminates
    /// after at most `max` fetch attempts.
    pub fn fetch_batch(&mut self, subscriber: SubscriberId, max: usize) -> Vec<Message> {
        let mut out = Vec::new();
        for _ in 0..max {
            if self.backlog(subscriber) == 0 {
                break;
            }
            if let Some(message) = self.fetch(subscriber) {
                out.push(message);
            }
        }
        out
    }

    /// Acknowledges a batch of leased messages; returns how many were
    /// actually leased (each ack is identical to [`EventBus::ack`]).
    pub fn ack_batch(&mut self, subscriber: SubscriberId, messages: &[MessageId]) -> usize {
        messages
            .iter()
            .filter(|&&id| self.ack(subscriber, id))
            .count()
    }

    /// Acknowledges a leased message; returns whether it was leased.
    pub fn ack(&mut self, subscriber: SubscriberId, message: MessageId) -> bool {
        let now_ms = self.now_ms;
        let Some(state) = self.subscribers.get_mut(&subscriber) else {
            return false;
        };
        match state.leased.remove(&message) {
            Some((msg, _)) => {
                self.metrics.acked.inc();
                let wait_ms = now_ms.saturating_sub(msg.published_at_ms);
                self.metrics.publish_to_ack_ms.observe(wait_ms);
                if let Some(t) = &self.telemetry {
                    if !msg.ctx.is_none() {
                        // Retroactive leaf span covering publish→ack: the
                        // wait is only known now, at settlement.
                        let leaf = t.mint_child(msg.ctx);
                        t.event_ctx(
                            "eventbus",
                            "publish_to_ack",
                            vec![
                                ("message", format!("m{}", msg.id.0)),
                                ("dur_ms", wait_ms.to_string()),
                            ],
                            leaf,
                        );
                        t.flow_finish("eventbus", "publish", msg.ctx);
                        t.note_exemplar("publish_to_ack", msg.ctx.trace_id, wait_ms);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Negative-acknowledges a leased message: immediate requeue, or
    /// dead-lettering once the retry budget is spent.
    pub fn nack(&mut self, subscriber: SubscriberId, message: MessageId) -> bool {
        let max_attempts = self.max_attempts;
        let Some(state) = self.subscribers.get_mut(&subscriber) else {
            return false;
        };
        match state.leased.remove(&message) {
            Some((msg, _)) => {
                self.metrics.nacked.inc();
                Self::park_or_requeue(
                    state,
                    &mut self.ready,
                    subscriber,
                    msg,
                    max_attempts,
                    &self.metrics,
                    &mut self.dead,
                    self.telemetry.as_deref(),
                    "nack",
                );
                true
            }
            None => false,
        }
    }

    /// Advances virtual time; expired leases are requeued for redelivery
    /// (or dead-lettered once the retry budget is spent).
    ///
    /// Redelivered messages are merged back into the queue in **original
    /// publish order** (ascending [`MessageId`] — ids are assigned
    /// monotonically at publish time): an expired message slots in ahead of
    /// every later-published message still waiting, so a crashed consumer's
    /// batch does not jump behind messages published after it. Only an
    /// explicit nack sends a message to the back of the queue
    /// (anti-starvation for poison messages).
    pub fn advance(&mut self, ms: u64) {
        self.now_ms += ms;
        let now = self.now_ms;
        if let Some(t) = &self.telemetry {
            t.clock().set_at_least_ms(now);
        }
        let max_attempts = self.max_attempts;
        for (&sub_id, state) in &mut self.subscribers {
            let expired: Vec<MessageId> = state
                .leased
                .iter()
                .filter(|(_, (_, expiry))| *expiry <= now)
                .map(|(&id, _)| id)
                .collect();
            if expired.is_empty() {
                continue;
            }
            // `expired` is in ascending id order (BTreeMap iteration), which
            // is publish order; keep that order through the partition below.
            let mut redeliver: Vec<Message> = Vec::new();
            for id in expired {
                let (message, _) = state.leased.remove(&id).expect("listed above");
                if max_attempts.is_some_and(|max| message.attempt >= max) {
                    Self::dead_letter(
                        sub_id,
                        message,
                        &self.metrics,
                        &mut self.dead,
                        self.telemetry.as_deref(),
                        "lease-expired",
                    );
                } else {
                    self.metrics.redelivered.inc();
                    redeliver.push(message);
                }
            }
            if redeliver.is_empty() {
                continue;
            }
            // Stable merge by ascending id: each redelivered message goes in
            // front of the first queued message published after it.
            let waiting = std::mem::take(&mut state.queue);
            let mut redeliver = redeliver.into_iter().peekable();
            for queued in waiting {
                while redeliver.peek().is_some_and(|m| m.id < queued.id) {
                    state.queue.push_back(redeliver.next().expect("peeked"));
                }
                state.queue.push_back(queued);
            }
            state.queue.extend(redeliver);
            self.ready.insert(sub_id);
        }
    }

    /// Messages waiting (not leased) for `subscriber`.
    #[must_use]
    pub fn backlog(&self, subscriber: SubscriberId) -> usize {
        self.subscribers
            .get(&subscriber)
            .map_or(0, |s| s.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_scbr::types::{Op, Predicate, Value};

    fn attrs(kind: &str, severity: i64) -> Publication {
        Publication::new()
            .with("kind", Value::Str(kind.into()))
            .with("severity", Value::Int(severity))
    }

    #[test]
    fn fan_out_and_ack() {
        let mut bus = EventBus::new(1000);
        let a = bus.subscribe("alerts", None);
        let b = bus.subscribe("alerts", None);
        let other = bus.subscribe("metrics", None);
        bus.publish("alerts", b"overvoltage".to_vec(), attrs("pq", 3));
        assert_eq!(bus.backlog(a), 1);
        assert_eq!(bus.backlog(b), 1);
        assert_eq!(bus.backlog(other), 0);
        let msg = bus.fetch(a).unwrap();
        assert_eq!(msg.payload, b"overvoltage");
        assert_eq!(msg.attempt, 1);
        assert!(bus.ack(a, msg.id));
        assert!(!bus.ack(a, msg.id), "double ack rejected");
        assert_eq!(bus.stats().acked, 1);
    }

    #[test]
    fn content_filter_selects() {
        let mut bus = EventBus::new(1000);
        let critical_only = bus.subscribe(
            "alerts",
            Some(Subscription::new(vec![Predicate::new(
                "severity",
                Op::Ge,
                Value::Int(4),
            )])),
        );
        bus.publish("alerts", b"minor".to_vec(), attrs("pq", 1));
        bus.publish("alerts", b"major".to_vec(), attrs("pq", 5));
        assert_eq!(bus.backlog(critical_only), 1);
        assert_eq!(bus.fetch(critical_only).unwrap().payload, b"major");
        assert_eq!(bus.stats().dropped, 1, "unmatched publication dropped");
    }

    #[test]
    fn lease_expiry_redelivers() {
        let mut bus = EventBus::new(500);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m1 = bus.fetch(s).unwrap();
        assert_eq!(m1.attempt, 1);
        // Subscriber "crashes" — no ack. Lease expires.
        bus.advance(499);
        assert_eq!(bus.backlog(s), 0);
        bus.advance(1);
        assert_eq!(bus.backlog(s), 1);
        let m2 = bus.fetch(s).unwrap();
        assert_eq!(m2.id, m1.id);
        assert_eq!(m2.attempt, 2);
        assert!(bus.ack(s, m2.id));
        bus.advance(10_000);
        assert_eq!(bus.backlog(s), 0, "acked message never redelivered");
        assert_eq!(bus.stats().redelivered, 1);
    }

    #[test]
    fn nack_requeues_immediately() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m = bus.fetch(s).unwrap();
        assert!(bus.nack(s, m.id));
        assert_eq!(bus.backlog(s), 1);
        assert!(!bus.nack(s, m.id));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        bus.unsubscribe(s);
        bus.publish("t", b"x".to_vec(), Publication::new());
        assert_eq!(bus.fetch(s), None);
        assert_eq!(bus.stats().dropped, 1);
    }

    #[test]
    fn ordering_preserved_within_subscriber() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        for i in 0..5u8 {
            bus.publish("t", vec![i], Publication::new());
        }
        for i in 0..5u8 {
            let m = bus.fetch(s).unwrap();
            assert_eq!(m.payload, vec![i]);
            bus.ack(s, m.id);
        }
    }

    #[test]
    fn retry_budget_dead_letters_on_nack() {
        let mut bus = EventBus::new(1000);
        bus.set_max_attempts(Some(3));
        let s = bus.subscribe("t", None);
        bus.publish("t", b"poison".to_vec(), Publication::new());
        for expected_attempt in 1..=3 {
            let m = bus.fetch(s).unwrap();
            assert_eq!(m.attempt, expected_attempt);
            assert!(bus.nack(s, m.id));
        }
        // Third nack exhausted the budget: parked, not requeued.
        assert_eq!(bus.backlog(s), 0);
        assert_eq!(bus.fetch(s), None);
        let dead = bus.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].subscriber, s);
        assert_eq!(dead[0].message.payload, b"poison");
        assert_eq!(dead[0].message.attempt, 3);
        assert_eq!(dead[0].reason, "nack");
        assert_eq!(bus.stats().dead_lettered, 1);
        assert_eq!(bus.stats().redelivered, 2, "only the first two requeued");
        assert_eq!(bus.take_dead_letters().len(), 1);
        assert!(bus.dead_letters().is_empty());
    }

    #[test]
    fn retry_budget_dead_letters_on_lease_expiry() {
        let mut bus = EventBus::new(100);
        bus.set_max_attempts(Some(2));
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        bus.fetch(s).unwrap();
        bus.advance(100); // attempt 1 expires -> requeue
        bus.fetch(s).unwrap();
        bus.advance(100); // attempt 2 expires -> budget spent -> DLQ
        assert_eq!(bus.backlog(s), 0);
        assert_eq!(bus.dead_letters().len(), 1);
        assert_eq!(bus.dead_letters()[0].reason, "lease-expired");
    }

    #[test]
    fn injected_loss_recovers_via_lease_expiry() {
        use securecloud_faults::{FaultInjector, FaultRates};
        let mut bus = EventBus::new(100);
        let injector = std::sync::Arc::new(FaultInjector::new(11));
        injector.set_rates(FaultRates {
            message_loss_permille: 1000, // lose every delivery
            ..FaultRates::default()
        });
        bus.set_fault_injector(injector.clone());
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        assert_eq!(bus.fetch(s), None, "delivery lost in flight");
        assert_eq!(bus.backlog(s), 0, "but leased, not dropped");
        bus.advance(100);
        assert_eq!(bus.backlog(s), 1, "lease expiry recovers the loss");
        injector.set_rates(FaultRates::default());
        let m = bus.fetch(s).unwrap();
        assert_eq!(m.attempt, 2);
        assert!(bus.ack(s, m.id));
    }

    #[test]
    fn expired_redelivery_keeps_publish_order() {
        // Regression: interleave fetch / expire / fetch. m1 is fetched and
        // its lease expires while m2, m3 (published before the crash) and
        // m4 (published after) are still waiting. Redelivery must slot m1
        // back in front of them — the old push_back requeue yielded
        // m2, m3, m4, m1.
        let mut bus = EventBus::new(100);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"m1".to_vec(), Publication::new());
        bus.publish("t", b"m2".to_vec(), Publication::new());
        bus.publish("t", b"m3".to_vec(), Publication::new());
        let m1 = bus.fetch(s).unwrap();
        assert_eq!(m1.payload, b"m1");
        bus.publish("t", b"m4".to_vec(), Publication::new());
        bus.advance(100); // m1's lease expires
        let mut order: Vec<Vec<u8>> = Vec::new();
        while let Some(m) = bus.fetch(s) {
            bus.ack(s, m.id);
            order.push(m.payload);
        }
        assert_eq!(
            order,
            vec![
                b"m1".to_vec(),
                b"m2".to_vec(),
                b"m3".to_vec(),
                b"m4".to_vec()
            ],
            "expired lease redelivers in original publish order"
        );
    }

    #[test]
    fn expired_batch_merges_between_waiting_messages() {
        // A leased batch (m1, m3) expires while m2 was never fetched and m4
        // arrived later: the merged queue is m1, m2, m3, m4.
        let mut bus = EventBus::new(100);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"m1".to_vec(), Publication::new());
        bus.publish("t", b"m2".to_vec(), Publication::new());
        bus.publish("t", b"m3".to_vec(), Publication::new());
        let m1 = bus.fetch(s).unwrap();
        let m2 = bus.fetch(s).unwrap();
        let m3 = bus.fetch(s).unwrap();
        assert_eq!((&m1.payload[..], &m3.payload[..]), (&b"m1"[..], &b"m3"[..]));
        bus.ack(s, m2.id); // only the middle one was processed
        bus.publish("t", b"m4".to_vec(), Publication::new());
        bus.advance(100);
        let mut order: Vec<Vec<u8>> = Vec::new();
        while let Some(m) = bus.fetch(s) {
            bus.ack(s, m.id);
            order.push(m.payload);
        }
        assert_eq!(
            order,
            vec![b"m1".to_vec(), b"m3".to_vec(), b"m4".to_vec()],
            "expired batch keeps relative publish order around fresh messages"
        );
    }

    #[test]
    fn publish_batch_matches_n_single_publishes() {
        // Same inputs through publish_batch and N publishes: identical
        // fan-out, ids, delivery order, and stats.
        let filter = Subscription::new(vec![Predicate::new("severity", Op::Ge, Value::Int(3))]);
        let inputs: Vec<(Vec<u8>, Publication)> =
            (0..6).map(|i| (vec![i as u8], attrs("pq", i))).collect();

        let mut single = EventBus::new(1000);
        let s1 = single.subscribe("t", Some(filter.clone()));
        let mut single_ids = Vec::new();
        for (payload, attributes) in inputs.clone() {
            single_ids.push(single.publish("t", payload, attributes));
        }

        let mut batched = EventBus::new(1000);
        let s2 = batched.subscribe("t", Some(filter));
        let batch_ids = batched.publish_batch("t", inputs).unwrap();

        assert_eq!(single_ids, batch_ids);
        assert_eq!(single.stats(), batched.stats());
        assert_eq!(single.backlog(s1), batched.backlog(s2));
        loop {
            let a = single.fetch(s1);
            let b = batched.fetch(s2);
            assert_eq!(a, b);
            let Some(m) = a else { break };
            assert_eq!(single.ack(s1, m.id), batched.ack(s2, m.id));
        }
        assert_eq!(single.stats(), batched.stats());
    }

    #[test]
    fn fetch_batch_leases_and_ack_batch_settles() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        for i in 0..5u8 {
            bus.publish("t", vec![i], Publication::new());
        }
        let first = bus.fetch_batch(s, 3);
        assert_eq!(first.len(), 3);
        assert_eq!(bus.backlog(s), 2);
        let ids: Vec<MessageId> = first.iter().map(|m| m.id).collect();
        assert_eq!(bus.ack_batch(s, &ids), 3);
        assert_eq!(bus.ack_batch(s, &ids), 0, "double ack rejected");
        let rest = bus.fetch_batch(s, 10);
        assert_eq!(rest.len(), 2, "short batch when the queue drains");
        assert_eq!(bus.stats().delivered, 5);
    }

    #[test]
    fn backpressure_refuses_whole_batch() {
        let mut bus = EventBus::new(1000);
        bus.set_queue_limit(Some(4));
        let s = bus.subscribe("t", None);
        bus.publish("t", b"seed".to_vec(), Publication::new());
        let batch: Vec<(Vec<u8>, Publication)> =
            (0..4).map(|i| (vec![i], Publication::new())).collect();
        let err = bus.publish_batch("t", batch.clone()).unwrap_err();
        assert_eq!(
            err,
            PublishError::Backpressure {
                subscriber: s,
                depth: 1,
                limit: 4
            }
        );
        assert_eq!(bus.backlog(s), 1, "all-or-nothing: nothing was enqueued");
        assert_eq!(bus.stats().published, 1, "refused batch not counted");
        assert_eq!(bus.stats().backpressured, 1);
        assert!(err.to_string().contains("backpressure"));
        // Drain one message and the same batch fits exactly.
        let m = bus.fetch(s).unwrap();
        bus.ack(s, m.id);
        assert_eq!(bus.publish_batch("t", batch).unwrap().len(), 4);
        assert_eq!(bus.backlog(s), 4);
    }

    #[test]
    fn try_publish_enforces_per_subscriber_override() {
        let mut bus = EventBus::new(1000);
        bus.set_queue_limit(Some(10));
        let tight = bus.subscribe("t", None);
        let roomy = bus.subscribe("t", None);
        assert!(bus.set_subscriber_queue_limit(tight, Some(1)));
        assert!(!bus.set_subscriber_queue_limit(SubscriberId(99), Some(1)));
        bus.try_publish("t", b"a".to_vec(), Publication::new())
            .unwrap();
        let err = bus
            .try_publish("t", b"b".to_vec(), Publication::new())
            .unwrap_err();
        assert!(matches!(
            err,
            PublishError::Backpressure {
                subscriber,
                depth: 1,
                limit: 1
            } if subscriber == tight
        ));
        assert_eq!(bus.backlog(roomy), 1, "refusal enqueues to no one");
        // A filtered-out subscriber at its limit never backpressures.
        let mut filtered_bus = EventBus::new(1000);
        let filtered = filtered_bus.subscribe(
            "t",
            Some(Subscription::new(vec![Predicate::new(
                "severity",
                Op::Ge,
                Value::Int(4),
            )])),
        );
        filtered_bus.set_subscriber_queue_limit(filtered, Some(0));
        filtered_bus
            .try_publish("t", b"minor".to_vec(), attrs("pq", 1))
            .unwrap();
    }

    #[test]
    fn publish_mints_context_and_ack_folds_wait_into_trace() {
        let mut bus = EventBus::new(1000);
        let telemetry = Arc::new(Telemetry::new());
        telemetry.set_trace_seed(7);
        bus.set_telemetry(Arc::clone(&telemetry));
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        bus.advance(25);
        let m = bus.fetch(s).unwrap();
        assert!(!m.ctx.is_none(), "telemetry-attached bus mints a root");
        assert!(bus.ack(s, m.id));
        assert_eq!(
            telemetry.exemplars("publish_to_ack"),
            vec![m.ctx.trace_id],
            "the acked trace becomes a cause-chain exemplar"
        );
        let report = telemetry.critical_path();
        assert_eq!(report.traces, 1);
        assert_eq!(report.total_self_ms, 25, "queue wait attributed causally");
        assert_eq!(report.categories[0].category, "eventbus");
    }

    #[test]
    fn untraced_bus_mints_nothing() {
        let mut bus = EventBus::new(1000);
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m = bus.fetch(s).unwrap();
        assert!(m.ctx.is_none());
        assert!(bus.ack(s, m.id));
    }

    #[test]
    fn ready_set_tracks_every_queue_mutation() {
        let mut bus = EventBus::new(100);
        let a = bus.subscribe("t", None);
        let b = bus.subscribe("t", None);
        assert!(!bus.has_ready());

        // Publish marks every matching subscriber ready, in id order.
        bus.publish("t", b"x".to_vec(), Publication::new());
        assert_eq!(bus.ready_subscribers(), vec![a, b]);

        // Draining a queue clears readiness for that subscriber only.
        let m = bus.fetch(a).unwrap();
        assert_eq!(bus.ready_subscribers(), vec![b]);

        // A nack requeues and restores readiness.
        assert!(bus.nack(a, m.id));
        assert_eq!(bus.ready_subscribers(), vec![a, b]);

        // Lease expiry re-readies the subscriber it redelivers to.
        let m = bus.fetch(a).unwrap();
        let _ = bus.fetch(b).unwrap();
        assert!(!bus.has_ready());
        drop(m);
        bus.advance(100);
        assert_eq!(bus.ready_subscribers(), vec![a, b]);

        // Unsubscribing removes the subscriber from the ready set.
        bus.unsubscribe(b);
        assert_eq!(bus.ready_subscribers(), vec![a]);
    }

    #[test]
    fn empty_fetch_counts_as_wasted() {
        let mut bus = EventBus::new(100);
        let s = bus.subscribe("t", None);
        assert_eq!(bus.fetch(s), None);
        assert_eq!(bus.stats().wasted_fetches, 1);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let m = bus.fetch(s).unwrap();
        bus.ack(s, m.id);
        assert_eq!(bus.stats().wasted_fetches, 1, "useful fetches not counted");
        // An event-driven consumer checks readiness first and never polls dry.
        if bus.has_ready() {
            bus.fetch(s);
        }
        assert_eq!(bus.stats().wasted_fetches, 1);
    }

    #[test]
    fn injected_duplicate_delivers_same_id_twice() {
        use securecloud_faults::{FaultInjector, FaultRates};
        let mut bus = EventBus::new(1000);
        let injector = std::sync::Arc::new(FaultInjector::new(12));
        injector.set_rates(FaultRates {
            message_duplication_permille: 1000,
            ..FaultRates::default()
        });
        bus.set_fault_injector(injector.clone());
        let s = bus.subscribe("t", None);
        bus.publish("t", b"x".to_vec(), Publication::new());
        let first = bus.fetch(s).unwrap();
        assert_eq!(bus.backlog(s), 1, "duplicate queued");
        bus.ack(s, first.id);
        injector.set_rates(FaultRates::default());
        let dup = bus.fetch(s).unwrap();
        assert_eq!(dup.id, first.id, "consumers dedup by MessageId");
    }
}
