//! The SecureCloud event bus and micro-service framework (paper §III-B,
//! Figure 1).
//!
//! Applications are sets of micro-services connected by an event bus:
//!
//! * [`bus`] — topics, SCBR content filters, lease/ack at-least-once
//!   delivery with redelivery on expiry,
//! * [`keys`] — end-to-end payload encryption with attestation-gated
//!   per-topic key release (the bus itself sees only ciphertext),
//! * [`service`] — the [`service::MicroService`] trait and a host that
//!   pumps deliveries between registered services.
//!
//! # Example
//!
//! ```
//! use securecloud_eventbus::bus::EventBus;
//! use securecloud_scbr::types::Publication;
//!
//! let mut bus = EventBus::new(1_000);
//! let subscriber = bus.subscribe("alerts", None);
//! bus.publish("alerts", b"overload on feeder 7".to_vec(), Publication::new());
//! let message = bus.fetch(subscriber).unwrap();
//! assert_eq!(message.payload, b"overload on feeder 7");
//! bus.ack(subscriber, message.id);
//! ```

pub mod bus;
pub mod keys;
pub mod service;

pub use bus::{BusStats, EventBus, Message, MessageId, SubscriberId};
pub use keys::{open_payload, seal_payload, KeyServiceError, TopicKeyService};
pub use service::{MicroService, ServiceCtx, ServiceHost};
