//! The micro-service framework: services wired together by the event bus
//! (paper Figure 1: "applications consist of a set of micro-services
//! connected by an event bus").
//!
//! Service handlers are isolated: a panicking handler is caught, its
//! message is nacked (so the bus redelivers or dead-letters it — never
//! acked as if handled), and its emitted events are discarded. A service
//! that panics on several consecutive deliveries is **quarantined** — it
//! stops receiving messages until an operator intervenes, the same
//! containment the container engine applies to crash-looping enclaves.

use crate::bus::{EventBus, Message, SubscriberId};
use securecloud_faults::FaultInjector;
use securecloud_scbr::types::{Publication, Subscription};
use securecloud_telemetry::{Telemetry, TraceContext};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Context handed to a service while handling a message.
#[derive(Debug, Default)]
pub struct ServiceCtx {
    outbox: Vec<(String, Vec<u8>, Publication)>,
}

impl ServiceCtx {
    /// Emits a new event to `topic`.
    pub fn emit(&mut self, topic: &str, payload: Vec<u8>, attributes: Publication) {
        self.outbox.push((topic.to_string(), payload, attributes));
    }
}

/// A micro-service: declares its subscriptions and handles messages.
pub trait MicroService {
    /// Service name (diagnostics).
    fn name(&self) -> &str;
    /// Topics (with optional content filters) this service consumes.
    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)>;
    /// Handles one delivered message; emitted events go through `ctx`.
    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx);
}

struct Registered {
    service: Box<dyn MicroService>,
    subscriber_ids: Vec<SubscriberId>,
    consecutive_panics: u32,
    panic_next: bool,
    quarantined: bool,
}

/// Default number of consecutive handler panics before quarantine.
pub const DEFAULT_QUARANTINE_AFTER: u32 = 3;

/// Hosts a set of micro-services on one bus, pumping deliveries.
pub struct ServiceHost {
    bus: EventBus,
    services: Vec<Registered>,
    quarantine_after: u32,
    /// Messages fetched per subscription per [`ServiceHost::step`] (1 = the
    /// classic one-at-a-time pump; larger values opt into batch delivery).
    delivery_batch: usize,
    injector: Option<Arc<FaultInjector>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl std::fmt::Debug for ServiceHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHost")
            .field("services", &self.services.len())
            .finish_non_exhaustive()
    }
}

impl ServiceHost {
    /// Creates a host over a fresh bus with the given lease duration.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        ServiceHost {
            bus: EventBus::new(lease_ms),
            services: Vec::new(),
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            delivery_batch: 1,
            injector: None,
            telemetry: None,
        }
    }

    /// Opts services into batch delivery: each [`ServiceHost::step`]
    /// fetches up to `batch` messages per subscription (clamped to at
    /// least one) instead of a single message. Per-message ack/nack/panic
    /// semantics are unchanged — a batch is simply the same messages with
    /// fewer pump iterations.
    pub fn set_delivery_batch(&mut self, batch: usize) {
        self.delivery_batch = batch.max(1);
    }

    /// The current batch-delivery size (1 = classic single delivery).
    #[must_use]
    pub fn delivery_batch(&self) -> usize {
        self.delivery_batch
    }

    /// Attaches shared telemetry to the host and its bus: handler panics
    /// and quarantines become counted trace events.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.bus.set_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
    }

    /// Registers a service and subscribes it to its declared topics.
    pub fn register(&mut self, service: Box<dyn MicroService>) {
        let subscriber_ids = service
            .subscriptions()
            .into_iter()
            .map(|(topic, filter)| self.bus.subscribe(&topic, filter))
            .collect();
        self.services.push(Registered {
            service,
            subscriber_ids,
            consecutive_panics: 0,
            panic_next: false,
            quarantined: false,
        });
    }

    /// Sets how many consecutive panics quarantine a service.
    pub fn set_quarantine_after(&mut self, panics: u32) {
        self.quarantine_after = panics.max(1);
    }

    /// Attaches a fault injector: the bus consults it for message fates and
    /// the host records panic/quarantine events into its trace.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.bus.set_fault_injector(injector.clone());
        self.injector = Some(injector);
    }

    /// Arms a one-shot injected panic in the named service's next delivery.
    /// Returns whether the service exists.
    pub fn inject_panic_next(&mut self, service: &str) -> bool {
        for registered in &mut self.services {
            if registered.service.name() == service {
                registered.panic_next = true;
                return true;
            }
        }
        false
    }

    /// Names of currently quarantined services, in registration order.
    #[must_use]
    pub fn quarantined_services(&self) -> Vec<&str> {
        self.services
            .iter()
            .filter(|r| r.quarantined)
            .map(|r| r.service.name())
            .collect()
    }

    /// Lifts a service's quarantine (operator intervention); returns
    /// whether the service existed and was quarantined.
    pub fn release_quarantine(&mut self, service: &str) -> bool {
        for registered in &mut self.services {
            if registered.service.name() == service && registered.quarantined {
                registered.quarantined = false;
                registered.consecutive_panics = 0;
                return true;
            }
        }
        false
    }

    /// Direct bus access (publishing external events, reading stats).
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    /// The bus, read-only.
    #[must_use]
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Delivers up to [`ServiceHost::delivery_batch`] messages (default 1)
    /// to every subscription of every non-quarantined service; returns the
    /// number of messages processed (including attempts whose handler
    /// panicked).
    ///
    /// A message is acked only if its handler returns normally; a panic is
    /// caught, the message nacked (redelivery or dead-letter per the bus's
    /// retry budget), and the handler's emitted events discarded. If a
    /// service trips quarantine mid-batch, the rest of its batch is nacked
    /// back to the queue immediately rather than waiting out the lease.
    pub fn step(&mut self) -> usize {
        let mut processed = 0;
        let mut outbox = Vec::new();
        for service_idx in 0..self.services.len() {
            if self.services[service_idx].quarantined {
                continue;
            }
            for sub_pos in 0..self.services[service_idx].subscriber_ids.len() {
                processed += self.deliver_one_subscription(service_idx, sub_pos, &mut outbox);
            }
        }
        self.flush_outbox(outbox);
        processed
    }

    /// Delivers one batch for a single `(service, subscription)` pair —
    /// the unit of work shared by the scanning pump ([`ServiceHost::step`])
    /// and the event-driven pump ([`ServiceHost::pump_switchless`]).
    fn deliver_one_subscription(
        &mut self,
        service_idx: usize,
        sub_pos: usize,
        outbox: &mut Vec<(String, Vec<u8>, Publication, TraceContext)>,
    ) -> usize {
        let mut processed = 0;
        let batch_size = self.delivery_batch;
        let registered = &mut self.services[service_idx];
        if registered.quarantined {
            return 0;
        }
        let sub_id = registered.subscriber_ids[sub_pos];
        let mut batch = self.bus.fetch_batch(sub_id, batch_size).into_iter();
        for message in batch.by_ref() {
            processed += 1;
            let mut ctx = ServiceCtx::default();
            let force_panic = std::mem::take(&mut registered.panic_next);
            let service_name = registered.service.name().to_string();
            let service = &mut registered.service;
            // Traced deliveries get a handler span as a causal child
            // of the message's publish context; untraced messages
            // stay byte-identical to the pre-tracing stream.
            let span = match self.telemetry.as_deref() {
                Some(t) if !message.ctx.is_none() => Some(t.span_ctx(
                    "service",
                    "deliver",
                    vec![
                        ("service", service_name.clone()),
                        ("message", format!("m{}", message.id.0)),
                    ],
                    t.mint_child(message.ctx),
                )),
                _ => None,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if force_panic {
                    panic!("injected service panic");
                }
                service.handle(&message, &mut ctx);
            }));
            drop(span);
            match outcome {
                Ok(()) => {
                    registered.consecutive_panics = 0;
                    self.bus.ack(sub_id, message.id);
                    outbox.extend(
                        ctx.outbox
                            .drain(..)
                            .map(|(topic, payload, attrs)| (topic, payload, attrs, message.ctx)),
                    );
                }
                Err(_) => {
                    registered.consecutive_panics += 1;
                    self.bus.nack(sub_id, message.id);
                    let name = registered.service.name();
                    if let Some(injector) = &self.injector {
                        injector.record(format!(
                            "service {name} panicked on m{} attempt {}",
                            message.id.0, message.attempt
                        ));
                    }
                    if let Some(t) = &self.telemetry {
                        t.counter_with("securecloud_service_panics_total", &[("service", name)])
                            .inc();
                        t.event(
                            "eventbus",
                            "service_panic",
                            vec![
                                ("service", name.to_string()),
                                ("message", format!("m{}", message.id.0)),
                                ("attempt", message.attempt.to_string()),
                            ],
                        );
                    }
                    if registered.consecutive_panics >= self.quarantine_after {
                        registered.quarantined = true;
                        if let Some(injector) = &self.injector {
                            injector.record(format!("service {name} quarantined"));
                        }
                        if let Some(t) = &self.telemetry {
                            t.counter_with(
                                "securecloud_service_quarantines_total",
                                &[("service", name)],
                            )
                            .inc();
                            t.event(
                                "eventbus",
                                "service_quarantined",
                                vec![("service", name.to_string())],
                            );
                        }
                    }
                }
            }
            if registered.quarantined {
                break;
            }
        }
        // A quarantine tripped mid-batch: hand the unprocessed rest
        // of the batch straight back to the queue.
        for rest in batch {
            self.bus.nack(sub_id, rest.id);
        }
        processed
    }

    /// Republishes handler emissions collected during a pump pass.
    fn flush_outbox(&mut self, outbox: Vec<(String, Vec<u8>, Publication, TraceContext)>) {
        for (topic, payload, attributes, parent) in outbox {
            // Downstream work a handler emitted in reaction to a traced
            // delivery continues that trace; everything else starts fresh.
            match self.telemetry.as_deref() {
                Some(t) if !parent.is_none() => {
                    let child = t.mint_child(parent);
                    self.bus
                        .publish_with_ctx(&topic, payload, attributes, child);
                }
                _ => {
                    self.bus.publish(&topic, payload, attributes);
                }
            }
        }
    }

    /// Finds which registered service owns a bus subscription.
    fn locate(&self, sub_id: SubscriberId) -> Option<(usize, usize)> {
        for (service_idx, registered) in self.services.iter().enumerate() {
            if let Some(sub_pos) = registered.subscriber_ids.iter().position(|&s| s == sub_id) {
                return Some((service_idx, sub_pos));
            }
        }
        None
    }

    /// Event-driven delivery: instead of scanning every service ×
    /// subscription per pass (the [`ServiceHost::step`] pump), each round
    /// asks the bus which subscribers actually have waiting messages
    /// ([`EventBus::ready_subscribers`]) and delivers only to those — the
    /// host-side analogue of the switchless syscall plane, where completions
    /// wake exactly the parked task instead of every poller. Runs until the
    /// ready set drains or `max_rounds` is reached; returns total messages
    /// processed. Observably identical to pumping [`ServiceHost::step`]:
    /// same deliveries, same order, same stats.
    pub fn pump_switchless(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let ready = self.bus.ready_subscribers();
            if ready.is_empty() {
                break;
            }
            let mut outbox = Vec::new();
            let mut round = 0;
            for sub_id in ready {
                let Some((service_idx, sub_pos)) = self.locate(sub_id) else {
                    continue;
                };
                round += self.deliver_one_subscription(service_idx, sub_pos, &mut outbox);
            }
            self.flush_outbox(outbox);
            total += round;
            // A round that moved nothing means every ready subscriber
            // belongs to a quarantined service: stop rather than spin.
            if round == 0 {
                break;
            }
        }
        total
    }

    /// Pumps [`ServiceHost::step`] until no messages flow or `max_steps`
    /// is reached; returns total messages processed.
    pub fn run_until_quiet(&mut self, max_steps: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_steps {
            let n = self.step();
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_scbr::types::{Op, Predicate, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Doubles every reading and republishes it.
    struct Doubler;
    impl MicroService for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
            vec![("readings".into(), None)]
        }
        fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
            let v = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
            ctx.emit(
                "doubled",
                (v * 2).to_le_bytes().to_vec(),
                Publication::new().with("value", Value::Int((v * 2) as i64)),
            );
        }
    }

    /// Counts messages it receives.
    struct Counter {
        seen: Arc<AtomicU64>,
        filter: Option<Subscription>,
        topic: String,
    }
    impl MicroService for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
            vec![(self.topic.clone(), self.filter.clone())]
        }
        fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn pipeline_of_services() {
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Doubler));
        host.register(Box::new(Counter {
            seen: seen.clone(),
            filter: None,
            topic: "doubled".into(),
        }));
        host.bus_mut()
            .publish("readings", 21u64.to_le_bytes().to_vec(), Publication::new());
        let processed = host.run_until_quiet(10);
        assert_eq!(processed, 2, "doubler then counter");
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn filtered_service_sees_subset() {
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Counter {
            seen: seen.clone(),
            filter: Some(Subscription::new(vec![Predicate::new(
                "value",
                Op::Ge,
                Value::Int(100),
            )])),
            topic: "doubled".into(),
        }));
        host.register(Box::new(Doubler));
        // 21*2=42 filtered out; 60*2=120 accepted.
        host.bus_mut()
            .publish("readings", 21u64.to_le_bytes().to_vec(), Publication::new());
        host.bus_mut()
            .publish("readings", 60u64.to_le_bytes().to_vec(), Publication::new());
        host.run_until_quiet(10);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_delivery_is_observably_single_delivery() {
        // The same workload at batch sizes 1, 8, 64 processes the same
        // messages with the same terminal stats — batching only collapses
        // pump iterations.
        let run = |batch: usize| {
            let mut host = ServiceHost::new(1000);
            let seen = Arc::new(AtomicU64::new(0));
            host.set_delivery_batch(batch);
            assert_eq!(host.delivery_batch(), batch.max(1));
            host.register(Box::new(Doubler));
            host.register(Box::new(Counter {
                seen: seen.clone(),
                filter: None,
                topic: "doubled".into(),
            }));
            for i in 0..10u64 {
                host.bus_mut()
                    .publish("readings", i.to_le_bytes().to_vec(), Publication::new());
            }
            let processed = host.run_until_quiet(100);
            (processed, seen.load(Ordering::Relaxed), host.bus().stats())
        };
        let single = run(1);
        assert_eq!(single.1, 10);
        for batch in [8usize, 64] {
            assert_eq!(run(batch), single, "batch size {batch} diverged");
        }
    }

    #[test]
    fn quiet_host_stops() {
        let mut host = ServiceHost::new(1000);
        host.register(Box::new(Doubler));
        assert_eq!(host.run_until_quiet(100), 0);
    }

    /// Panics on the first `failures` deliveries, then succeeds.
    struct Flaky {
        failures: u32,
        seen: Arc<AtomicU64>,
    }
    impl MicroService for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
            vec![("work".into(), None)]
        }
        fn handle(&mut self, _message: &Message, ctx: &mut ServiceCtx) {
            ctx.emit("done", vec![], Publication::new());
            if self.failures > 0 {
                self.failures -= 1;
                panic!("flaky failure");
            }
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn silence_panics() {
        // catch_unwind still runs the global hook; keep test output clean.
        std::panic::set_hook(Box::new(|_| {}));
    }

    #[test]
    fn panicking_handler_is_nacked_and_retried() {
        silence_panics();
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Flaky {
            failures: 1,
            seen: seen.clone(),
        }));
        host.bus_mut().publish("work", vec![], Publication::new());
        let processed = host.run_until_quiet(10);
        // Attempt 1 panics (nack -> requeue), attempt 2 succeeds.
        assert_eq!(processed, 2);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(host.bus().stats().acked, 1);
        assert_eq!(host.bus().stats().redelivered, 1);
        // The panicked attempt's emissions were discarded: only the
        // successful attempt published to "done" (which has no subscriber).
        assert_eq!(host.bus().stats().published, 2);
        assert!(host.quarantined_services().is_empty());
    }

    #[test]
    fn repeated_panics_quarantine_service() {
        silence_panics();
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Flaky {
            failures: u32::MAX,
            seen: seen.clone(),
        }));
        host.bus_mut().set_max_attempts(Some(10));
        host.bus_mut().publish("work", vec![], Publication::new());
        let processed = host.run_until_quiet(50);
        assert_eq!(processed, 3, "quarantined after 3 consecutive panics");
        assert_eq!(host.quarantined_services(), vec!["flaky"]);
        // The message stays queued for when the service is released.
        host.bus_mut().publish("work", vec![], Publication::new());
        assert_eq!(host.run_until_quiet(10), 0, "quarantined service skipped");
        assert!(host.release_quarantine("flaky"));
        assert!(!host.release_quarantine("flaky"), "already released");
        assert!(host.run_until_quiet(50) > 0);
    }

    #[test]
    fn switchless_pump_matches_step_pump() {
        // The event-driven pump must be observably identical to the
        // scanning pump: same messages seen, same terminal bus stats —
        // and it never polls an empty queue.
        let run = |switchless: bool| {
            let mut host = ServiceHost::new(1000);
            let seen = Arc::new(AtomicU64::new(0));
            host.register(Box::new(Doubler));
            host.register(Box::new(Counter {
                seen: seen.clone(),
                filter: None,
                topic: "doubled".into(),
            }));
            for i in 0..10u64 {
                host.bus_mut()
                    .publish("readings", i.to_le_bytes().to_vec(), Publication::new());
            }
            let processed = if switchless {
                host.pump_switchless(100)
            } else {
                host.run_until_quiet(100)
            };
            (processed, seen.load(Ordering::Relaxed), host.bus().stats())
        };
        let stepped = run(false);
        let switchless = run(true);
        assert_eq!(switchless, stepped);
        assert_eq!(switchless.2.wasted_fetches, 0);
    }

    #[test]
    fn switchless_pump_skips_quarantined_ready_subscribers() {
        silence_panics();
        let mut host = ServiceHost::new(1000);
        host.register(Box::new(Flaky {
            failures: u32::MAX,
            seen: Arc::new(AtomicU64::new(0)),
        }));
        host.bus_mut().publish("work", vec![], Publication::new());
        let processed = host.pump_switchless(100);
        assert_eq!(processed, 3, "quarantined after 3 consecutive panics");
        assert_eq!(host.quarantined_services(), vec!["flaky"]);
        // The message is still ready (requeued by the nacks) but its only
        // consumer is quarantined: the pump must terminate, not spin.
        assert!(host.bus().has_ready());
        assert_eq!(host.pump_switchless(100), 0);
    }

    #[test]
    fn injected_panic_and_budget_exhaustion_dead_letter() {
        silence_panics();
        let mut host = ServiceHost::new(1000);
        host.register(Box::new(Flaky {
            failures: u32::MAX,
            seen: Arc::new(AtomicU64::new(0)),
        }));
        host.set_quarantine_after(10);
        host.bus_mut().set_max_attempts(Some(2));
        assert!(host.inject_panic_next("flaky"));
        assert!(!host.inject_panic_next("nonexistent"));
        host.bus_mut()
            .publish("work", b"bad".to_vec(), Publication::new());
        host.run_until_quiet(50);
        let dead = host.bus().dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].message.payload, b"bad");
        assert_eq!(dead[0].message.attempt, 2);
    }
}
