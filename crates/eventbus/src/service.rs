//! The micro-service framework: services wired together by the event bus
//! (paper Figure 1: "applications consist of a set of micro-services
//! connected by an event bus").

use crate::bus::{EventBus, Message, SubscriberId};
use securecloud_scbr::types::{Publication, Subscription};

/// Context handed to a service while handling a message.
#[derive(Debug, Default)]
pub struct ServiceCtx {
    outbox: Vec<(String, Vec<u8>, Publication)>,
}

impl ServiceCtx {
    /// Emits a new event to `topic`.
    pub fn emit(&mut self, topic: &str, payload: Vec<u8>, attributes: Publication) {
        self.outbox.push((topic.to_string(), payload, attributes));
    }
}

/// A micro-service: declares its subscriptions and handles messages.
pub trait MicroService {
    /// Service name (diagnostics).
    fn name(&self) -> &str;
    /// Topics (with optional content filters) this service consumes.
    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)>;
    /// Handles one delivered message; emitted events go through `ctx`.
    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx);
}

struct Registered {
    service: Box<dyn MicroService>,
    subscriber_ids: Vec<SubscriberId>,
}

/// Hosts a set of micro-services on one bus, pumping deliveries.
pub struct ServiceHost {
    bus: EventBus,
    services: Vec<Registered>,
}

impl std::fmt::Debug for ServiceHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHost")
            .field("services", &self.services.len())
            .finish_non_exhaustive()
    }
}

impl ServiceHost {
    /// Creates a host over a fresh bus with the given lease duration.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        ServiceHost {
            bus: EventBus::new(lease_ms),
            services: Vec::new(),
        }
    }

    /// Registers a service and subscribes it to its declared topics.
    pub fn register(&mut self, service: Box<dyn MicroService>) {
        let subscriber_ids = service
            .subscriptions()
            .into_iter()
            .map(|(topic, filter)| self.bus.subscribe(&topic, filter))
            .collect();
        self.services.push(Registered {
            service,
            subscriber_ids,
        });
    }

    /// Direct bus access (publishing external events, reading stats).
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    /// The bus, read-only.
    #[must_use]
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Delivers at most one message to every subscription of every service;
    /// returns the number of messages processed.
    pub fn step(&mut self) -> usize {
        let mut processed = 0;
        let mut outbox = Vec::new();
        for registered in &mut self.services {
            for &sub_id in &registered.subscriber_ids {
                if let Some(message) = self.bus.fetch(sub_id) {
                    let mut ctx = ServiceCtx::default();
                    registered.service.handle(&message, &mut ctx);
                    self.bus.ack(sub_id, message.id);
                    outbox.append(&mut ctx.outbox);
                    processed += 1;
                }
            }
        }
        for (topic, payload, attributes) in outbox {
            self.bus.publish(&topic, payload, attributes);
        }
        processed
    }

    /// Pumps [`ServiceHost::step`] until no messages flow or `max_steps`
    /// is reached; returns total messages processed.
    pub fn run_until_quiet(&mut self, max_steps: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_steps {
            let n = self.step();
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_scbr::types::{Op, Predicate, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Doubles every reading and republishes it.
    struct Doubler;
    impl MicroService for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
            vec![("readings".into(), None)]
        }
        fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
            let v = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
            ctx.emit(
                "doubled",
                (v * 2).to_le_bytes().to_vec(),
                Publication::new().with("value", Value::Int((v * 2) as i64)),
            );
        }
    }

    /// Counts messages it receives.
    struct Counter {
        seen: Arc<AtomicU64>,
        filter: Option<Subscription>,
        topic: String,
    }
    impl MicroService for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
            vec![(self.topic.clone(), self.filter.clone())]
        }
        fn handle(&mut self, _message: &Message, _ctx: &mut ServiceCtx) {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn pipeline_of_services() {
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Doubler));
        host.register(Box::new(Counter {
            seen: seen.clone(),
            filter: None,
            topic: "doubled".into(),
        }));
        host.bus_mut()
            .publish("readings", 21u64.to_le_bytes().to_vec(), Publication::new());
        let processed = host.run_until_quiet(10);
        assert_eq!(processed, 2, "doubler then counter");
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn filtered_service_sees_subset() {
        let mut host = ServiceHost::new(1000);
        let seen = Arc::new(AtomicU64::new(0));
        host.register(Box::new(Counter {
            seen: seen.clone(),
            filter: Some(Subscription::new(vec![Predicate::new(
                "value",
                Op::Ge,
                Value::Int(100),
            )])),
            topic: "doubled".into(),
        }));
        host.register(Box::new(Doubler));
        // 21*2=42 filtered out; 60*2=120 accepted.
        host.bus_mut()
            .publish("readings", 21u64.to_le_bytes().to_vec(), Publication::new());
        host.bus_mut()
            .publish("readings", 60u64.to_le_bytes().to_vec(), Publication::new());
        host.run_until_quiet(10);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quiet_host_stops() {
        let mut host = ServiceHost::new(1000);
        host.register(Box::new(Doubler));
        assert_eq!(host.run_until_quiet(100), 0);
    }
}
