//! Per-topic payload encryption with attestation-gated key release.
//!
//! Payloads on the bus are sealed end-to-end between micro-services: the
//! bus (which may run on untrusted infrastructure) only ever sees
//! ciphertext plus the routable attributes. Topic keys are released by the
//! [`TopicKeyService`] exclusively to enclaves whose quote verifies and
//! whose measurement is on the topic's ACL.

use securecloud_crypto::gcm::{AesGcm, NONCE_LEN};
use securecloud_crypto::CryptoError;
use securecloud_sgx::attest::{AttestationService, Quote};
use securecloud_sgx::enclave::Measurement;
use securecloud_sgx::SgxError;
use std::collections::{HashMap, HashSet};
use std::error::Error as StdError;
use std::fmt;

/// Errors from the key service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyServiceError {
    /// Attestation of the requesting enclave failed.
    Attestation(SgxError),
    /// The measurement is not authorised for the topic.
    NotAuthorised {
        /// Requested topic.
        topic: String,
    },
}

impl fmt::Display for KeyServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyServiceError::Attestation(e) => write!(f, "attestation failed: {e}"),
            KeyServiceError::NotAuthorised { topic } => {
                write!(f, "measurement not authorised for topic {topic}")
            }
        }
    }
}

impl StdError for KeyServiceError {}

/// Attestation-gated distribution of per-topic payload keys.
#[derive(Debug)]
pub struct TopicKeyService {
    attestation: AttestationService,
    keys: HashMap<String, [u8; 16]>,
    acl: HashMap<String, HashSet<Measurement>>,
}

impl TopicKeyService {
    /// Creates a key service verifying quotes with `attestation`.
    #[must_use]
    pub fn new(attestation: AttestationService) -> Self {
        TopicKeyService {
            attestation,
            keys: HashMap::new(),
            acl: HashMap::new(),
        }
    }

    /// Grants `measurement` access to `topic` (creating the topic key on
    /// first grant).
    pub fn grant(&mut self, topic: &str, measurement: Measurement) {
        self.keys
            .entry(topic.to_string())
            .or_insert_with(securecloud_crypto::random_array);
        self.acl
            .entry(topic.to_string())
            .or_default()
            .insert(measurement);
    }

    /// Releases the key for `topic` to the attested enclave behind `quote`.
    ///
    /// # Errors
    ///
    /// [`KeyServiceError::Attestation`] if the quote does not verify,
    /// [`KeyServiceError::NotAuthorised`] if the measurement is not on the
    /// topic's ACL.
    pub fn key_for(&self, topic: &str, quote: &Quote) -> Result<[u8; 16], KeyServiceError> {
        let report = self
            .attestation
            .verify(quote)
            .map_err(KeyServiceError::Attestation)?;
        let allowed = self
            .acl
            .get(topic)
            .is_some_and(|acl| acl.contains(&report.measurement));
        if !allowed {
            return Err(KeyServiceError::NotAuthorised {
                topic: topic.to_string(),
            });
        }
        Ok(self.keys[topic])
    }
}

/// Seals a payload under a topic key (random nonce prefix).
#[must_use]
pub fn seal_payload(key: &[u8; 16], payload: &[u8]) -> Vec<u8> {
    let nonce: [u8; NONCE_LEN] = securecloud_crypto::random_array();
    let mut out = nonce.to_vec();
    out.extend_from_slice(&AesGcm::new(key).seal(&nonce, payload, b"securecloud bus payload"));
    out
}

/// Opens a payload sealed with [`seal_payload`].
///
/// # Errors
///
/// [`CryptoError::AuthenticationFailed`] on tampering or a wrong key.
pub fn open_payload(key: &[u8; 16], sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < NONCE_LEN {
        return Err(CryptoError::AuthenticationFailed);
    }
    let (nonce, body) = sealed.split_at(NONCE_LEN);
    let nonce: [u8; NONCE_LEN] = nonce.try_into().expect("split size");
    AesGcm::new(key).open(&nonce, body, b"securecloud bus payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_sgx::enclave::{EnclaveConfig, Platform};

    fn world() -> (Platform, TopicKeyService, Measurement) {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new("svc", b"service code"))
            .unwrap();
        let measurement = enclave.measurement();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        attestation.allow_measurement(measurement);
        let service = TopicKeyService::new(attestation);
        (platform, service, measurement)
    }

    #[test]
    fn grant_and_release() {
        let (platform, mut service, measurement) = world();
        service.grant("meters", measurement);
        let enclave = platform
            .launch(EnclaveConfig::new("svc", b"service code"))
            .unwrap();
        let key = service.key_for("meters", &enclave.quote(b"")).unwrap();
        // Stable across requests.
        assert_eq!(key, service.key_for("meters", &enclave.quote(b"")).unwrap());
    }

    #[test]
    fn unauthorised_measurement_denied() {
        let (platform, mut service, measurement) = world();
        service.grant("meters", measurement);
        let rogue = platform
            .launch(EnclaveConfig::new("rogue", b"other code"))
            .unwrap();
        // Attested (allow it) but not on the topic ACL.
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        attestation.allow_measurement(rogue.measurement());
        let mut service2 = TopicKeyService::new(attestation);
        service2.grant("meters", measurement);
        assert!(matches!(
            service2.key_for("meters", &rogue.quote(b"")),
            Err(KeyServiceError::NotAuthorised { .. })
        ));
        // Unattested quote is rejected outright.
        let unknown_platform = Platform::new();
        let impostor = unknown_platform
            .launch(EnclaveConfig::new("svc", b"service code"))
            .unwrap();
        assert!(matches!(
            service.key_for("meters", &impostor.quote(b"")),
            Err(KeyServiceError::Attestation(_))
        ));
    }

    #[test]
    fn payload_roundtrip_and_tampering() {
        let key = [3u8; 16];
        let sealed = seal_payload(&key, b"reading: 42");
        assert_eq!(open_payload(&key, &sealed).unwrap(), b"reading: 42");
        let mut bad = sealed.clone();
        bad[NONCE_LEN] ^= 1;
        assert!(open_payload(&key, &bad).is_err());
        assert!(open_payload(&[4u8; 16], &sealed).is_err());
        assert!(open_payload(&key, &sealed[..4]).is_err());
    }

    #[test]
    fn distinct_topics_distinct_keys() {
        let (platform, mut service, measurement) = world();
        service.grant("a", measurement);
        service.grant("b", measurement);
        let enclave = platform
            .launch(EnclaveConfig::new("svc", b"service code"))
            .unwrap();
        let quote = enclave.quote(b"");
        assert_ne!(
            service.key_for("a", &quote).unwrap(),
            service.key_for("b", &quote).unwrap()
        );
    }
}
