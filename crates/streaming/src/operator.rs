//! Keyed windowed aggregation as a micro-service.
//!
//! A [`WindowedAggregator`] consumes events from one bus topic, folds them
//! into per-(window, key) accumulators held in tiered state, and — once
//! the watermark (max observed event time) passes a window's end plus the
//! allowed lateness — drains the window and emits one result event per
//! key, in ascending key order. Results are normal stream events (key,
//! window-start timestamp, sum) plus rollup attributes, so operators
//! compose: a downstream join or aggregator re-windows them like any
//! other input.
//!
//! End-of-stream is a *flush token* on a control topic: the operator
//! closes everything still open, emits the results, and then (if
//! configured) forwards an end-of-stream marker downstream. The marker is
//! an [`ATTR_EOS`]-tagged publication, and `flush_out` should name the
//! operator's own *output* topic: because the bus is FIFO per topic, a
//! marker riding the data topic can never overtake the flushed results —
//! whereas a token on a separate control topic can, since the host
//! delivers each subscription in bounded batches. Downstream operators
//! treat an in-band marker on a data topic exactly like a flush token.

use securecloud_eventbus::bus::Message;
use securecloud_eventbus::service::{MicroService, ServiceCtx};
use securecloud_scbr::types::{Publication, Subscription, Value};
use std::collections::BTreeSet;

use crate::state::SharedState;
use crate::window::WindowSpec;
use crate::StreamError;

/// Attribute carrying the logical stream id (routing key on the secure
/// router's partitioned index).
pub const ATTR_STREAM: &str = "stream";
/// Attribute carrying the event key.
pub const ATTR_KEY: &str = "k";
/// Attribute carrying the event time, milliseconds.
pub const ATTR_TIME: &str = "t";
/// Attribute carrying the event value.
pub const ATTR_VALUE: &str = "v";
/// Result attribute: observation count in the window.
pub const ATTR_COUNT: &str = "n";
/// Result attribute: minimum value in the window.
pub const ATTR_MIN: &str = "min";
/// Result attribute: maximum value in the window.
pub const ATTR_MAX: &str = "max";
/// Marker attribute: the publication is an end-of-stream token, not an
/// event (sent in-band on data topics so it cannot overtake results).
pub const ATTR_EOS: &str = "eos";

/// An end-of-stream marker publication.
#[must_use]
pub fn eos_marker() -> Publication {
    Publication::new().with(ATTR_EOS, Value::Int(1))
}

/// Whether a publication is an end-of-stream marker.
#[must_use]
pub fn is_eos(p: &Publication) -> bool {
    p.attrs.contains_key(ATTR_EOS)
}

/// One decoded stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEvent {
    /// Grouping key (meter id, feeder id, ...).
    pub key: u64,
    /// Event time, milliseconds (sealed in the batch frame).
    pub t_ms: u64,
    /// Measured value.
    pub value: f64,
}

impl StreamEvent {
    /// Encodes the event as publication attributes for stream `stream`.
    #[must_use]
    pub fn publication(&self, stream: i64) -> Publication {
        Publication::new()
            .with(ATTR_STREAM, Value::Int(stream))
            .with(ATTR_KEY, Value::Int(self.key as i64))
            .with(ATTR_TIME, Value::Int(self.t_ms as i64))
            .with(ATTR_VALUE, Value::Float(self.value))
    }

    /// Decodes an event from publication attributes, reading the grouping
    /// key from `key_attr` (e.g. `"k"` for per-meter, `"feeder"` for
    /// per-feeder grouping of the same readings).
    ///
    /// # Errors
    ///
    /// [`StreamError::MalformedEvent`] on a missing or mistyped attribute.
    pub fn from_publication(p: &Publication, key_attr: &str) -> Result<Self, StreamError> {
        let int = |attr: &str, why: &'static str| match p.attrs.get(attr) {
            Some(Value::Int(v)) if *v >= 0 => Ok(*v as u64),
            _ => Err(StreamError::MalformedEvent(why)),
        };
        let value = match p.attrs.get(ATTR_VALUE) {
            Some(Value::Float(v)) => *v,
            Some(Value::Int(v)) => *v as f64,
            _ => return Err(StreamError::MalformedEvent("missing numeric value")),
        };
        Ok(StreamEvent {
            key: int(key_attr, "missing non-negative int key")?,
            t_ms: int(ATTR_TIME, "missing non-negative int time")?,
            value,
        })
    }
}

/// Configuration for a [`WindowedAggregator`].
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Operator name (state namespace and diagnostics).
    pub name: String,
    /// Bus topic consumed.
    pub input: String,
    /// Bus topic results are emitted to.
    pub output: String,
    /// Stream id stamped on results (router routing for egress).
    pub output_stream: i64,
    /// Attribute holding the grouping key on input events.
    pub key_attr: String,
    /// Window shape.
    pub windows: WindowSpec,
    /// Control topic whose messages force-close all open windows.
    pub flush_in: String,
    /// Topic the end-of-stream marker is forwarded to after closing
    /// (`None` for operators with no downstream stage). Use the
    /// operator's own output topic so the marker stays behind the
    /// results it flushed.
    pub flush_out: Option<String>,
}

const STATE_LANE: &str = "a";

/// The keyed windowed-aggregation micro-service.
pub struct WindowedAggregator {
    cfg: AggregatorConfig,
    state: SharedState,
    watermark_ms: u64,
    open: BTreeSet<u64>,
}

impl WindowedAggregator {
    /// Builds the operator over shared tiered state.
    #[must_use]
    pub fn new(cfg: AggregatorConfig, state: SharedState) -> Self {
        WindowedAggregator {
            cfg,
            state,
            watermark_ms: 0,
            open: BTreeSet::new(),
        }
    }

    /// Current watermark (max observed event time; `u64::MAX` after flush).
    #[must_use]
    pub fn watermark_ms(&self) -> u64 {
        self.watermark_ms
    }

    fn close_ready(&mut self, ctx: &mut ServiceCtx) {
        let closed: Vec<u64> = self
            .open
            .iter()
            .copied()
            .filter(|&w| self.cfg.windows.is_closed(w, self.watermark_ms))
            .collect();
        for window_start in closed {
            self.open.remove(&window_start);
            let drained = {
                let mut state = self.state.lock();
                match state.drain(STATE_LANE, window_start) {
                    Ok(drained) => drained,
                    Err(_) => {
                        state.metrics.malformed += 1;
                        continue;
                    }
                }
            };
            for (key, agg) in drained {
                ctx.emit(
                    &self.cfg.output,
                    Vec::new(),
                    Publication::new()
                        .with(ATTR_STREAM, Value::Int(self.cfg.output_stream))
                        .with(ATTR_KEY, Value::Int(key as i64))
                        .with(ATTR_TIME, Value::Int(window_start as i64))
                        .with(ATTR_VALUE, Value::Float(agg.sum))
                        .with(ATTR_COUNT, Value::Int(agg.count as i64))
                        .with(ATTR_MIN, Value::Float(agg.min))
                        .with(ATTR_MAX, Value::Float(agg.max)),
                );
            }
        }
    }
}

impl MicroService for WindowedAggregator {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![
            (self.cfg.input.clone(), None),
            (self.cfg.flush_in.clone(), None),
        ]
    }

    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        if message.topic == self.cfg.flush_in || is_eos(&message.attributes) {
            self.watermark_ms = u64::MAX;
            self.close_ready(ctx);
            if let Some(downstream) = &self.cfg.flush_out {
                ctx.emit(downstream, Vec::new(), eos_marker());
            }
            return;
        }
        let event = match StreamEvent::from_publication(&message.attributes, &self.cfg.key_attr) {
            Ok(event) => event,
            Err(_) => {
                self.state.lock().metrics.malformed += 1;
                return;
            }
        };
        if self.cfg.windows.is_late(event.t_ms, self.watermark_ms) {
            self.state.lock().metrics.late_dropped += 1;
            return;
        }
        for window_start in self.cfg.windows.assign(event.t_ms) {
            // A closed (already-drained) window never reopens: lateness
            // was checked against the youngest window, older assignments
            // may still individually be closed.
            if self.cfg.windows.is_closed(window_start, self.watermark_ms) {
                continue;
            }
            let mut state = self.state.lock();
            if state
                .observe(STATE_LANE, window_start, event.key, event.value)
                .is_err()
            {
                state.metrics.malformed += 1;
                continue;
            }
            drop(state);
            self.open.insert(window_start);
        }
        self.watermark_ms = self.watermark_ms.max(event.t_ms);
        self.close_ready(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::OperatorState;
    use securecloud_eventbus::service::ServiceHost;
    use securecloud_sgx::costs::MemoryGeometry;

    fn aggregator(windows: WindowSpec) -> (WindowedAggregator, SharedState) {
        let state = OperatorState::shared(
            "agg",
            MemoryGeometry::sgx_v1(),
            OperatorState::default_storage(),
        );
        let cfg = AggregatorConfig {
            name: "agg".into(),
            input: "in".into(),
            output: "out".into(),
            output_stream: 9,
            key_attr: ATTR_KEY.into(),
            windows,
            flush_in: "flush".into(),
            flush_out: None,
        };
        (WindowedAggregator::new(cfg, state.clone()), state)
    }

    fn event(key: u64, t_ms: u64, value: f64) -> Publication {
        StreamEvent { key, t_ms, value }.publication(1)
    }

    #[test]
    fn tumbling_sums_per_key_and_emits_on_close() {
        let (agg, state) = aggregator(WindowSpec::tumbling(60_000).unwrap());
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(agg));
        let results = host.bus_mut().subscribe("out", None);
        for (k, t, v) in [(1, 1_000, 2.0), (2, 5_000, 3.0), (1, 30_000, 4.0)] {
            host.bus_mut().publish("in", Vec::new(), event(k, t, v));
        }
        host.pump_switchless(64);
        assert!(
            host.bus_mut().fetch_batch(results, 16).is_empty(),
            "still open"
        );
        // An event past the window end closes it.
        host.bus_mut()
            .publish("in", Vec::new(), event(7, 61_000, 1.0));
        host.pump_switchless(64);
        let out = host.bus_mut().fetch_batch(results, 16);
        assert_eq!(out.len(), 2, "two keys in window 0");
        let sums: Vec<(i64, f64)> = out
            .iter()
            .map(|m| {
                let k = match m.attributes.attrs[ATTR_KEY] {
                    Value::Int(k) => k,
                    _ => panic!("int key"),
                };
                let v = match m.attributes.attrs[ATTR_VALUE] {
                    Value::Float(v) => v,
                    _ => panic!("float value"),
                };
                (k, v)
            })
            .collect();
        assert_eq!(sums, vec![(1, 6.0), (2, 3.0)], "key-ordered sums");
        assert_eq!(state.lock().metrics.events, 4);
        assert_eq!(state.lock().metrics.results, 2);
    }

    #[test]
    fn flush_closes_open_windows() {
        let (agg, _state) = aggregator(WindowSpec::tumbling(60_000).unwrap());
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(agg));
        let results = host.bus_mut().subscribe("out", None);
        host.bus_mut()
            .publish("in", Vec::new(), event(4, 10_000, 5.0));
        host.pump_switchless(64);
        host.bus_mut()
            .publish("flush", Vec::new(), Publication::new());
        host.pump_switchless(64);
        let out = host.bus_mut().fetch_batch(results, 16);
        assert_eq!(out.len(), 1, "flush emitted the open window");
    }

    #[test]
    fn late_events_are_dropped_not_reopened() {
        let (agg, state) = aggregator(WindowSpec::tumbling(60_000).unwrap());
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(agg));
        let results = host.bus_mut().subscribe("out", None);
        host.bus_mut()
            .publish("in", Vec::new(), event(1, 1_000, 1.0));
        host.bus_mut()
            .publish("in", Vec::new(), event(1, 61_000, 1.0));
        // Window 0 closed by the second event; this one is too late.
        host.bus_mut()
            .publish("in", Vec::new(), event(1, 2_000, 50.0));
        host.pump_switchless(64);
        assert_eq!(state.lock().metrics.late_dropped, 1);
        let out = host.bus_mut().fetch_batch(results, 16);
        assert_eq!(out.len(), 1);
        match out[0].attributes.attrs[ATTR_VALUE] {
            Value::Float(v) => assert!((v - 1.0).abs() < 1e-12, "late value excluded"),
            _ => panic!("float value"),
        }
    }

    #[test]
    fn malformed_events_counted_not_panicking() {
        let (agg, state) = aggregator(WindowSpec::tumbling(60_000).unwrap());
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(agg));
        host.bus_mut().publish(
            "in",
            Vec::new(),
            Publication::new().with(ATTR_KEY, Value::Str("not an int".into())),
        );
        host.pump_switchless(64);
        assert_eq!(state.lock().metrics.malformed, 1);
    }
}
