//! Window specifications and deterministic window assignment.
//!
//! A [`WindowSpec`] maps an event-time timestamp to the set of windows the
//! event belongs to. Assignment is a pure function of the timestamp — not
//! of arrival order, wall clock, or worker count — which is what keeps
//! equal-seed pipeline runs byte-identical at any `--jobs N`: the
//! timestamps ride *inside* the sealed SCBR batch frames (next to the
//! `TraceContext` header), so the untrusted host can neither reorder nor
//! rewrite them without failing authentication.
//!
//! Windows are half-open intervals `[start, start + size)` on the event-time
//! axis, with starts aligned to multiples of the stride. A tumbling window
//! is the `stride == size` special case; a sliding window with
//! `stride < size` holds each event in `size / stride` overlapping windows.

use crate::StreamError;

/// A validated window specification.
///
/// Construct via [`WindowSpec::tumbling`] or [`WindowSpec::sliding`]; the
/// constructors reject degenerate shapes (zero sizes, stride above size,
/// non-dividing stride) so assignment can never divide by zero or produce
/// gappy coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    size_ms: u64,
    stride_ms: u64,
    lateness_ms: u64,
}

impl WindowSpec {
    /// A tumbling window of `size_ms`: every timestamp belongs to exactly
    /// one window.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidWindow`] when `size_ms` is zero.
    pub fn tumbling(size_ms: u64) -> Result<Self, StreamError> {
        if size_ms == 0 {
            return Err(StreamError::InvalidWindow("window size must be non-zero"));
        }
        Ok(WindowSpec {
            size_ms,
            stride_ms: size_ms,
            lateness_ms: 0,
        })
    }

    /// A sliding window of `size_ms` advancing by `stride_ms`: every
    /// timestamp belongs to `size_ms / stride_ms` overlapping windows
    /// (fewer near the time origin).
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidWindow`] when either span is zero, the stride
    /// exceeds the size, or the stride does not divide the size (which
    /// would make per-event window counts ragged).
    pub fn sliding(size_ms: u64, stride_ms: u64) -> Result<Self, StreamError> {
        if size_ms == 0 || stride_ms == 0 {
            return Err(StreamError::InvalidWindow("window spans must be non-zero"));
        }
        if stride_ms > size_ms {
            return Err(StreamError::InvalidWindow(
                "stride above size leaves coverage gaps",
            ));
        }
        if !size_ms.is_multiple_of(stride_ms) {
            return Err(StreamError::InvalidWindow("stride must divide size"));
        }
        Ok(WindowSpec {
            size_ms,
            stride_ms,
            lateness_ms: 0,
        })
    }

    /// Allows events up to `lateness_ms` behind the watermark: a window
    /// only closes once the watermark passes its end *plus* this slack.
    #[must_use]
    pub fn with_lateness(mut self, lateness_ms: u64) -> Self {
        self.lateness_ms = lateness_ms;
        self
    }

    /// Window length, milliseconds.
    #[must_use]
    pub fn size_ms(&self) -> u64 {
        self.size_ms
    }

    /// Window advance, milliseconds (equals the size for tumbling windows).
    #[must_use]
    pub fn stride_ms(&self) -> u64 {
        self.stride_ms
    }

    /// Allowed lateness, milliseconds.
    #[must_use]
    pub fn lateness_ms(&self) -> u64 {
        self.lateness_ms
    }

    /// Whether this is a tumbling (non-overlapping) spec.
    #[must_use]
    pub fn is_tumbling(&self) -> bool {
        self.stride_ms == self.size_ms
    }

    /// How many windows an event far from the time origin belongs to.
    #[must_use]
    pub fn windows_per_event(&self) -> u64 {
        self.size_ms / self.stride_ms
    }

    /// The window starts containing event time `t_ms`, ascending. Pure in
    /// `t_ms`: equal timestamps get equal window sets in any arrival order.
    #[must_use]
    pub fn assign(&self, t_ms: u64) -> Vec<u64> {
        let mut starts = Vec::with_capacity(self.windows_per_event() as usize);
        let mut start = (t_ms / self.stride_ms) * self.stride_ms;
        loop {
            starts.push(start);
            if start < self.stride_ms {
                break;
            }
            let previous = start - self.stride_ms;
            if previous + self.size_ms <= t_ms {
                break;
            }
            start = previous;
        }
        starts.reverse();
        starts
    }

    /// Exclusive end of the window starting at `start_ms`.
    #[must_use]
    pub fn end_ms(&self, start_ms: u64) -> u64 {
        start_ms + self.size_ms
    }

    /// Whether the window starting at `start_ms` has closed under
    /// `watermark_ms` (watermark at or past end + lateness).
    #[must_use]
    pub fn is_closed(&self, start_ms: u64, watermark_ms: u64) -> bool {
        watermark_ms >= self.end_ms(start_ms) + self.lateness_ms
    }

    /// Whether an event at `t_ms` is too late to be admitted under
    /// `watermark_ms` — its every window has already closed.
    #[must_use]
    pub fn is_late(&self, t_ms: u64, watermark_ms: u64) -> bool {
        // The youngest window containing t starts at floor(t/stride)*stride.
        let youngest = (t_ms / self.stride_ms) * self.stride_ms;
        self.is_closed(youngest, watermark_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(WindowSpec::tumbling(0).is_err());
        assert!(WindowSpec::sliding(0, 1).is_err());
        assert!(WindowSpec::sliding(60, 0).is_err());
        assert!(WindowSpec::sliding(60, 120).is_err());
        assert!(WindowSpec::sliding(90, 60).is_err(), "stride must divide");
        let w = WindowSpec::tumbling(60_000).unwrap();
        assert!(w.is_tumbling());
        assert_eq!(w.windows_per_event(), 1);
        let s = WindowSpec::sliding(120_000, 60_000).unwrap();
        assert!(!s.is_tumbling());
        assert_eq!(s.windows_per_event(), 2);
    }

    #[test]
    fn tumbling_boundary_lands_in_exactly_one_window() {
        let w = WindowSpec::tumbling(60).unwrap();
        assert_eq!(w.assign(0), vec![0]);
        assert_eq!(w.assign(59), vec![0]);
        assert_eq!(w.assign(60), vec![60], "boundary opens the next window");
        assert_eq!(w.assign(61), vec![60]);
    }

    #[test]
    fn sliding_overlap_matches_stride() {
        let w = WindowSpec::sliding(120, 60).unwrap();
        assert_eq!(w.assign(30), vec![0], "origin has no negative windows");
        assert_eq!(w.assign(130), vec![60, 120]);
        assert_eq!(w.assign(120), vec![60, 120], "boundary enters new window");
        assert_eq!(w.assign(119), vec![0, 60]);
    }

    #[test]
    fn closing_respects_lateness() {
        let w = WindowSpec::tumbling(60).unwrap().with_lateness(30);
        assert!(!w.is_closed(0, 89));
        assert!(w.is_closed(0, 90));
        assert!(!w.is_late(59, 89), "within lateness is admitted");
        assert!(w.is_late(59, 90));
    }
}
