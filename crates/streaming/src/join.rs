//! Two-stream windowed inner join.
//!
//! [`TwoStreamJoin`] consumes two bus topics, accumulates each side into
//! its own state lane keyed by `(window, key)`, and — when a window
//! closes — pairs keys present on both sides and emits one joined result
//! per key. Unmatched keys are dropped (inner-join semantics).
//!
//! ## Why per-lane watermarks
//!
//! The join's inputs are usually *results* of upstream aggregators, whose
//! timestamps are window starts. The two upstreams advance in lockstep
//! over the same ingested data, but within one pump round the bus may
//! deliver one side's results for window *w + size* before the other
//! side's results for *w* (service registration order decides). Closing
//! on the *combined* max watermark could therefore seal a window with one
//! side missing. The join instead tracks one watermark per lane and
//! closes on their **minimum**: a window seals only once *both* sides
//! have produced results past its end, and since each side emits windows
//! in ascending order over a FIFO bus, both sides' data for the sealed
//! window has necessarily been folded in. Arrival interleaving therefore
//! cannot change results — the determinism argument of [`crate::window`]
//! extends through the join.
//!
//! End-of-stream: each upstream forwards an [`crate::operator::ATTR_EOS`]
//! marker **in-band on its own output topic**, behind its flushed
//! results. An in-band marker seals only its lane's watermark — the
//! min-closing rule above then guarantees no window seals before both
//! lanes' results are folded in. (A token on a separate control topic
//! cannot give that guarantee: the host delivers each subscription in
//! bounded batches, so a control-topic token can overtake data still
//! queued on the data topics. The `flush_in` topic remains for
//! force-closing a join directly, with `flush_fan_in` counting tokens.)

use securecloud_eventbus::bus::Message;
use securecloud_eventbus::service::{MicroService, ServiceCtx};
use securecloud_scbr::types::{Publication, Subscription, Value};
use std::collections::{BTreeMap, BTreeSet};

use crate::operator::{
    eos_marker, is_eos, StreamEvent, ATTR_COUNT, ATTR_KEY, ATTR_STREAM, ATTR_TIME, ATTR_VALUE,
};
use crate::state::SharedState;
use crate::window::WindowSpec;

/// Joined-result attribute: left-side window sum.
pub const ATTR_LEFT: &str = "l";
/// Joined-result attribute: right-side window sum.
pub const ATTR_RIGHT: &str = "r";

/// Configuration for a [`TwoStreamJoin`].
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Operator name (state namespace and diagnostics).
    pub name: String,
    /// Bus topic of the left input.
    pub left: String,
    /// Bus topic of the right input.
    pub right: String,
    /// Bus topic joined results are emitted to.
    pub output: String,
    /// Stream id stamped on results.
    pub output_stream: i64,
    /// Window shape (use a tumbling window of the upstream stride to pair
    /// upstream windows one-to-one).
    pub windows: WindowSpec,
    /// Control topic that force-closes all open windows (in-band
    /// end-of-stream markers on the data topics are the overtaking-safe
    /// alternative).
    pub flush_in: String,
    /// Flush tokens to await before closing (one per upstream feeding
    /// `flush_in`).
    pub flush_fan_in: usize,
    /// Topic the end-of-stream marker is forwarded to after closing.
    pub flush_out: Option<String>,
}

const LEFT_LANE: &str = "l";
const RIGHT_LANE: &str = "r";

/// The windowed inner-join micro-service.
pub struct TwoStreamJoin {
    cfg: JoinConfig,
    state: SharedState,
    watermark_left_ms: u64,
    watermark_right_ms: u64,
    flushes_seen: usize,
    eos_forwarded: bool,
    open: BTreeSet<u64>,
}

impl TwoStreamJoin {
    /// Builds the join over shared tiered state.
    #[must_use]
    pub fn new(cfg: JoinConfig, state: SharedState) -> Self {
        TwoStreamJoin {
            cfg,
            state,
            watermark_left_ms: 0,
            watermark_right_ms: 0,
            flushes_seen: 0,
            eos_forwarded: false,
            open: BTreeSet::new(),
        }
    }

    fn forward_eos_once(&mut self, ctx: &mut ServiceCtx) {
        if self.eos_forwarded {
            return;
        }
        if self.watermark_left_ms == u64::MAX && self.watermark_right_ms == u64::MAX {
            self.eos_forwarded = true;
            if let Some(downstream) = &self.cfg.flush_out {
                ctx.emit(downstream, Vec::new(), eos_marker());
            }
        }
    }

    fn watermark_ms(&self) -> u64 {
        self.watermark_left_ms.min(self.watermark_right_ms)
    }

    fn close_ready(&mut self, ctx: &mut ServiceCtx) {
        let watermark = self.watermark_ms();
        let closed: Vec<u64> = self
            .open
            .iter()
            .copied()
            .filter(|&w| self.cfg.windows.is_closed(w, watermark))
            .collect();
        for window_start in closed {
            self.open.remove(&window_start);
            let (left, right) = {
                let mut state = self.state.lock();
                let left = state.drain(LEFT_LANE, window_start);
                let right = state.drain(RIGHT_LANE, window_start);
                match (left, right) {
                    (Ok(left), Ok(right)) => (left, right),
                    _ => {
                        state.metrics.malformed += 1;
                        continue;
                    }
                }
            };
            let right: BTreeMap<u64, crate::state::Aggregate> = right.into_iter().collect();
            for (key, left_agg) in left {
                let Some(right_agg) = right.get(&key) else {
                    continue;
                };
                ctx.emit(
                    &self.cfg.output,
                    Vec::new(),
                    Publication::new()
                        .with(ATTR_STREAM, Value::Int(self.cfg.output_stream))
                        .with(ATTR_KEY, Value::Int(key as i64))
                        .with(ATTR_TIME, Value::Int(window_start as i64))
                        .with(ATTR_LEFT, Value::Float(left_agg.sum))
                        .with(ATTR_RIGHT, Value::Float(right_agg.sum))
                        // The delta convention: positive when the right
                        // side exceeds the left (e.g. metered-actual minus
                        // customer-reported = unbilled loss).
                        .with(ATTR_VALUE, Value::Float(right_agg.sum - left_agg.sum))
                        .with(
                            ATTR_COUNT,
                            Value::Int((left_agg.count + right_agg.count) as i64),
                        ),
                );
            }
        }
    }
}

impl MicroService for TwoStreamJoin {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![
            (self.cfg.left.clone(), None),
            (self.cfg.right.clone(), None),
            (self.cfg.flush_in.clone(), None),
        ]
    }

    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        if message.topic == self.cfg.flush_in {
            self.flushes_seen += 1;
            if self.flushes_seen < self.cfg.flush_fan_in {
                return;
            }
            self.watermark_left_ms = u64::MAX;
            self.watermark_right_ms = u64::MAX;
            self.close_ready(ctx);
            self.forward_eos_once(ctx);
            return;
        }
        let lane = if message.topic == self.cfg.left {
            LEFT_LANE
        } else {
            RIGHT_LANE
        };
        if is_eos(&message.attributes) {
            // In-band end-of-stream: seals this lane only. The other
            // lane's results may still be queued behind its own marker,
            // and the min-watermark rule keeps windows open for them.
            if lane == LEFT_LANE {
                self.watermark_left_ms = u64::MAX;
            } else {
                self.watermark_right_ms = u64::MAX;
            }
            self.close_ready(ctx);
            self.forward_eos_once(ctx);
            return;
        }
        let event = match StreamEvent::from_publication(&message.attributes, ATTR_KEY) {
            Ok(event) => event,
            Err(_) => {
                self.state.lock().metrics.malformed += 1;
                return;
            }
        };
        if self.cfg.windows.is_late(event.t_ms, self.watermark_ms()) {
            self.state.lock().metrics.late_dropped += 1;
            return;
        }
        for window_start in self.cfg.windows.assign(event.t_ms) {
            if self
                .cfg
                .windows
                .is_closed(window_start, self.watermark_ms())
            {
                continue;
            }
            let mut state = self.state.lock();
            if state
                .observe(lane, window_start, event.key, event.value)
                .is_err()
            {
                state.metrics.malformed += 1;
                continue;
            }
            drop(state);
            self.open.insert(window_start);
        }
        if lane == LEFT_LANE {
            self.watermark_left_ms = self.watermark_left_ms.max(event.t_ms);
        } else {
            self.watermark_right_ms = self.watermark_right_ms.max(event.t_ms);
        }
        self.close_ready(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::OperatorState;
    use securecloud_eventbus::service::ServiceHost;
    use securecloud_sgx::costs::MemoryGeometry;

    fn join_host() -> (
        ServiceHost,
        securecloud_eventbus::bus::SubscriberId,
        SharedState,
    ) {
        let state = OperatorState::shared(
            "join",
            MemoryGeometry::sgx_v1(),
            OperatorState::default_storage(),
        );
        let cfg = JoinConfig {
            name: "join".into(),
            left: "left".into(),
            right: "right".into(),
            output: "joined".into(),
            output_stream: 30,
            windows: WindowSpec::tumbling(60_000).unwrap(),
            flush_in: "flush".into(),
            flush_fan_in: 1,
            flush_out: None,
        };
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(TwoStreamJoin::new(cfg, state.clone())));
        let results = host.bus_mut().subscribe("joined", None);
        (host, results, state)
    }

    fn event(key: u64, t_ms: u64, value: f64) -> Publication {
        StreamEvent { key, t_ms, value }.publication(1)
    }

    #[test]
    fn inner_join_pairs_keys_and_emits_delta() {
        let (mut host, results, _state) = join_host();
        host.bus_mut()
            .publish("left", Vec::new(), event(1, 0, 10.0));
        host.bus_mut()
            .publish("right", Vec::new(), event(1, 0, 14.0));
        host.bus_mut().publish("left", Vec::new(), event(2, 0, 5.0));
        // Key 2 has no right side; key 3 has no left side.
        host.bus_mut()
            .publish("right", Vec::new(), event(3, 0, 7.0));
        host.pump_switchless(64);
        host.bus_mut()
            .publish("flush", Vec::new(), Publication::new());
        host.pump_switchless(64);
        let out = host.bus_mut().fetch_batch(results, 16);
        assert_eq!(out.len(), 1, "only key 1 matches both sides");
        match out[0].attributes.attrs[ATTR_VALUE] {
            Value::Float(delta) => assert!((delta - 4.0).abs() < 1e-12),
            _ => panic!("float delta"),
        }
    }

    #[test]
    fn min_watermark_waits_for_the_slow_side() {
        let (mut host, results, _state) = join_host();
        // The left side races two windows ahead; the right side has not
        // produced anything past window 0, so nothing may close yet.
        host.bus_mut().publish("left", Vec::new(), event(1, 0, 1.0));
        host.bus_mut()
            .publish("left", Vec::new(), event(1, 130_000, 1.0));
        host.bus_mut()
            .publish("right", Vec::new(), event(1, 0, 2.0));
        host.pump_switchless(64);
        assert!(host.bus_mut().fetch_batch(results, 16).is_empty());
        // The right side catching up closes window 0 with both sides in.
        host.bus_mut()
            .publish("right", Vec::new(), event(9, 130_000, 2.0));
        host.pump_switchless(64);
        let out = host.bus_mut().fetch_batch(results, 16);
        assert_eq!(out.len(), 1, "window 0 joined after both sides passed it");
        match out[0].attributes.attrs[ATTR_VALUE] {
            Value::Float(delta) => assert!((delta - 1.0).abs() < 1e-12),
            _ => panic!("float delta"),
        }
    }

    #[test]
    fn in_band_eos_cannot_overtake_queued_results() {
        // Regression: with batched delivery, a flush token on a separate
        // control topic is delivered after only `batch` messages of each
        // data topic — closing windows with partial state. The in-band
        // marker rides the data topic itself, so every queued result is
        // folded in before its lane seals.
        let (mut host, results, state) = join_host();
        host.set_delivery_batch(2);
        let keys = 16u64;
        for key in 0..keys {
            host.bus_mut()
                .publish("left", Vec::new(), event(key, 0, 1.0));
        }
        host.bus_mut().publish("left", Vec::new(), eos_marker());
        for key in 0..keys {
            host.bus_mut()
                .publish("right", Vec::new(), event(key, 0, 2.0));
        }
        host.bus_mut().publish("right", Vec::new(), eos_marker());
        host.pump_switchless(10_000);
        let out = host.bus_mut().fetch_batch(results, 64);
        assert_eq!(
            out.len(),
            keys as usize,
            "every key must survive batched delivery"
        );
        assert_eq!(state.lock().metrics.late_dropped, 0);
    }

    #[test]
    fn flush_fan_in_waits_for_every_upstream() {
        let state = OperatorState::shared(
            "join2",
            MemoryGeometry::sgx_v1(),
            OperatorState::default_storage(),
        );
        let cfg = JoinConfig {
            name: "join2".into(),
            left: "left".into(),
            right: "right".into(),
            output: "joined".into(),
            output_stream: 30,
            windows: WindowSpec::tumbling(60_000).unwrap(),
            flush_in: "flush".into(),
            flush_fan_in: 2,
            flush_out: None,
        };
        let mut host = ServiceHost::new(60_000);
        host.register(Box::new(TwoStreamJoin::new(cfg, state)));
        let results = host.bus_mut().subscribe("joined", None);
        host.bus_mut().publish("left", Vec::new(), event(1, 0, 1.0));
        host.bus_mut()
            .publish("right", Vec::new(), event(1, 0, 3.0));
        host.bus_mut()
            .publish("flush", Vec::new(), Publication::new());
        host.pump_switchless(64);
        assert!(
            host.bus_mut().fetch_batch(results, 16).is_empty(),
            "one token of two must not close"
        );
        host.bus_mut()
            .publish("flush", Vec::new(), Publication::new());
        host.pump_switchless(64);
        assert_eq!(host.bus_mut().fetch_batch(results, 16).len(), 1);
    }
}
