//! Operator state beyond the EPC.
//!
//! Every windowed operator keeps its per-(window, key) accumulators in a
//! *tiered* [`SecureKv`]: hot accumulators live in the in-EPC memtable,
//! cold ones spill to sealed log-structured segments on the untrusted
//! host. Key cardinality is therefore bounded by host storage, not by the
//! ~94 MiB of usable EPC — the same state-beyond-EPC argument the tiered
//! store makes for batch jobs, now under streaming access patterns. Every
//! access is charged to the operator's own [`MemorySim`], so eviction and
//! paging show up in the benchmark's cycle accounting instead of being
//! free.
//!
//! The storage key layout is ordered so one range scan drains one window:
//!
//! ```text
//! <operator>/<lane>/<window start, 16 hex>/<key, 16 hex>
//! ```
//!
//! Hex-encoding the fixed-width integers makes lexicographic order equal
//! numeric order, so `scan(prefix, prefix + '0')` yields a closed window's
//! accumulators in ascending key order — which is what makes emission
//! order deterministic.

use std::sync::Arc;

use parking_lot::Mutex;
use securecloud_kvstore::{CounterService, SecureKv, StorageConfig, StoreKeys};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::{MemStats, MemorySim};

use crate::StreamError;

/// A windowed accumulator: count, sum, min, max over the observed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of observed values.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// Encoded accumulator width: count, sum, min, max at 8 bytes each.
pub const AGGREGATE_WIRE_LEN: usize = 32;

impl Aggregate {
    /// The accumulator after observing a first value.
    #[must_use]
    pub fn of(value: f64) -> Self {
        Aggregate {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Folds one more value in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observed values (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fixed-width little-endian encoding for the KV value.
    #[must_use]
    pub fn encode(&self) -> [u8; AGGREGATE_WIRE_LEN] {
        let mut out = [0u8; AGGREGATE_WIRE_LEN];
        out[..8].copy_from_slice(&self.count.to_le_bytes());
        out[8..16].copy_from_slice(&self.sum.to_le_bytes());
        out[16..24].copy_from_slice(&self.min.to_le_bytes());
        out[24..32].copy_from_slice(&self.max.to_le_bytes());
        out
    }

    /// Decodes a stored accumulator.
    ///
    /// # Errors
    ///
    /// [`StreamError::CorruptState`] on a width mismatch — a host that
    /// truncates sealed state gets a typed error, not a slice panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, StreamError> {
        if bytes.len() != AGGREGATE_WIRE_LEN {
            return Err(StreamError::CorruptState("accumulator width mismatch"));
        }
        let word = |i: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            w
        };
        Ok(Aggregate {
            count: u64::from_le_bytes(word(0)),
            sum: f64::from_le_bytes(word(1)),
            min: f64::from_le_bytes(word(2)),
            max: f64::from_le_bytes(word(3)),
        })
    }
}

/// Per-operator stream counters, read by benches and tests through the
/// shared state handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StateMetrics {
    /// Events folded into some window.
    pub events: u64,
    /// (window, key) results emitted on close.
    pub results: u64,
    /// Events dropped because every window containing them had closed.
    pub late_dropped: u64,
    /// Events dropped for missing/mistyped attributes.
    pub malformed: u64,
}

/// State for one operator: a tiered KV plus the enclave memory simulator
/// its accesses are charged to.
#[derive(Debug)]
pub struct OperatorState {
    name: String,
    kv: SecureKv,
    mem: MemorySim,
    peak_state_bytes: u64,
    /// Stream counters, maintained by the owning operator.
    pub metrics: StateMetrics,
}

/// Shared handle to an [`OperatorState`]: the operator (boxed into the
/// service host) and the benchmark both hold one, so cycle and paging
/// accounting stays readable after the pipeline is deployed.
pub type SharedState = Arc<Mutex<OperatorState>>;

impl OperatorState {
    /// Creates tiered state for operator `name` under the given enclave
    /// geometry (shrink the EPC to put the state under pressure).
    #[must_use]
    pub fn new(name: &str, geometry: MemoryGeometry, storage: StorageConfig) -> Self {
        let mut key = [0u8; 16];
        for (i, b) in name.bytes().enumerate() {
            key[i % 16] ^= b.wrapping_add(i as u8);
        }
        OperatorState {
            name: name.to_string(),
            kv: SecureKv::tiered(
                storage,
                StoreKeys::new(key),
                CounterService::new(),
                format!("streaming/{name}"),
            ),
            mem: MemorySim::enclave(geometry, CostModel::sgx_v1()),
            peak_state_bytes: 0,
            metrics: StateMetrics::default(),
        }
    }

    /// Shared-handle constructor (what operators and benches want).
    #[must_use]
    pub fn shared(name: &str, geometry: MemoryGeometry, storage: StorageConfig) -> SharedState {
        Arc::new(Mutex::new(Self::new(name, geometry, storage)))
    }

    /// A storage config sized for streaming accumulators: small blocks,
    /// a memtable budget well under typical sweep EPCs.
    #[must_use]
    pub fn default_storage() -> StorageConfig {
        StorageConfig {
            block_bytes: 1024,
            flush_bytes: 128 << 10,
            cache_blocks: 8,
            compact_at_segments: 8,
        }
    }

    /// Operator name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn storage_key(&self, lane: &str, window_start: u64, key: u64) -> Vec<u8> {
        format!("{}/{}/{:016x}/{:016x}", self.name, lane, window_start, key).into_bytes()
    }

    /// Folds `value` into the `(window_start, key)` accumulator on `lane`.
    ///
    /// # Errors
    ///
    /// [`StreamError::CorruptState`] if the stored accumulator no longer
    /// decodes.
    pub fn observe(
        &mut self,
        lane: &str,
        window_start: u64,
        key: u64,
        value: f64,
    ) -> Result<(), StreamError> {
        let storage_key = self.storage_key(lane, window_start, key);
        let agg = match self.kv.get(&mut self.mem, &storage_key) {
            Some(stored) => {
                let mut agg = Aggregate::decode(&stored)?;
                agg.observe(value);
                agg
            }
            None => Aggregate::of(value),
        };
        self.kv.put(&mut self.mem, &storage_key, &agg.encode());
        self.peak_state_bytes = self.peak_state_bytes.max(self.kv.data_bytes());
        self.metrics.events += 1;
        Ok(())
    }

    /// Drains a closed window on `lane`: returns `(key, accumulator)` in
    /// ascending key order and deletes the entries, so state stays bounded
    /// by the number of *open* windows.
    ///
    /// # Errors
    ///
    /// [`StreamError::CorruptState`] on undecodable entries.
    pub fn drain(
        &mut self,
        lane: &str,
        window_start: u64,
    ) -> Result<Vec<(u64, Aggregate)>, StreamError> {
        let from = format!("{}/{}/{:016x}/", self.name, lane, window_start).into_bytes();
        // '0' is the successor of '/' in ASCII, so this bound covers
        // exactly the keys under the window prefix.
        let mut to = format!("{}/{}/{:016x}", self.name, lane, window_start).into_bytes();
        to.push(b'0');
        let pairs = self.kv.scan(&mut self.mem, &from, &to);
        let mut out = Vec::with_capacity(pairs.len());
        for (storage_key, value) in &pairs {
            let hex = storage_key
                .len()
                .checked_sub(16)
                .and_then(|at| std::str::from_utf8(&storage_key[at..]).ok())
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or(StreamError::CorruptState("undecodable state key"))?;
            out.push((hex, Aggregate::decode(value)?));
        }
        for (storage_key, _) in &pairs {
            self.kv.delete(&mut self.mem, storage_key);
        }
        self.metrics.results += out.len() as u64;
        Ok(out)
    }

    /// Simulated cycles charged to this operator so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.mem.cycles()
    }

    /// Memory-simulator counters (EPC faults, host IO, ...).
    #[must_use]
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }

    /// Live key/value bytes held in the state store.
    #[must_use]
    pub fn state_bytes(&self) -> u64 {
        self.kv.data_bytes()
    }

    /// High-water mark of live state bytes over the operator's life —
    /// closed windows drain, so the *final* state is near-empty; this is
    /// the number to hold against the usable EPC.
    #[must_use]
    pub fn peak_state_bytes(&self) -> u64 {
        self.peak_state_bytes
    }

    /// In-memtable entry count (tiered: excludes flushed segments).
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.kv.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> OperatorState {
        OperatorState::new(
            "test-op",
            MemoryGeometry::sgx_v1(),
            OperatorState::default_storage(),
        )
    }

    #[test]
    fn aggregate_roundtrip_and_fold() {
        let mut agg = Aggregate::of(3.0);
        agg.observe(1.0);
        agg.observe(5.0);
        assert_eq!(agg.count, 3);
        assert!((agg.mean() - 3.0).abs() < 1e-12);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 5.0);
        let back = Aggregate::decode(&agg.encode()).unwrap();
        assert_eq!(back, agg);
        assert!(Aggregate::decode(&[0u8; 7]).is_err(), "truncated state");
    }

    #[test]
    fn observe_then_drain_is_key_ordered_and_clears() {
        let mut st = state();
        for key in [9u64, 2, 7, 2] {
            st.observe("a", 60_000, key, key as f64).unwrap();
        }
        st.observe("a", 120_000, 1, 10.0).unwrap();
        let drained = st.drain("a", 60_000).unwrap();
        assert_eq!(
            drained.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2, 7, 9]
        );
        let two = drained.iter().find(|(k, _)| *k == 2).unwrap().1;
        assert_eq!(two.count, 2);
        assert!(st.drain("a", 60_000).unwrap().is_empty(), "window cleared");
        assert_eq!(
            st.drain("a", 120_000).unwrap().len(),
            1,
            "other window intact"
        );
        assert_eq!(st.metrics.events, 5);
        assert!(st.cycles() > 0, "accesses are charged");
    }

    #[test]
    fn lanes_are_disjoint() {
        let mut st = state();
        st.observe("l", 0, 1, 1.0).unwrap();
        st.observe("r", 0, 1, 2.0).unwrap();
        assert_eq!(st.drain("l", 0).unwrap().len(), 1);
        assert_eq!(st.drain("r", 0).unwrap().len(), 1);
    }
}
