//! The stream plane: SCBR ingress/egress around a service host — plus the
//! city-scale smart-grid pipelines built on it.
//!
//! ```text
//! producers ──seal batch──▶ SecureRouter ──frames──▶ consumer client
//!                              (enclave)                  │ open
//!                                                         ▼
//!                                              EventBus topics (by stream)
//!                                                         │ pump_switchless
//!                                                         ▼
//!                                    WindowedAggregator / TwoStreamJoin
//!                                                         │ results
//!                                                         ▼
//!            sink ◀──frames── SecureRouter ◀──seal batch── egress client
//! ```
//!
//! Ingress publications are sealed in batches (AEAD frames carrying a
//! trace-context header and the events' timestamps), routed by the
//! enclave-resident [`SecureRouter`] over its switchless plane, opened by
//! the plane's consumer client, and republished onto bus topics by stream
//! id. Operator results are collected from the bus, sealed back through
//! the router, and delivered to the sink client — so both edges of every
//! pipeline cross the secure messaging plane.

use std::collections::BTreeMap;

use securecloud_eventbus::bus::{EventBus, SubscriberId};
use securecloud_eventbus::service::{MicroService, ServiceHost};
use securecloud_scbr::secure::{ClientId, RouterClient, SecureRouter};
use securecloud_scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud_sgx::costs::MemoryGeometry;
use securecloud_sgx::enclave::{EnclaveConfig, Platform};
use securecloud_smartgrid::meters::GridSpec;
use securecloud_smartgrid::quality::{QualitySpec, NOMINAL_VOLTS};
use securecloud_telemetry::context::ContextMinter;

use crate::join::{JoinConfig, TwoStreamJoin, ATTR_RIGHT};
use crate::operator::{
    AggregatorConfig, StreamEvent, WindowedAggregator, ATTR_KEY, ATTR_MAX, ATTR_MIN, ATTR_STREAM,
    ATTR_VALUE,
};
use crate::state::{OperatorState, SharedState, StateMetrics};
use crate::window::WindowSpec;
use crate::StreamError;

/// Flush control topic for first-stage operators.
pub const FLUSH_STAGE0: &str = "streaming/flush/0";
/// Manual-override flush topic for second-stage operators. In normal
/// operation the second stage closes on the first stage's *in-band*
/// end-of-stream markers instead (see `crate::operator`): a marker on the
/// data topic stays behind the flushed results, a token on this topic
/// could overtake them under batched delivery.
pub const FLUSH_STAGE1: &str = "streaming/flush/1";

/// Plane construction knobs.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Bus lease duration, milliseconds.
    pub lease_ms: u64,
    /// Messages delivered per subscription per pump round.
    pub delivery_batch: usize,
    /// Whether the router matches over the switchless plane.
    pub switchless: bool,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            lease_ms: 60_000,
            delivery_batch: 64,
            switchless: true,
        }
    }
}

/// The secure stream plane: one router enclave, one service host, and the
/// four router clients gluing them together.
pub struct StreamPlane {
    router: SecureRouter,
    host: ServiceHost,
    ingress: RouterClient,
    ingress_id: ClientId,
    consumer: RouterClient,
    consumer_id: ClientId,
    egress: RouterClient,
    egress_id: ClientId,
    sink: RouterClient,
    sink_id: ClientId,
    routes: BTreeMap<i64, String>,
    collectors: Vec<SubscriberId>,
    minter: ContextMinter,
    batch_seq: u64,
    results: Vec<Publication>,
    events_ingested: u64,
    frames_routed: u64,
}

impl StreamPlane {
    /// Builds the plane: launches the router enclave, registers the four
    /// clients, completes their key exchanges.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] if the enclave fails to launch.
    pub fn new(config: &PlaneConfig) -> Result<Self, StreamError> {
        let platform = Platform::new();
        let enclave = platform
            .launch(EnclaveConfig::new(
                "streaming-router",
                b"streaming router code",
            ))
            .map_err(|_| StreamError::Router(securecloud_scbr::ScbrError::ExchangeIncomplete))?;
        let mut router = SecureRouter::new(enclave, Some(ATTR_STREAM));
        router.set_switchless(config.switchless);
        let mut ingress = RouterClient::new();
        let mut consumer = RouterClient::new();
        let mut egress = RouterClient::new();
        let mut sink = RouterClient::new();
        let ingress_id = router.register(&ingress.public_key());
        let consumer_id = router.register(&consumer.public_key());
        let egress_id = router.register(&egress.public_key());
        let sink_id = router.register(&sink.public_key());
        for client in [&mut ingress, &mut consumer, &mut egress, &mut sink] {
            client.complete_exchange(&router.public_key());
        }
        let mut host = ServiceHost::new(config.lease_ms);
        host.set_delivery_batch(config.delivery_batch);
        Ok(StreamPlane {
            router,
            host,
            ingress,
            ingress_id,
            consumer,
            consumer_id,
            egress,
            egress_id,
            sink,
            sink_id,
            routes: BTreeMap::new(),
            collectors: Vec::new(),
            minter: ContextMinter::new(0x5eed_57ea),
            batch_seq: 0,
            results: Vec::new(),
            events_ingested: 0,
            frames_routed: 0,
        })
    }

    /// Routes input stream `stream` to bus topic `topic`: the consumer
    /// client subscribes (sealed) on the router, and opened events with
    /// that stream id are republished onto the topic.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on a sealed-subscription failure.
    pub fn map_input(&mut self, stream: i64, topic: &str) -> Result<(), StreamError> {
        let sub = Subscription::new(vec![Predicate::new(
            ATTR_STREAM,
            Op::Eq,
            Value::Int(stream),
        )]);
        let sealed = self.consumer.seal_subscription(&sub)?;
        self.router.subscribe_sealed(self.consumer_id, &sealed)?;
        self.routes.insert(stream, topic.to_string());
        Ok(())
    }

    /// Collects operator results published to `topic` under stream id
    /// `stream`: a bus collector drains them, the egress client seals them
    /// back through the router, and the sink client receives the frames.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on a sealed-subscription failure.
    pub fn collect_output(&mut self, stream: i64, topic: &str) -> Result<(), StreamError> {
        let sub = Subscription::new(vec![Predicate::new(
            ATTR_STREAM,
            Op::Eq,
            Value::Int(stream),
        )]);
        let sealed = self.sink.seal_subscription(&sub)?;
        self.router.subscribe_sealed(self.sink_id, &sealed)?;
        let collector = self.host.bus_mut().subscribe(topic, None);
        self.collectors.push(collector);
        Ok(())
    }

    /// Registers an operator micro-service on the host.
    pub fn register_operator(&mut self, operator: Box<dyn MicroService>) {
        self.host.register(operator);
    }

    /// Seals `events` into one batch frame, routes it through the enclave,
    /// and republishes the delivered events onto their stream topics.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on sealing/routing failures,
    /// [`StreamError::UnknownStream`] for an unmapped stream id.
    pub fn ingest(&mut self, events: &[Publication]) -> Result<(), StreamError> {
        if events.is_empty() {
            return Ok(());
        }
        self.batch_seq += 1;
        let ctx = self.minter.mint_root(self.batch_seq);
        let sealed = self.ingress.seal_publication_batch_traced(events, ctx)?;
        let frames = self.router.publish_sealed_batch(self.ingress_id, &sealed)?;
        self.events_ingested += events.len() as u64;
        self.route_frames(frames)
    }

    fn route_frames(&mut self, frames: Vec<(ClientId, Vec<u8>)>) -> Result<(), StreamError> {
        for (owner, frame) in frames {
            self.frames_routed += 1;
            if owner == self.consumer_id {
                let ctx = self.minter.mint_root(self.batch_seq);
                for publication in self.consumer.open_notification_batch(&frame)? {
                    let stream = match publication.attrs.get(ATTR_STREAM) {
                        Some(Value::Int(stream)) => *stream,
                        _ => return Err(StreamError::MalformedEvent("missing stream id")),
                    };
                    let topic = self
                        .routes
                        .get(&stream)
                        .ok_or(StreamError::UnknownStream(stream))?;
                    self.host
                        .bus_mut()
                        .publish_with_ctx(topic, Vec::new(), publication, ctx);
                }
            } else if owner == self.sink_id {
                self.results
                    .extend(self.sink.open_notification_batch(&frame)?);
            }
        }
        Ok(())
    }

    fn drain_collectors(&mut self) -> Result<usize, StreamError> {
        let mut pending = Vec::new();
        let collectors = self.collectors.clone();
        for collector in collectors {
            loop {
                let batch = self.host.bus_mut().fetch_batch(collector, 256);
                if batch.is_empty() {
                    break;
                }
                for message in batch {
                    self.host.bus_mut().ack(collector, message.id);
                    pending.push(message.attributes);
                }
            }
        }
        if pending.is_empty() {
            return Ok(0);
        }
        self.batch_seq += 1;
        let ctx = self.minter.mint_root(self.batch_seq);
        let sealed = self.egress.seal_publication_batch_traced(&pending, ctx)?;
        let frames = self.router.publish_sealed_batch(self.egress_id, &sealed)?;
        self.route_frames(frames)?;
        Ok(pending.len())
    }

    /// Pumps operators until the bus quiesces, sealing results out through
    /// the router as they appear. Returns messages processed.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on an egress sealing failure.
    pub fn run_to_quiet(&mut self) -> Result<usize, StreamError> {
        let mut total = 0;
        loop {
            let pumped = self.host.pump_switchless(100_000);
            let drained = self.drain_collectors()?;
            total += pumped + drained;
            if pumped == 0 && drained == 0 {
                return Ok(total);
            }
        }
    }

    /// Publishes the end-of-stream token to `flush_topic` and runs to
    /// quiescence, closing every window still open downstream.
    ///
    /// # Errors
    ///
    /// As [`StreamPlane::run_to_quiet`].
    pub fn flush(&mut self, flush_topic: &str) -> Result<usize, StreamError> {
        self.host
            .bus_mut()
            .publish(flush_topic, Vec::new(), Publication::new());
        self.run_to_quiet()
    }

    /// Results delivered to the sink so far, in delivery order.
    #[must_use]
    pub fn results(&self) -> &[Publication] {
        &self.results
    }

    /// Simulated cycles charged to the router enclave.
    #[must_use]
    pub fn router_cycles(&self) -> u64 {
        self.router.enclave().memory_view().cycles()
    }

    /// Events sealed into the plane so far.
    #[must_use]
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Frames the router fanned out (both edges).
    #[must_use]
    pub fn frames_routed(&self) -> u64 {
        self.frames_routed
    }

    /// The bus, read-only (stats).
    #[must_use]
    pub fn bus(&self) -> &EventBus {
        self.host.bus()
    }
}

// ---------------------------------------------------------------------------
// City-scale smart-grid pipelines.
// ---------------------------------------------------------------------------

/// Input stream: per-meter reported readings.
pub const STREAM_READINGS: i64 = 1;
/// Input stream: per-feeder substation totals (actual consumption).
pub const STREAM_FEEDER_TOTALS: i64 = 2;
/// Input stream: per-feeder voltage samples.
pub const STREAM_VOLTAGE: i64 = 3;
/// Result stream: per-meter windowed usage.
pub const STREAM_METER_USAGE: i64 = 10;
/// Result stream: per-feeder windowed loss (actual minus reported).
pub const STREAM_FEEDER_LOSS: i64 = 11;
/// Result stream: per-feeder power-quality rollups.
pub const STREAM_QUALITY: i64 = 12;

/// Attribute carrying the feeder id on meter readings.
pub const ATTR_FEEDER: &str = "feeder";

/// A city of feeders: each feeder is one [`GridSpec`] neighbourhood.
#[derive(Debug, Clone)]
pub struct CitySpec {
    /// Number of distribution feeders.
    pub feeders: usize,
    /// Households (meters) per feeder.
    pub households_per_feeder: usize,
    /// Meter sampling interval, seconds.
    pub interval_secs: u64,
    /// Trace duration, seconds.
    pub duration_secs: u64,
    /// Fraction of households committing theft.
    pub theft_fraction: f64,
    /// Thieves report this fraction of true consumption.
    pub theft_scale: f64,
    /// Base RNG seed (per-feeder seeds derive from it).
    pub seed: u64,
}

impl Default for CitySpec {
    fn default() -> Self {
        CitySpec {
            feeders: 4,
            households_per_feeder: 10,
            interval_secs: 300,
            duration_secs: 3_600,
            theft_fraction: 0.2,
            theft_scale: 0.4,
            seed: 11,
        }
    }
}

fn mix_seed(seed: u64, lane: u64) -> u64 {
    // SplitMix64 finaliser over the (seed, lane) pair.
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CitySpec {
    /// A city-scale grid: 400 feeders x 250 households = 100k meters.
    #[must_use]
    pub fn city() -> Self {
        CitySpec {
            feeders: 400,
            households_per_feeder: 250,
            interval_secs: 900,
            duration_secs: 2 * 3_600,
            ..CitySpec::default()
        }
    }

    /// Total meter count.
    #[must_use]
    pub fn meters(&self) -> usize {
        self.feeders * self.households_per_feeder
    }

    /// Samples per trace.
    #[must_use]
    pub fn samples(&self) -> usize {
        (self.duration_secs / self.interval_secs.max(1)) as usize
    }

    /// The [`GridSpec`] for feeder `feeder`, with a derived seed so
    /// neighbourhoods differ but the whole city is reproducible.
    #[must_use]
    pub fn feeder_spec(&self, feeder: usize) -> GridSpec {
        GridSpec {
            households: self.households_per_feeder,
            interval_secs: self.interval_secs,
            duration_secs: self.duration_secs,
            theft_fraction: self.theft_fraction,
            theft_scale: self.theft_scale,
            seed: mix_seed(self.seed, feeder as u64),
        }
    }
}

/// Deployment knobs for the city pipelines.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// The city being simulated.
    pub spec: CitySpec,
    /// Window shape for all aggregators.
    pub windows: WindowSpec,
    /// Enclave memory geometry for operator state (shrink the EPC to put
    /// the meter-keyed state under pressure).
    pub geometry: MemoryGeometry,
    /// Events sealed per ingress batch frame.
    pub ingest_batch: usize,
    /// Plane construction knobs.
    pub plane: PlaneConfig,
    /// Flag a feeder when its windowed loss fraction exceeds this.
    pub theft_threshold: f64,
    /// Injected power-quality faults per feeder trace.
    pub faults_per_feeder: usize,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            spec: CitySpec::default(),
            windows: WindowSpec::tumbling(900_000).expect("non-zero"),
            geometry: MemoryGeometry::sgx_v1(),
            ingest_batch: 256,
            plane: PlaneConfig::default(),
            theft_threshold: 0.02,
            faults_per_feeder: 1,
        }
    }
}

/// What one city run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CityRunReport {
    /// Events sealed into the plane.
    pub events_ingested: u64,
    /// Per-(meter, window) usage results (key-cardinality witness).
    pub meter_results: u64,
    /// Per-(feeder, window) loss results from the join.
    pub loss_windows: u64,
    /// Feeders whose mean loss fraction exceeded the threshold, ascending.
    pub flagged_feeders: Vec<u64>,
    /// Feeders hosting meters that actually under-report, ascending
    /// (ground truth for the detector).
    pub theft_feeders: Vec<u64>,
    /// Quality rollup windows whose minimum dipped below 0.9 pu.
    pub sag_windows: u64,
    /// Quality rollup windows whose maximum exceeded 1.1 pu.
    pub swell_windows: u64,
    /// FNV-1a digest over every sink result, in delivery order — the
    /// byte-identity witness for `--jobs N` determinism checks.
    pub results_digest: u64,
}

/// The two live city pipelines over one [`StreamPlane`]:
///
/// 1. **Theft detection** — per-meter usage rollups (the key-cardinality
///    driver) plus a per-feeder join of customer-reported sums against
///    substation-metered totals; the delta is non-technical loss.
/// 2. **Power quality** — per-feeder voltage min/max/mean rollups with
///    sag/swell classification against the ±10 % band.
pub struct CityPipelines {
    plane: StreamPlane,
    config: CityConfig,
    states: Vec<(&'static str, SharedState)>,
}

impl CityPipelines {
    /// Deploys both pipelines on a fresh plane.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on plane construction failures.
    pub fn deploy(config: CityConfig) -> Result<Self, StreamError> {
        let mut plane = StreamPlane::new(&config.plane)?;
        plane.map_input(STREAM_READINGS, "grid/readings")?;
        plane.map_input(STREAM_FEEDER_TOTALS, "grid/totals")?;
        plane.map_input(STREAM_VOLTAGE, "grid/voltage")?;

        let storage = OperatorState::default_storage();
        let state =
            |name: &'static str| OperatorState::shared(name, config.geometry, storage.clone());

        // Meter-keyed usage: the operator whose key cardinality scales
        // with the city (10^5..10^6 accumulators per window).
        let meter_state = state("meter-usage");
        plane.register_operator(Box::new(WindowedAggregator::new(
            AggregatorConfig {
                name: "meter-usage".into(),
                input: "grid/readings".into(),
                output: "grid/meter_usage".into(),
                output_stream: STREAM_METER_USAGE,
                key_attr: ATTR_KEY.into(),
                windows: config.windows,
                flush_in: FLUSH_STAGE0.into(),
                flush_out: None,
            },
            meter_state.clone(),
        )));

        // The same readings re-keyed by feeder: customer-reported sums.
        // End-of-stream forwards *in-band* on the output topic, so the
        // marker can never overtake the flushed results under batched
        // delivery (see `crate::operator` docs).
        let reported_state = state("feeder-reported");
        plane.register_operator(Box::new(WindowedAggregator::new(
            AggregatorConfig {
                name: "feeder-reported".into(),
                input: "grid/readings".into(),
                output: "grid/feeder_reported".into(),
                output_stream: 20,
                key_attr: ATTR_FEEDER.into(),
                windows: config.windows,
                flush_in: FLUSH_STAGE0.into(),
                flush_out: Some("grid/feeder_reported".into()),
            },
            reported_state.clone(),
        )));

        // Substation totals: what the feeder actually delivered.
        let actual_state = state("feeder-actual");
        plane.register_operator(Box::new(WindowedAggregator::new(
            AggregatorConfig {
                name: "feeder-actual".into(),
                input: "grid/totals".into(),
                output: "grid/feeder_actual".into(),
                output_stream: 21,
                key_attr: ATTR_KEY.into(),
                windows: config.windows,
                flush_in: FLUSH_STAGE0.into(),
                flush_out: Some("grid/feeder_actual".into()),
            },
            actual_state.clone(),
        )));

        // reported ⋈ actual per (feeder, window): delta = unbilled loss.
        // A tumbling window of the upstream stride pairs upstream windows
        // one-to-one. The join closes on the upstreams' in-band markers;
        // FLUSH_STAGE1 remains wired as a manual override.
        let join_state = state("loss-join");
        plane.register_operator(Box::new(TwoStreamJoin::new(
            JoinConfig {
                name: "loss-join".into(),
                left: "grid/feeder_reported".into(),
                right: "grid/feeder_actual".into(),
                output: "grid/loss".into(),
                output_stream: STREAM_FEEDER_LOSS,
                windows: WindowSpec::tumbling(config.windows.stride_ms())?,
                flush_in: FLUSH_STAGE1.into(),
                flush_fan_in: 2,
                flush_out: None,
            },
            join_state.clone(),
        )));

        // Per-feeder voltage rollups for power quality.
        let quality_state = state("quality-rollup");
        plane.register_operator(Box::new(WindowedAggregator::new(
            AggregatorConfig {
                name: "quality-rollup".into(),
                input: "grid/voltage".into(),
                output: "grid/quality_rollup".into(),
                output_stream: STREAM_QUALITY,
                key_attr: ATTR_KEY.into(),
                windows: config.windows,
                flush_in: FLUSH_STAGE0.into(),
                flush_out: None,
            },
            quality_state.clone(),
        )));

        plane.collect_output(STREAM_METER_USAGE, "grid/meter_usage")?;
        plane.collect_output(STREAM_FEEDER_LOSS, "grid/loss")?;
        plane.collect_output(STREAM_QUALITY, "grid/quality_rollup")?;

        Ok(CityPipelines {
            plane,
            config,
            states: vec![
                ("meter-usage", meter_state),
                ("feeder-reported", reported_state),
                ("feeder-actual", actual_state),
                ("loss-join", join_state),
                ("quality-rollup", quality_state),
            ],
        })
    }

    /// Generates the city's traces, streams them through both pipelines in
    /// time-major order, flushes, and summarises the sink results.
    ///
    /// # Errors
    ///
    /// [`StreamError::Router`] on sealing/routing failures.
    pub fn run(&mut self) -> Result<CityRunReport, StreamError> {
        let spec = self.config.spec.clone();
        let samples = spec.samples();
        let interval_ms = spec.interval_secs.max(1) * 1_000;
        let mut theft_feeders = Vec::new();
        let mut feeders = Vec::with_capacity(spec.feeders);
        for feeder in 0..spec.feeders {
            let traces = spec.feeder_spec(feeder).generate();
            if traces.iter().any(|t| t.is_theft) {
                theft_feeders.push(feeder as u64);
            }
            let voltage = QualitySpec {
                samples,
                interval_ms,
                faults: self.config.faults_per_feeder,
                seed: mix_seed(spec.seed, 0x0700 + feeder as u64),
            }
            .generate();
            feeders.push((traces, voltage));
        }

        let mut batch: Vec<Publication> = Vec::with_capacity(self.config.ingest_batch);
        for sample in 0..samples {
            let t_ms = sample as u64 * interval_ms;
            for (feeder, (traces, voltage)) in feeders.iter().enumerate() {
                let feeder_id = feeder as u64;
                let mut actual_total = 0.0;
                for trace in traces {
                    let meter = feeder_id * spec.households_per_feeder as u64 + trace.meter;
                    actual_total += trace.actual[sample];
                    batch.push(
                        StreamEvent {
                            key: meter,
                            t_ms,
                            value: trace.reported[sample],
                        }
                        .publication(STREAM_READINGS)
                        .with(ATTR_FEEDER, Value::Int(feeder_id as i64)),
                    );
                    self.flush_batch_if_full(&mut batch)?;
                }
                batch.push(
                    StreamEvent {
                        key: feeder_id,
                        t_ms,
                        value: actual_total,
                    }
                    .publication(STREAM_FEEDER_TOTALS),
                );
                self.flush_batch_if_full(&mut batch)?;
                batch.push(
                    StreamEvent {
                        key: feeder_id,
                        t_ms,
                        value: voltage.samples[sample],
                    }
                    .publication(STREAM_VOLTAGE),
                );
                self.flush_batch_if_full(&mut batch)?;
            }
        }
        self.plane.ingest(&batch)?;
        batch.clear();
        self.plane.run_to_quiet()?;
        self.plane.flush(FLUSH_STAGE0)?;
        Ok(self.report(theft_feeders))
    }

    fn flush_batch_if_full(&mut self, batch: &mut Vec<Publication>) -> Result<(), StreamError> {
        if batch.len() >= self.config.ingest_batch {
            self.plane.ingest(batch)?;
            batch.clear();
            self.plane.run_to_quiet()?;
        }
        Ok(())
    }

    fn report(&self, theft_feeders: Vec<u64>) -> CityRunReport {
        let mut meter_results = 0;
        let mut loss_windows = 0;
        let mut sag_windows = 0;
        let mut swell_windows = 0;
        // feeder -> (sum of deltas, sum of actuals) over its windows.
        let mut loss_by_feeder: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
        for result in self.plane.results() {
            let int = |attr: &str| match result.attrs.get(attr) {
                Some(Value::Int(v)) => *v,
                _ => -1,
            };
            let float = |attr: &str| match result.attrs.get(attr) {
                Some(Value::Float(v)) => *v,
                _ => f64::NAN,
            };
            match int(ATTR_STREAM) {
                STREAM_METER_USAGE => meter_results += 1,
                STREAM_FEEDER_LOSS => {
                    loss_windows += 1;
                    let entry = loss_by_feeder
                        .entry(int(ATTR_KEY) as u64)
                        .or_insert((0.0, 0.0));
                    entry.0 += float(ATTR_VALUE);
                    entry.1 += float(ATTR_RIGHT);
                }
                STREAM_QUALITY => {
                    if float(ATTR_MIN) < 0.9 * NOMINAL_VOLTS {
                        sag_windows += 1;
                    }
                    if float(ATTR_MAX) > 1.1 * NOMINAL_VOLTS {
                        swell_windows += 1;
                    }
                }
                _ => {}
            }
        }
        let flagged_feeders = loss_by_feeder
            .iter()
            .filter(|(_, (delta, actual))| {
                *actual > 0.0 && delta / actual > self.config.theft_threshold
            })
            .map(|(feeder, _)| *feeder)
            .collect();
        CityRunReport {
            events_ingested: self.plane.events_ingested(),
            meter_results,
            loss_windows,
            flagged_feeders,
            theft_feeders,
            sag_windows,
            swell_windows,
            results_digest: results_digest(self.plane.results()),
        }
    }

    /// The underlying plane (results, router cycles).
    #[must_use]
    pub fn plane(&self) -> &StreamPlane {
        &self.plane
    }

    /// Summed stream counters across every operator.
    #[must_use]
    pub fn operator_metrics(&self) -> StateMetrics {
        let mut total = StateMetrics::default();
        for (_, state) in &self.states {
            let metrics = state.lock().metrics;
            total.events += metrics.events;
            total.results += metrics.results;
            total.late_dropped += metrics.late_dropped;
            total.malformed += metrics.malformed;
        }
        total
    }

    /// Summed simulated cycles across every operator's memory.
    #[must_use]
    pub fn operator_cycles(&self) -> u64 {
        self.states.iter().map(|(_, s)| s.lock().cycles()).sum()
    }

    /// Summed (EPC faults, host bytes read, host bytes written) across
    /// every operator's memory.
    #[must_use]
    pub fn operator_paging(&self) -> (u64, u64, u64) {
        let mut faults = 0;
        let mut reads = 0;
        let mut writes = 0;
        for (_, state) in &self.states {
            let stats = state.lock().mem_stats();
            faults += stats.epc_faults;
            reads += stats.host_read_bytes;
            writes += stats.host_write_bytes;
        }
        (faults, reads, writes)
    }

    /// Summed live state bytes across every operator.
    #[must_use]
    pub fn state_bytes(&self) -> u64 {
        self.states
            .iter()
            .map(|(_, s)| s.lock().state_bytes())
            .sum()
    }

    /// Summed high-water state bytes across every operator (closed windows
    /// drain, so this — not the final residue — is what pressed the EPC).
    #[must_use]
    pub fn peak_state_bytes(&self) -> u64 {
        self.states
            .iter()
            .map(|(_, s)| s.lock().peak_state_bytes())
            .sum()
    }

    /// The meter-keyed operator's state handle (the EPC-pressure witness).
    #[must_use]
    pub fn meter_state(&self) -> &SharedState {
        &self.states[0].1
    }
}

/// FNV-1a over every result's attributes in delivery order: equal digests
/// mean byte-identical streaming output.
#[must_use]
pub fn results_digest(results: &[Publication]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for result in results {
        for (attr, value) in &result.attrs {
            eat(attr.as_bytes());
            match value {
                Value::Int(v) => eat(&v.to_le_bytes()),
                Value::Float(v) => eat(&v.to_bits().to_le_bytes()),
                Value::Str(v) => eat(v.as_bytes()),
            }
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_round_trips_events_through_router_and_operators() {
        let mut plane = StreamPlane::new(&PlaneConfig::default()).unwrap();
        plane.map_input(1, "in").unwrap();
        let state = OperatorState::shared(
            "sum",
            MemoryGeometry::sgx_v1(),
            OperatorState::default_storage(),
        );
        plane.register_operator(Box::new(WindowedAggregator::new(
            AggregatorConfig {
                name: "sum".into(),
                input: "in".into(),
                output: "out".into(),
                output_stream: 10,
                key_attr: ATTR_KEY.into(),
                windows: WindowSpec::tumbling(60_000).unwrap(),
                flush_in: FLUSH_STAGE0.into(),
                flush_out: None,
            },
            state,
        )));
        plane.collect_output(10, "out").unwrap();
        let events: Vec<Publication> = [(1u64, 1_000u64, 2.0), (1, 2_000, 3.0), (2, 2_500, 7.0)]
            .iter()
            .map(|&(key, t_ms, value)| StreamEvent { key, t_ms, value }.publication(1))
            .collect();
        plane.ingest(&events).unwrap();
        plane.run_to_quiet().unwrap();
        assert!(plane.results().is_empty(), "windows still open");
        plane.flush(FLUSH_STAGE0).unwrap();
        let results = plane.results();
        assert_eq!(results.len(), 2, "one result per key");
        assert!(plane.router_cycles() > 0, "router work is charged");
        let sums: Vec<f64> = results
            .iter()
            .map(|r| match r.attrs[ATTR_VALUE] {
                Value::Float(v) => v,
                _ => panic!("float"),
            })
            .collect();
        assert_eq!(sums, vec![5.0, 7.0]);
        // Results crossed the sealed egress: digest is stable.
        assert_eq!(results_digest(results), results_digest(results));
    }

    #[test]
    fn unknown_stream_is_a_typed_error() {
        let mut plane = StreamPlane::new(&PlaneConfig::default()).unwrap();
        plane.map_input(1, "in").unwrap();
        // Subscribe the consumer to stream 2 as well, but add no route for
        // it: delivery must fail loudly, not drop silently.
        let sub = Subscription::new(vec![Predicate::new(ATTR_STREAM, Op::Eq, Value::Int(2))]);
        let sealed = plane.consumer.seal_subscription(&sub).unwrap();
        plane
            .router
            .subscribe_sealed(plane.consumer_id, &sealed)
            .unwrap();
        let event = StreamEvent {
            key: 1,
            t_ms: 0,
            value: 1.0,
        }
        .publication(2);
        let err = plane.ingest(&[event]).unwrap_err();
        assert!(matches!(err, StreamError::UnknownStream(2)));
    }

    #[test]
    fn city_pipelines_detect_theft_and_quality_deterministically() {
        let config = CityConfig {
            spec: CitySpec {
                feeders: 3,
                households_per_feeder: 6,
                interval_secs: 300,
                duration_secs: 3_600,
                theft_fraction: 0.5,
                theft_scale: 0.3,
                seed: 21,
            },
            windows: WindowSpec::tumbling(900_000).unwrap(),
            ..CityConfig::default()
        };
        let mut first = CityPipelines::deploy(config.clone()).unwrap();
        let report = first.run().unwrap();
        assert_eq!(report.events_ingested as usize, (18 + 3 + 3) * 12);
        assert!(report.meter_results > 0, "per-meter rollups flowed");
        assert!(report.loss_windows > 0, "join produced loss windows");
        assert_eq!(
            report.flagged_feeders, report.theft_feeders,
            "loss fractions flag exactly the feeders with thieves"
        );
        assert!(first.operator_cycles() > 0);
        // Same seed, second deployment: byte-identical results.
        let mut second = CityPipelines::deploy(config).unwrap();
        let again = second.run().unwrap();
        assert_eq!(again, report, "equal-seed runs are identical");
    }

    #[test]
    fn final_window_survives_batched_delivery() {
        // Regression: one trace-spanning window, more feeders than the
        // delivery batch — every loss window closes via the end-of-stream
        // cascade, which must not overtake upstream results still queued.
        let config = CityConfig {
            spec: CitySpec {
                feeders: 6,
                households_per_feeder: 4,
                interval_secs: 600,
                duration_secs: 3_600,
                theft_fraction: 0.5,
                theft_scale: 0.3,
                seed: 33,
            },
            windows: WindowSpec::tumbling(3_600_000).unwrap(),
            plane: PlaneConfig {
                delivery_batch: 4,
                ..PlaneConfig::default()
            },
            ..CityConfig::default()
        };
        let mut pipelines = CityPipelines::deploy(config).unwrap();
        let report = pipelines.run().unwrap();
        assert_eq!(report.loss_windows, 6, "one loss window per feeder");
        assert_eq!(report.flagged_feeders, report.theft_feeders);
        assert_eq!(pipelines.operator_metrics().late_dropped, 0);
    }
}
