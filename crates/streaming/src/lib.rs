//! Streaming analytics over the switchless messaging plane.
//!
//! The paper's smart-grid use cases (§VI) are continuous computations —
//! theft detection and power-quality monitoring never see "the whole
//! dataset", they see an unbounded stream of sealed meter readings. This
//! crate adds the missing layer: enclave-resident windowed operators that
//! run as [`MicroService`]s over the batched EventBus, fed by sealed SCBR
//! batch frames and drained back out through the secure router.
//!
//! * [`window`] — tumbling/sliding window specs with deterministic
//!   event-time assignment and watermark-driven closing,
//! * [`state`] — operator state in the tiered [`SecureKv`] so key
//!   cardinality can exceed the EPC, every access charged to the
//!   operator's [`MemorySim`],
//! * [`operator`] — keyed windowed aggregation as a micro-service,
//! * [`join`] — a two-stream windowed inner join with per-lane watermarks,
//! * [`pipeline`] — the [`StreamPlane`] gluing SCBR ingress/egress to the
//!   service host, plus the city-scale smart-grid pipelines (real-time
//!   theft detection and per-feeder power-quality rollups).
//!
//! Determinism contract: results are a pure function of the sealed input
//! events (timestamps ride inside the AEAD frames next to the trace
//! context), so equal-seed runs are byte-identical at any worker count.
//!
//! [`MicroService`]: securecloud_eventbus::service::MicroService
//! [`SecureKv`]: securecloud_kvstore::SecureKv
//! [`MemorySim`]: securecloud_sgx::mem::MemorySim
//! [`StreamPlane`]: pipeline::StreamPlane

use std::error::Error as StdError;
use std::fmt;

use securecloud_scbr::ScbrError;

pub mod join;
pub mod operator;
pub mod pipeline;
pub mod state;
pub mod window;

pub use join::{JoinConfig, TwoStreamJoin};
pub use operator::{AggregatorConfig, StreamEvent, WindowedAggregator};
pub use pipeline::{CityPipelines, CitySpec, StreamPlane};
pub use state::{Aggregate, OperatorState, SharedState};
pub use window::WindowSpec;

/// Errors from the streaming layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// A window specification was rejected at construction.
    InvalidWindow(&'static str),
    /// An event was missing or mistyped a required attribute.
    MalformedEvent(&'static str),
    /// Operator state decoded to something other than what was written
    /// (host tampering with sealed state surfaces here, not as a panic).
    CorruptState(&'static str),
    /// A routed publication named a stream no pipeline registered.
    UnknownStream(i64),
    /// The secure router rejected a sealed exchange.
    Router(ScbrError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvalidWindow(why) => write!(f, "invalid window spec: {why}"),
            StreamError::MalformedEvent(why) => write!(f, "malformed stream event: {why}"),
            StreamError::CorruptState(why) => write!(f, "corrupt operator state: {why}"),
            StreamError::UnknownStream(id) => write!(f, "no route for stream {id}"),
            StreamError::Router(e) => write!(f, "secure router: {e}"),
        }
    }
}

impl StdError for StreamError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            StreamError::Router(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScbrError> for StreamError {
    fn from(e: ScbrError) -> Self {
        StreamError::Router(e)
    }
}
