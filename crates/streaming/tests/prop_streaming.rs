//! Property tests for window assignment and arrival-order determinism.

use proptest::prelude::*;
use securecloud_eventbus::service::ServiceHost;
use securecloud_scbr::types::Value;
use securecloud_sgx::costs::MemoryGeometry;
use securecloud_streaming::operator::{
    AggregatorConfig, StreamEvent, WindowedAggregator, ATTR_KEY,
};
use securecloud_streaming::pipeline::results_digest;
use securecloud_streaming::state::OperatorState;
use securecloud_streaming::window::WindowSpec;

proptest! {
    /// Every timestamp — including exact window boundaries — lands in
    /// exactly one tumbling window, and that window contains it.
    #[test]
    fn tumbling_assignment_is_a_partition(
        size in 1u64..100_000,
        t in 0u64..10_000_000,
    ) {
        let spec = WindowSpec::tumbling(size).unwrap();
        let starts = spec.assign(t);
        prop_assert_eq!(starts.len(), 1, "tumbling: exactly one window");
        let start = starts[0];
        prop_assert!(start <= t && t < spec.end_ms(start), "window contains t");
        prop_assert_eq!(start % size, 0, "window starts are aligned");
        // The boundary itself belongs to the *next* window, never both.
        let boundary = spec.assign(spec.end_ms(start));
        prop_assert_eq!(boundary, vec![spec.end_ms(start)]);
    }

    /// A sliding window holds each event in exactly `size / stride`
    /// overlapping windows (fewer near the time origin), every one
    /// stride-aligned, containing the event, and consecutive windows
    /// overlap by `size - stride`.
    #[test]
    fn sliding_assignment_overlaps_by_stride(
        stride in 1u64..5_000,
        factor in 1u64..8,
        t in 0u64..10_000_000,
    ) {
        let size = stride * factor;
        let spec = WindowSpec::sliding(size, stride).unwrap();
        let starts = spec.assign(t);
        let expected = (factor).min(t / stride + 1) as usize;
        prop_assert_eq!(starts.len(), expected, "overlap count = size/stride");
        for pair in starts.windows(2) {
            prop_assert_eq!(pair[1] - pair[0], stride, "consecutive starts differ by stride");
        }
        for &start in &starts {
            prop_assert_eq!(start % stride, 0);
            prop_assert!(start <= t && t < spec.end_ms(start));
        }
    }

    /// Window assignment is a pure function of the timestamp: events
    /// arriving out of order — within the allowed lateness — produce
    /// byte-identical aggregation results in any arrival order.
    #[test]
    fn out_of_order_within_lateness_is_arrival_order_invariant(
        size in 1u64..2_000,
        keys in prop::collection::vec(0u64..8, 2..40),
        jitters in prop::collection::vec(0u64..5_000, 2..40),
        values in prop::collection::vec(-100i64..100, 2..40),
    ) {
        let n = keys.len().min(jitters.len()).min(values.len());
        // Spread timestamps over several windows, but keep the whole
        // span within the allowed lateness so no arrival order can make
        // any event late.
        let lateness = 5_000u64;
        let spec = WindowSpec::tumbling(size).unwrap().with_lateness(lateness);
        let events: Vec<StreamEvent> = (0..n)
            .map(|i| StreamEvent {
                key: keys[i],
                t_ms: jitters[i],
                value: values[i] as f64,
            })
            .collect();
        let run = |ordered: &[StreamEvent]| {
            let state = OperatorState::shared(
                "prop",
                MemoryGeometry::sgx_v1(),
                OperatorState::default_storage(),
            );
            let mut host = ServiceHost::new(60_000);
            host.register(Box::new(WindowedAggregator::new(
                AggregatorConfig {
                    name: "prop".into(),
                    input: "in".into(),
                    output: "out".into(),
                    output_stream: 1,
                    key_attr: ATTR_KEY.into(),
                    windows: spec,
                    flush_in: "flush".into(),
                    flush_out: None,
                },
                state.clone(),
            )));
            let results = host.bus_mut().subscribe("out", None);
            for event in ordered {
                host.bus_mut().publish("in", Vec::new(), event.publication(1));
            }
            host.pump_switchless(10_000);
            host.bus_mut()
                .publish("flush", Vec::new(), securecloud_scbr::types::Publication::new());
            host.pump_switchless(10_000);
            let out: Vec<_> = host
                .bus_mut()
                .fetch_batch(results, 4 * n)
                .into_iter()
                .map(|m| m.attributes)
                .collect();
            let dropped = state.lock().metrics.late_dropped;
            (results_digest(&out), out.len(), dropped)
        };
        // Arrival order A: as generated. Arrival order B: reversed —
        // maximally out of order relative to A.
        let mut reversed = events.clone();
        reversed.reverse();
        let (digest_a, len_a, dropped_a) = run(&events);
        let (digest_b, len_b, dropped_b) = run(&reversed);
        prop_assert_eq!(dropped_a, 0, "span within lateness: nothing late");
        prop_assert_eq!(dropped_b, 0);
        prop_assert_eq!(len_a, len_b);
        prop_assert_eq!(digest_a, digest_b, "results independent of arrival order");
        // And a sorted (fully in-order) arrival gives the same bytes too.
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| (e.t_ms, e.key, e.value.to_bits()));
        let (digest_c, _, _) = run(&sorted);
        prop_assert_eq!(digest_a, digest_c);
    }

    /// The lateness bound itself is deterministic: an event is admitted
    /// iff its youngest window is still open, regardless of how the
    /// watermark got there.
    #[test]
    fn lateness_boundary_is_exact(
        size in 1u64..10_000,
        lateness in 0u64..10_000,
        t in 0u64..1_000_000,
    ) {
        let spec = WindowSpec::tumbling(size).unwrap().with_lateness(lateness);
        let youngest = (t / size) * size;
        let closes_at = youngest + size + lateness;
        prop_assert!(!spec.is_late(t, closes_at.saturating_sub(1)));
        prop_assert!(spec.is_late(t, closes_at));
    }
}

/// Sliding-window aggregation counts every event `size / stride` times
/// once windows are far from the origin — the overlap is visible in the
/// emitted per-window counts.
#[test]
fn sliding_counts_reflect_overlap() {
    let spec = WindowSpec::sliding(200, 100).unwrap();
    let state = OperatorState::shared(
        "overlap",
        MemoryGeometry::sgx_v1(),
        OperatorState::default_storage(),
    );
    let mut host = ServiceHost::new(60_000);
    host.register(Box::new(WindowedAggregator::new(
        AggregatorConfig {
            name: "overlap".into(),
            input: "in".into(),
            output: "out".into(),
            output_stream: 1,
            key_attr: ATTR_KEY.into(),
            windows: spec,
            flush_in: "flush".into(),
            flush_out: None,
        },
        state,
    )));
    let results = host.bus_mut().subscribe("out", None);
    // One event per 50 ms in [200, 400): away from the origin, each lives
    // in exactly two windows.
    for i in 0..4u64 {
        let event = StreamEvent {
            key: 1,
            t_ms: 200 + i * 50,
            value: 1.0,
        };
        host.bus_mut()
            .publish("in", Vec::new(), event.publication(1));
    }
    host.pump_switchless(10_000);
    host.bus_mut().publish(
        "flush",
        Vec::new(),
        securecloud_scbr::types::Publication::new(),
    );
    host.pump_switchless(10_000);
    let out = host.bus_mut().fetch_batch(results, 64);
    let total: i64 = out
        .iter()
        .map(|m| match m.attributes.attrs["n"] {
            Value::Int(n) => n,
            _ => panic!("int count"),
        })
        .sum();
    assert_eq!(
        total, 8,
        "4 events x 2 overlapping windows = 8 window memberships"
    );
}
