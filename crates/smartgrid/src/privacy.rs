//! The privacy attack that motivates SecureCloud (§VI, reference 15):
//! fine-grained meter data reveals household activities. This module
//! implements an appliance-inference attack (kettle detection by edge
//! analysis) and demonstrates that it works on plaintext readings but
//! yields nothing on sealed payloads.

use securecloud_crypto::gcm::AesGcm;

/// Rising-edge threshold for a kettle (watts).
const KETTLE_EDGE_WATTS: f64 = 1500.0;

/// Infers kettle-use sample indices from a power series by edge detection.
#[must_use]
pub fn infer_kettle_events(watts: &[f64]) -> Vec<usize> {
    let mut events = Vec::new();
    let mut armed = true;
    for i in 1..watts.len() {
        let delta = watts[i] - watts[i - 1];
        if armed && delta > KETTLE_EDGE_WATTS {
            events.push(i);
            armed = false;
        } else if delta < -KETTLE_EDGE_WATTS / 2.0 {
            armed = true;
        }
    }
    events
}

/// Attack quality against ground truth, with a +-`tolerance` sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackScore {
    /// Fraction of inferred events that match a true event.
    pub precision: f64,
    /// Fraction of true events that were inferred.
    pub recall: f64,
    /// Number of inferred events.
    pub inferred: usize,
}

/// Scores inferred events against ground truth.
#[must_use]
pub fn score_attack(inferred: &[usize], truth: &[usize], tolerance: usize) -> AttackScore {
    let matches =
        |candidate: usize, list: &[usize]| list.iter().any(|&t| candidate.abs_diff(t) <= tolerance);
    let true_positives = inferred.iter().filter(|&&i| matches(i, truth)).count();
    let recalled = truth.iter().filter(|&&t| matches(t, inferred)).count();
    AttackScore {
        precision: if inferred.is_empty() {
            0.0
        } else {
            true_positives as f64 / inferred.len() as f64
        },
        recall: if truth.is_empty() {
            0.0
        } else {
            recalled as f64 / truth.len() as f64
        },
        inferred: inferred.len(),
    }
}

/// What a cloud-level adversary can do with a *sealed* reading stream:
/// interpret the ciphertext bytes as a power series and run the same
/// attack. Returns the inferred events (which carry no signal).
#[must_use]
pub fn attack_sealed_payload(key_unknown_to_attacker: &[u8; 16], watts: &[f64]) -> Vec<usize> {
    // The readings are sealed before leaving the enclave...
    let mut plain = Vec::with_capacity(watts.len() * 8);
    for w in watts {
        plain.extend_from_slice(&w.to_le_bytes());
    }
    let sealed = AesGcm::new(key_unknown_to_attacker).seal(&[9u8; 12], &plain, b"");
    // ...and the attacker reinterprets what it can see as f64 samples,
    // clamping the wild values an f64-reinterpretation produces.
    let series: Vec<f64> = sealed
        .chunks_exact(8)
        .map(|c| {
            let v = f64::from_le_bytes(c.try_into().expect("chunked"));
            if v.is_finite() {
                v.abs().min(10_000.0)
            } else {
                0.0
            }
        })
        .collect();
    infer_kettle_events(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meters::GridSpec;

    fn trace_with_kettles() -> (Vec<f64>, Vec<usize>) {
        let traces = GridSpec {
            households: 60,
            duration_secs: 24 * 3600,
            interval_secs: 30,
            theft_fraction: 0.0,
            ..GridSpec::default()
        }
        .generate();
        let t = traces
            .iter()
            .filter(|t| t.kettle_events.len() >= 3)
            .max_by_key(|t| t.kettle_events.len())
            .expect("a kettle-heavy household")
            .clone();
        (t.actual, t.kettle_events)
    }

    #[test]
    fn attack_succeeds_on_plaintext() {
        let (watts, truth) = trace_with_kettles();
        let inferred = infer_kettle_events(&watts);
        let score = score_attack(&inferred, &truth, 2);
        assert!(
            score.recall >= 0.7,
            "plaintext attack should recover most kettle uses, recall={}",
            score.recall
        );
        assert!(
            score.precision >= 0.5,
            "plaintext attack should be precise, precision={}",
            score.precision
        );
    }

    #[test]
    fn attack_fails_on_sealed_payloads() {
        let (watts, truth) = trace_with_kettles();
        let key: [u8; 16] = securecloud_crypto::random_array();
        let inferred = attack_sealed_payload(&key, &watts);
        let score = score_attack(&inferred, &truth, 2);
        // Ciphertext carries no appliance signal: precision collapses to
        // chance level (events found, if any, do not line up with truth).
        assert!(
            score.precision < 0.3,
            "sealed attack should not be precise, precision={}",
            score.precision
        );
    }

    #[test]
    fn edge_detector_basics() {
        let mut series = vec![100.0; 20];
        series[5] = 2200.0;
        series[6] = 2200.0;
        series[7] = 100.0;
        let events = infer_kettle_events(&series);
        assert_eq!(events, vec![5]);
        // No re-trigger while high; re-arms after the fall.
        let mut series2 = vec![100.0; 30];
        for i in [5, 6].iter() {
            series2[*i] = 2200.0;
        }
        for i in [15, 16].iter() {
            series2[*i] = 2300.0;
        }
        assert_eq!(infer_kettle_events(&series2), vec![5, 15]);
    }

    #[test]
    fn score_edge_cases() {
        let s = score_attack(&[], &[1, 2], 1);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        let s = score_attack(&[5], &[], 1);
        assert_eq!(s.recall, 0.0);
        let s = score_attack(&[5, 9], &[4, 9], 1);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }
}
