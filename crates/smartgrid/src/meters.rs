//! Synthetic smart-meter traces.
//!
//! The paper's first use case collects "detailed power consumption data
//! from residential and industrial consumers ... at sub-minute
//! granularities" (§VI). No real traces ship with this reproduction (they
//! are exactly the privacy-sensitive data the project is about), so this
//! module synthesises households from appliance models: a stochastic
//! baseline, a duty-cycling fridge, diurnal heating, and short high-power
//! events (kettle) plus long medium-power events (washing machine). The
//! appliance structure is what both the analytics and the privacy attack
//! (§VI, reference 15 of the paper) exercise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One meter reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterReading {
    /// Meter identifier.
    pub meter: u64,
    /// Seconds since trace start.
    pub t: u64,
    /// Reported power draw in watts.
    pub watts: f64,
}

/// A full per-household trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterTrace {
    /// Meter identifier.
    pub meter: u64,
    /// True consumption per sample, watts.
    pub actual: Vec<f64>,
    /// Reported consumption per sample (differs under theft), watts.
    pub reported: Vec<f64>,
    /// Whether this household under-reports (energy theft).
    pub is_theft: bool,
    /// Sample times of kettle events (for privacy-attack ground truth).
    pub kettle_events: Vec<usize>,
}

/// Grid / trace generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Number of households on the feeder.
    pub households: usize,
    /// Sampling interval, seconds (sub-minute per the paper).
    pub interval_secs: u64,
    /// Trace duration, seconds.
    pub duration_secs: u64,
    /// Fraction of households committing theft.
    pub theft_fraction: f64,
    /// Thieves report `theft_scale` of their true consumption.
    pub theft_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            households: 100,
            interval_secs: 30,
            duration_secs: 24 * 3600,
            theft_fraction: 0.05,
            theft_scale: 0.4,
            seed: 7,
        }
    }
}

impl GridSpec {
    /// Samples per trace. A zero sampling interval is clamped to one
    /// second, the same guard the appliance models apply below — sweep
    /// configs with a degenerate interval degrade instead of panicking.
    #[must_use]
    pub fn samples(&self) -> usize {
        (self.duration_secs / self.interval_secs.max(1)) as usize
    }

    /// Generates every household trace, deterministically.
    #[must_use]
    pub fn generate(&self) -> Vec<MeterTrace> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samples = self.samples();
        (0..self.households)
            .map(|meter| {
                let is_theft = rng.gen_bool(self.theft_fraction);
                let household = Household::sample(&mut rng);
                let mut actual = Vec::with_capacity(samples);
                let mut kettle_events = Vec::new();
                let mut kettle_left = 0usize;
                let mut wash_left = 0usize;
                for i in 0..samples {
                    let t = i as u64 * self.interval_secs;
                    let mut watts = household.baseline + rng.gen_range(-10.0..10.0);
                    // Fridge duty cycle: on for a third of its period.
                    let phase = (t + household.fridge_phase) % household.fridge_period;
                    if phase < household.fridge_period / 3 {
                        watts += 140.0;
                    }
                    // Diurnal heating: peaks in the evening.
                    let hour = (t / 3600) % 24;
                    let diurnal = (std::f64::consts::PI * (hour as f64 - 6.0) / 12.0)
                        .sin()
                        .max(0.0);
                    watts += household.heating_watts * diurnal;
                    // Kettle: rare, short, 2 kW.
                    if kettle_left > 0 {
                        kettle_left -= 1;
                        watts += 2000.0;
                    } else if rng.gen_bool(household.kettle_rate) {
                        kettle_left = (180 / self.interval_secs.max(1)) as usize;
                        kettle_events.push(i);
                        watts += 2000.0;
                    }
                    // Washing machine: rarer, long, 500 W.
                    if wash_left > 0 {
                        wash_left -= 1;
                        watts += 500.0;
                    } else if rng.gen_bool(0.0005) {
                        wash_left = (3600 / self.interval_secs.max(1)) as usize;
                        watts += 500.0;
                    }
                    actual.push(watts.max(0.0));
                }
                let reported = if is_theft {
                    actual.iter().map(|w| w * self.theft_scale).collect()
                } else {
                    actual.clone()
                };
                MeterTrace {
                    meter: meter as u64,
                    actual,
                    reported,
                    is_theft,
                    kettle_events,
                }
            })
            .collect()
    }

    /// The feeder-level totals: what the distribution operator measures at
    /// the substation (always the *actual* consumption).
    #[must_use]
    pub fn feeder_totals(traces: &[MeterTrace]) -> Vec<f64> {
        let samples = traces.first().map_or(0, |t| t.actual.len());
        (0..samples)
            .map(|i| traces.iter().map(|t| t.actual[i]).sum())
            .collect()
    }
}

#[derive(Debug)]
struct Household {
    baseline: f64,
    fridge_period: u64,
    fridge_phase: u64,
    heating_watts: f64,
    kettle_rate: f64,
}

impl Household {
    fn sample(rng: &mut StdRng) -> Self {
        Household {
            baseline: rng.gen_range(40.0..160.0),
            fridge_period: rng.gen_range(1800..3600),
            fridge_phase: rng.gen_range(0..3600),
            heating_watts: rng.gen_range(200.0..1200.0),
            kettle_rate: rng.gen_range(0.001..0.004),
        }
    }
}

/// Flattens traces into a reading stream ordered by time then meter.
#[must_use]
pub fn reading_stream(traces: &[MeterTrace], interval_secs: u64) -> Vec<MeterReading> {
    let samples = traces.first().map_or(0, |t| t.reported.len());
    let mut out = Vec::with_capacity(samples * traces.len());
    for i in 0..samples {
        for trace in traces {
            out.push(MeterReading {
                meter: trace.meter,
                t: i as u64 * interval_secs,
                watts: trace.reported[i],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GridSpec {
        GridSpec {
            households: 20,
            duration_secs: 6 * 3600,
            ..GridSpec::default()
        }
    }

    #[test]
    fn deterministic_and_sized() {
        let spec = small();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for trace in &a {
            assert_eq!(trace.actual.len(), spec.samples());
            assert_eq!(trace.reported.len(), spec.samples());
        }
    }

    #[test]
    fn consumption_is_plausible() {
        let traces = small().generate();
        for trace in &traces {
            let mean = trace.actual.iter().sum::<f64>() / trace.actual.len() as f64;
            assert!(mean > 30.0 && mean < 3000.0, "household mean {mean} W");
            assert!(trace.actual.iter().all(|&w| w >= 0.0));
            let peak = trace.actual.iter().cloned().fold(0.0, f64::max);
            assert!(peak < 6000.0, "household peak {peak} W");
        }
    }

    #[test]
    fn theft_under_reports() {
        let spec = GridSpec {
            theft_fraction: 0.5,
            ..small()
        };
        let traces = spec.generate();
        let thieves: Vec<_> = traces.iter().filter(|t| t.is_theft).collect();
        assert!(!thieves.is_empty());
        for thief in thieves {
            for (a, r) in thief.actual.iter().zip(&thief.reported) {
                assert!((r - a * spec.theft_scale).abs() < 1e-9);
            }
        }
        for honest in traces.iter().filter(|t| !t.is_theft) {
            assert_eq!(honest.actual, honest.reported);
        }
    }

    #[test]
    fn feeder_totals_are_sums_of_actuals() {
        let traces = small().generate();
        let totals = GridSpec::feeder_totals(&traces);
        assert_eq!(totals.len(), small().samples());
        let expected: f64 = traces.iter().map(|t| t.actual[0]).sum();
        assert!((totals[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn kettle_events_recorded_with_spikes() {
        let traces = GridSpec {
            households: 50,
            ..small()
        }
        .generate();
        let with_kettle = traces.iter().find(|t| !t.kettle_events.is_empty());
        let trace = with_kettle.expect("some household used a kettle");
        for &i in &trace.kettle_events {
            assert!(
                trace.actual[i] > 1800.0,
                "kettle event sample {i} should spike"
            );
        }
    }

    #[test]
    fn zero_interval_spec_does_not_panic() {
        // Regression: `samples()` divided by `interval_secs` unguarded, so
        // a sweep config with a zero interval panicked before generating a
        // single trace. It now clamps to one-second sampling.
        let spec = GridSpec {
            interval_secs: 0,
            duration_secs: 120,
            households: 2,
            ..GridSpec::default()
        };
        assert_eq!(spec.samples(), 120);
        let traces = spec.generate();
        assert_eq!(traces.len(), 2);
        for trace in &traces {
            assert_eq!(trace.actual.len(), 120);
        }
    }

    #[test]
    fn stream_ordering() {
        let spec = GridSpec {
            households: 3,
            duration_secs: 120,
            interval_secs: 30,
            ..GridSpec::default()
        };
        let stream = reading_stream(&spec.generate(), spec.interval_secs);
        assert_eq!(stream.len(), 3 * 4);
        assert!(stream.windows(2).all(|w| w[0].t <= w[1].t));
    }
}
