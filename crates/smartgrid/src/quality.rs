//! Power-quality monitoring: the paper's second use case (§VI), where
//! "orchestration services detect anomalies within milliseconds".
//!
//! A feeder's voltage is sampled at high rate; faults are injected as sags
//! (voltage dips, e.g. a short circuit downstream) and swells. A streaming
//! detector classifies samples against the EN 50160-style ±10 % band and
//! reports detection latency — the basis of benchmark E7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nominal European line voltage.
pub const NOMINAL_VOLTS: f64 = 230.0;

/// A power-quality disturbance type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Voltage dip below 0.9 pu.
    Sag,
    /// Voltage rise above 1.1 pu.
    Swell,
}

/// An injected disturbance (ground truth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Kind of disturbance.
    pub kind: FaultKind,
    /// First affected sample.
    pub start: usize,
    /// Number of affected samples.
    pub len: usize,
    /// Magnitude in per-unit (e.g. 0.7 for a 30 % sag).
    pub per_unit: f64,
}

/// A generated voltage trace with ground-truth faults.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageTrace {
    /// Volts per sample.
    pub samples: Vec<f64>,
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Injected faults.
    pub faults: Vec<InjectedFault>,
}

/// Voltage trace generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QualitySpec {
    /// Number of samples.
    pub samples: usize,
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Expected number of faults over the trace.
    pub faults: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QualitySpec {
    fn default() -> Self {
        QualitySpec {
            samples: 60_000, // one minute at 1 kHz
            interval_ms: 1,
            faults: 10,
            seed: 3,
        }
    }
}

impl QualitySpec {
    /// Generates a voltage trace with injected sags/swells.
    #[must_use]
    pub fn generate(&self) -> VoltageTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| NOMINAL_VOLTS + rng.gen_range(-2.0..2.0))
            .collect();
        let mut faults = Vec::new();
        for _ in 0..self.faults {
            let kind = if rng.gen_bool(0.7) {
                FaultKind::Sag
            } else {
                FaultKind::Swell
            };
            let len = rng.gen_range(20..2000); // 20 ms .. 2 s at 1 kHz
            if self.samples <= len + 1 {
                continue;
            }
            let start = rng.gen_range(0..self.samples - len);
            let per_unit = match kind {
                FaultKind::Sag => rng.gen_range(0.4..0.85),
                FaultKind::Swell => rng.gen_range(1.15..1.4),
            };
            for s in &mut samples[start..start + len] {
                *s = NOMINAL_VOLTS * per_unit + rng.gen_range(-1.0..1.0);
            }
            faults.push(InjectedFault {
                kind,
                start,
                len,
                per_unit,
            });
        }
        faults.sort_by_key(|f| f.start);
        VoltageTrace {
            samples,
            interval_ms: self.interval_ms,
            faults,
        }
    }
}

/// A detected power-quality event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedEvent {
    /// Kind of disturbance.
    pub kind: FaultKind,
    /// Sample at which the detector fired.
    pub detected_at: usize,
    /// Voltage at detection.
    pub volts: f64,
}

/// Streaming sag/swell detector: fires after `confirm_samples` consecutive
/// out-of-band samples (debouncing measurement noise).
#[derive(Debug)]
pub struct QualityDetector {
    /// Lower bound of the healthy band, per-unit.
    pub low_pu: f64,
    /// Upper bound of the healthy band, per-unit.
    pub high_pu: f64,
    /// Consecutive out-of-band samples before firing.
    pub confirm_samples: usize,
    run: usize,
    current: Option<FaultKind>,
}

impl Default for QualityDetector {
    fn default() -> Self {
        QualityDetector {
            low_pu: 0.9,
            high_pu: 1.1,
            confirm_samples: 3,
            run: 0,
            current: None,
        }
    }
}

impl QualityDetector {
    /// Creates a detector with the EN 50160-style defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample; returns an event when a disturbance is confirmed.
    pub fn observe(&mut self, index: usize, volts: f64) -> Option<DetectedEvent> {
        let pu = volts / NOMINAL_VOLTS;
        let kind = if pu < self.low_pu {
            Some(FaultKind::Sag)
        } else if pu > self.high_pu {
            Some(FaultKind::Swell)
        } else {
            None
        };
        match kind {
            None => {
                self.run = 0;
                self.current = None;
                None
            }
            Some(k) => {
                if self.current == Some(k) {
                    // Already reported this ongoing event.
                    return None;
                }
                self.run += 1;
                if self.run >= self.confirm_samples {
                    self.run = 0;
                    self.current = Some(k);
                    Some(DetectedEvent {
                        kind: k,
                        detected_at: index,
                        volts,
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// Outcome of running the detector over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Events detected.
    pub events: Vec<DetectedEvent>,
    /// Latency in milliseconds for each matched ground-truth fault.
    pub latencies_ms: Vec<f64>,
    /// Ground-truth faults that were never detected.
    pub missed: usize,
    /// Detections with no matching ground-truth fault.
    pub false_positives: usize,
}

impl DetectionReport {
    /// Mean detection latency in milliseconds.
    #[must_use]
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }

    /// p99-ish latency (max over this sample size).
    #[must_use]
    pub fn max_latency_ms(&self) -> f64 {
        self.latencies_ms.iter().cloned().fold(f64::NAN, f64::max)
    }
}

/// Runs the detector over a trace and scores it against ground truth.
#[must_use]
pub fn run_detector(trace: &VoltageTrace, detector: &mut QualityDetector) -> DetectionReport {
    let mut events = Vec::new();
    for (i, &v) in trace.samples.iter().enumerate() {
        if let Some(event) = detector.observe(i, v) {
            events.push(event);
        }
    }
    let mut latencies = Vec::new();
    let mut matched = vec![false; events.len()];
    let mut missed = 0;
    for fault in &trace.faults {
        let window = fault.start..fault.start + fault.len;
        match events
            .iter()
            .enumerate()
            .find(|(i, e)| !matched[*i] && window.contains(&e.detected_at) && e.kind == fault.kind)
        {
            Some((i, event)) => {
                matched[i] = true;
                latencies.push((event.detected_at - fault.start) as f64 * trace.interval_ms as f64);
            }
            None => missed += 1,
        }
    }
    let false_positives = matched.iter().filter(|&&m| !m).count();
    DetectionReport {
        events,
        latencies_ms: latencies,
        missed,
        false_positives,
    }
}

/// Topic on which raw voltage samples are published.
pub const VOLTAGE_TOPIC: &str = "grid/voltage";
/// Topic on which confirmed power-quality events are published.
pub const PQ_EVENTS_TOPIC: &str = "grid/pq-events";

/// The power-quality monitor as a bus micro-service: consumes voltage
/// samples, emits confirmed sag/swell events (which the orchestrator or a
/// protection service can act on).
#[derive(Debug, Default)]
pub struct QualityMonitorService {
    detector: QualityDetector,
    samples_seen: usize,
    events_emitted: usize,
}

impl QualityMonitorService {
    /// Creates the service with default detector thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events emitted so far.
    #[must_use]
    pub fn events_emitted(&self) -> usize {
        self.events_emitted
    }
}

impl securecloud_eventbus::service::MicroService for QualityMonitorService {
    fn name(&self) -> &str {
        "pq-monitor"
    }

    fn subscriptions(&self) -> Vec<(String, Option<securecloud_scbr::types::Subscription>)> {
        vec![(VOLTAGE_TOPIC.to_string(), None)]
    }

    fn handle(
        &mut self,
        message: &securecloud_eventbus::bus::Message,
        ctx: &mut securecloud_eventbus::service::ServiceCtx,
    ) {
        use securecloud_scbr::types::{Publication, Value};
        let Some(Value::Float(volts)) = message.attributes.attrs.get("volts") else {
            return;
        };
        let index = self.samples_seen;
        self.samples_seen += 1;
        if let Some(event) = self.detector.observe(index, *volts) {
            self.events_emitted += 1;
            let kind = match event.kind {
                FaultKind::Sag => "sag",
                FaultKind::Swell => "swell",
            };
            ctx.emit(
                PQ_EVENTS_TOPIC,
                format!("{kind} at sample {index}: {volts:.1} V").into_bytes(),
                Publication::new()
                    .with("kind", Value::Str(kind.to_string()))
                    .with("sample", Value::Int(index as i64))
                    .with("volts", Value::Float(*volts)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_injects_requested_faults() {
        let trace = QualitySpec::default().generate();
        assert_eq!(trace.samples.len(), 60_000);
        assert!(!trace.faults.is_empty());
        for fault in &trace.faults {
            let mid = trace.samples[fault.start + fault.len / 2];
            match fault.kind {
                FaultKind::Sag => assert!(mid < 0.9 * NOMINAL_VOLTS * 1.02),
                FaultKind::Swell => assert!(mid > 1.1 * NOMINAL_VOLTS * 0.98),
            }
        }
    }

    #[test]
    fn detector_fires_within_milliseconds() {
        let trace = QualitySpec::default().generate();
        let report = run_detector(&trace, &mut QualityDetector::new());
        assert!(!report.latencies_ms.is_empty(), "no faults detected at all");
        // "within milliseconds": confirm_samples=3 at 1 kHz → ~2-3 ms.
        assert!(
            report.mean_latency_ms() < 10.0,
            "mean latency {} ms",
            report.mean_latency_ms()
        );
        assert!(report.missed <= trace.faults.len() / 4);
    }

    #[test]
    fn healthy_trace_has_no_events() {
        let trace = QualitySpec {
            faults: 0,
            samples: 5_000,
            ..QualitySpec::default()
        }
        .generate();
        let report = run_detector(&trace, &mut QualityDetector::new());
        assert!(report.events.is_empty());
        assert_eq!(report.false_positives, 0);
        assert!(report.mean_latency_ms().is_nan());
    }

    #[test]
    fn detector_debounces_single_spikes() {
        let mut detector = QualityDetector::new();
        // One noisy out-of-band sample: no event.
        assert!(detector.observe(0, 100.0).is_none());
        assert!(detector.observe(1, 230.0).is_none());
        // Three consecutive: event on the third.
        assert!(detector.observe(2, 100.0).is_none());
        assert!(detector.observe(3, 100.0).is_none());
        let event = detector.observe(4, 100.0).unwrap();
        assert_eq!(event.kind, FaultKind::Sag);
        assert_eq!(event.detected_at, 4);
        // Ongoing event is not re-reported.
        assert!(detector.observe(5, 100.0).is_none());
        // Recovery then a swell: new event.
        assert!(detector.observe(6, 230.0).is_none());
        for i in 7..9 {
            assert!(detector.observe(i, 280.0).is_none());
        }
        assert_eq!(detector.observe(9, 280.0).unwrap().kind, FaultKind::Swell);
    }

    #[test]
    fn quality_service_emits_events_on_bus() {
        use securecloud_eventbus::service::ServiceHost;
        use securecloud_scbr::types::{Publication, Value};
        let mut host = ServiceHost::new(1_000);
        host.register(Box::new(QualityMonitorService::new()));
        let alerts = host.bus_mut().subscribe(PQ_EVENTS_TOPIC, None);
        let trace = QualitySpec {
            samples: 3_000,
            faults: 3,
            seed: 5,
            ..QualitySpec::default()
        }
        .generate();
        for &v in &trace.samples {
            host.bus_mut().publish(
                VOLTAGE_TOPIC,
                Vec::new(),
                Publication::new().with("volts", Value::Float(v)),
            );
        }
        host.run_until_quiet(5_000);
        let events = host.bus_mut().backlog(alerts);
        assert!(
            events >= trace.faults.len().saturating_sub(1),
            "expected events for ~{} faults, saw {events}",
            trace.faults.len()
        );
        // Alerts are structured and decodable.
        let bus = host.bus_mut();
        let msg = bus.fetch(alerts).unwrap();
        assert!(msg.attributes.attrs.contains_key("kind"));
        assert!(msg.attributes.attrs.contains_key("sample"));
    }

    #[test]
    fn deterministic_generation() {
        let spec = QualitySpec::default();
        assert_eq!(spec.generate(), spec.generate());
    }
}
