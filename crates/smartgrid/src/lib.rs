//! Smart-grid applications of the SecureCloud platform (paper §VI).
//!
//! The paper validates its stack on smart-grid big-data use cases; this
//! crate implements them end to end on the workspace's substrates:
//!
//! * [`meters`] — synthetic household traces from appliance models
//!   (substitute for the private production data the paper uses),
//! * [`theft`] — power-theft (non-technical-loss) detection as a two-phase
//!   secure map/reduce pipeline,
//! * [`billing`] — time-of-use billing as a secure map/reduce job,
//! * [`quality`] — power-quality (sag/swell) monitoring with
//!   millisecond-scale detection latency,
//! * [`privacy`] — the appliance-inference attack that motivates
//!   encrypting meter data (works on plaintext, fails on sealed payloads),
//! * [`orchestration`] — the monitoring/orchestration service reacting to
//!   latency anomalies within one bus step,
//! * [`error`] — typed errors for the pipelines' wire-format decodes.

pub use error::SmartgridError;

pub mod billing;
pub mod error;
pub mod meters;
pub mod orchestration;
pub mod privacy;
pub mod quality;
pub mod theft;
