//! Power-theft detection (non-technical-loss analysis) as a secure
//! map/reduce pipeline — the paper's first use case (§VI): "sophisticated
//! applications, such as power theft prevention".
//!
//! Two phases over encrypted data inside enclaves:
//!
//! 1. **Loss series**: a map/reduce job aggregates the *reported* readings
//!    per time window; subtracting the sum from the feeder-level
//!    measurement yields the non-technical-loss series.
//! 2. **Suspicion scores**: a second job correlates each meter's reported
//!    series with the loss series — a thief's stolen energy is proportional
//!    to their consumption, so their reported profile co-moves with the
//!    loss.

use crate::error::{decode_f64, decode_u64, decode_window, SmartgridError};
use crate::meters::MeterTrace;
use securecloud_mapreduce::{FnMapper, FnReducer, JobConfig, MapReduceRunner};

/// A meter with its theft-suspicion score.
#[derive(Debug, Clone, PartialEq)]
pub struct Suspicion {
    /// Meter identifier.
    pub meter: u64,
    /// Pearson correlation of the meter's reported profile with the loss
    /// series (higher = more suspicious), NaN-free.
    pub score: f64,
}

/// Result of the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TheftReport {
    /// Total reported energy (kWh-equivalent sample sum).
    pub total_reported: f64,
    /// Total feeder energy.
    pub total_feeder: f64,
    /// Loss fraction (0..1).
    pub loss_fraction: f64,
    /// Meters ranked most-suspicious first.
    pub ranked: Vec<Suspicion>,
}

/// Normalises a series to zero mean, unit variance (z-scores).
fn zscore(series: &[f64]) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let sd = var.sqrt();
    if sd == 0.0 {
        return vec![0.0; n];
    }
    series.iter().map(|v| (v - mean) / sd).collect()
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let mean = |s: &[f64]| s[..n].iter().sum::<f64>() / n as f64;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Folds phase-1 reducer output (`be32` window key, `le f64` sum) into a
/// dense per-window series. The window index is decoded from reducer
/// bytes, so it is validated against the job's sample range — corrupted
/// or truncated shuffle output becomes a typed error, not an
/// out-of-bounds panic.
fn fold_window_sums<'a>(
    output: impl IntoIterator<Item = (&'a Vec<u8>, &'a Vec<u8>)>,
    samples: usize,
) -> Result<Vec<f64>, SmartgridError> {
    let mut totals = vec![0f64; samples];
    for (k, v) in output {
        let window = decode_window("window key", k)?;
        let slot = totals
            .get_mut(window)
            .ok_or(SmartgridError::WindowOutOfRange {
                window,
                windows: samples,
            })?;
        *slot = decode_f64("window sum", v)?;
    }
    Ok(totals)
}

/// Runs the two-phase detection pipeline.
///
/// `feeder_totals` is the substation measurement series (ground truth of
/// actual consumption); `traces` carry only the *reported* values into the
/// computation.
///
/// # Errors
///
/// [`SmartgridError::MapReduce`] from the underlying jobs, and
/// [`SmartgridError::MalformedRecord`] / [`SmartgridError::WindowOutOfRange`]
/// when reducer output does not decode as this pipeline's wire format —
/// truncated bytes or an out-of-range window index surface as typed errors
/// instead of panicking mid-aggregation.
pub fn detect_theft(
    runner: &MapReduceRunner,
    traces: &[MeterTrace],
    feeder_totals: &[f64],
) -> Result<TheftReport, SmartgridError> {
    let samples = traces.first().map_or(0, |t| t.reported.len());
    let config = JobConfig {
        mappers: 4,
        reducers: 4,
        max_retries: 1,
    };

    // ---- Phase 1: reported total per window.
    // Input record: (meter id, reported series as f64-LE bytes).
    let input: Vec<(Vec<u8>, Vec<u8>)> = traces
        .iter()
        .map(|t| {
            let mut bytes = Vec::with_capacity(t.reported.len() * 8);
            for w in &t.reported {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            (t.meter.to_le_bytes().to_vec(), bytes)
        })
        .collect();

    let sums = runner.run(
        &config,
        &input,
        &FnMapper(
            |_k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                for (window, chunk) in v.chunks_exact(8).enumerate() {
                    let watts = f64::from_le_bytes(chunk.try_into().expect("chunked"));
                    emit(
                        (window as u32).to_be_bytes().to_vec(),
                        watts.to_le_bytes().to_vec(),
                    );
                }
            },
        ),
        &FnReducer(|_k: &[u8], values: &[Vec<u8>]| {
            let sum: f64 = values
                .iter()
                .map(|v| f64::from_le_bytes(v.as_slice().try_into().expect("f64")))
                .sum();
            sum.to_le_bytes().to_vec()
        }),
    )?;

    let reported_totals = fold_window_sums(&sums.output, samples)?;
    let loss: Vec<f64> = feeder_totals
        .iter()
        .zip(&reported_totals)
        .map(|(f, r)| f - r)
        .collect();
    let total_feeder: f64 = feeder_totals.iter().sum();
    let total_reported: f64 = reported_totals.iter().sum();

    // ---- Phase 2: per-meter correlation with the loss series.
    //
    // All households share a diurnal shape (heating), which also shapes the
    // loss series; correlating raw profiles would therefore flag everyone.
    // Both the loss and each meter are first residualised against the
    // common-mode profile (the z-scored feeder total), leaving only each
    // household's idiosyncratic pattern — which for a thief is exactly what
    // the stolen energy follows.
    let common = zscore(feeder_totals);
    let orthogonalise = |series: &[f64], base: &[f64]| -> Vec<f64> {
        let dot: f64 = series.iter().zip(base).map(|(a, b)| a * b).sum();
        let norm: f64 = base.iter().map(|b| b * b).sum();
        let coefficient = if norm > 0.0 { dot / norm } else { 0.0 };
        series
            .iter()
            .zip(base)
            .map(|(a, b)| a - coefficient * b)
            .collect()
    };
    let loss_residual = orthogonalise(&zscore(&loss), &common);
    let common_for_job = common;
    let scores = runner.run(
        &config,
        &input,
        &FnMapper(
            move |k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                let series: Vec<f64> = v
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunked")))
                    .collect();
                let z = zscore(&series);
                let dot: f64 = z.iter().zip(&common_for_job).map(|(a, b)| a * b).sum();
                let norm: f64 = common_for_job.iter().map(|b| b * b).sum();
                let coefficient = if norm > 0.0 { dot / norm } else { 0.0 };
                let residual: Vec<f64> = z
                    .iter()
                    .zip(&common_for_job)
                    .map(|(a, b)| a - coefficient * b)
                    .collect();
                let score = pearson(&residual, &loss_residual);
                emit(k.to_vec(), score.to_le_bytes().to_vec());
            },
        ),
        &FnReducer(|_k: &[u8], values: &[Vec<u8>]| values[0].clone()),
    )?;

    let mut ranked = Vec::with_capacity(scores.output.len());
    for (k, v) in &scores.output {
        ranked.push(Suspicion {
            meter: decode_u64("meter key", k)?,
            score: decode_f64("suspicion score", v)?,
        });
    }
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score));

    Ok(TheftReport {
        total_reported,
        total_feeder,
        loss_fraction: if total_feeder > 0.0 {
            (total_feeder - total_reported) / total_feeder
        } else {
            0.0
        },
        ranked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meters::GridSpec;
    use securecloud_sgx::enclave::Platform;

    fn spec() -> GridSpec {
        GridSpec {
            households: 40,
            duration_secs: 12 * 3600,
            interval_secs: 60,
            theft_fraction: 0.1,
            theft_scale: 0.35,
            seed: 11,
        }
    }

    #[test]
    fn detects_injected_thieves() {
        let spec = spec();
        let traces = spec.generate();
        let feeder = GridSpec::feeder_totals(&traces);
        let thieves: Vec<u64> = traces
            .iter()
            .filter(|t| t.is_theft)
            .map(|t| t.meter)
            .collect();
        assert!(!thieves.is_empty(), "fixture must contain thieves");

        let runner = MapReduceRunner::new(Platform::new());
        let report = detect_theft(&runner, &traces, &feeder).unwrap();

        assert!(report.loss_fraction > 0.01, "theft causes visible loss");
        assert!(report.total_feeder > report.total_reported);
        // Every thief must rank within the top 2x thief count.
        let top: Vec<u64> = report
            .ranked
            .iter()
            .take(thieves.len() * 2)
            .map(|s| s.meter)
            .collect();
        for thief in &thieves {
            assert!(
                top.contains(thief),
                "thief {thief} not in top suspicions: {top:?}"
            );
        }
    }

    #[test]
    fn clean_grid_reports_no_loss() {
        let spec = GridSpec {
            theft_fraction: 0.0,
            households: 20,
            duration_secs: 4 * 3600,
            ..spec()
        };
        let traces = spec.generate();
        let feeder = GridSpec::feeder_totals(&traces);
        let runner = MapReduceRunner::new(Platform::new());
        let report = detect_theft(&runner, &traces, &feeder).unwrap();
        assert!(report.loss_fraction.abs() < 1e-9);
    }

    #[test]
    fn pearson_properties() {
        let up: Vec<f64> = (0..50).map(f64::from).collect();
        let down: Vec<f64> = (0..50).map(|i| f64::from(50 - i)).collect();
        assert!((pearson(&up, &up) - 1.0).abs() < 1e-9);
        assert!((pearson(&up, &down) + 1.0).abs() < 1e-9);
        let flat = vec![3.0; 50];
        assert_eq!(pearson(&up, &flat), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn malformed_reducer_output_surfaces_typed_errors() {
        // Regression: `reported_totals[window]` indexed with a reducer-
        // decoded window and `expect()` decodes panicked on short bytes.
        use std::collections::BTreeMap;
        let map = |pairs: Vec<(Vec<u8>, Vec<u8>)>| pairs.into_iter().collect::<BTreeMap<_, _>>();
        // Out-of-range window index:
        let out_of_range = map(vec![(
            9u32.to_be_bytes().to_vec(),
            1.0f64.to_le_bytes().to_vec(),
        )]);
        assert_eq!(
            fold_window_sums(&out_of_range, 4).unwrap_err(),
            SmartgridError::WindowOutOfRange {
                window: 9,
                windows: 4
            }
        );
        // Truncated window key:
        let short_key = map(vec![(vec![0u8, 1], 1.0f64.to_le_bytes().to_vec())]);
        assert!(matches!(
            fold_window_sums(&short_key, 4).unwrap_err(),
            SmartgridError::MalformedRecord {
                field: "window key",
                expected: 4,
                actual: 2
            }
        ));
        // Truncated value:
        let short_value = map(vec![(0u32.to_be_bytes().to_vec(), vec![1, 2, 3])]);
        assert!(matches!(
            fold_window_sums(&short_value, 4).unwrap_err(),
            SmartgridError::MalformedRecord {
                field: "window sum",
                actual: 3,
                ..
            }
        ));
        // Well-formed output still folds densely.
        let good = map(vec![
            (1u32.to_be_bytes().to_vec(), 2.5f64.to_le_bytes().to_vec()),
            (3u32.to_be_bytes().to_vec(), 4.0f64.to_le_bytes().to_vec()),
        ]);
        assert_eq!(
            fold_window_sums(&good, 4).unwrap(),
            vec![0.0, 2.5, 0.0, 4.0]
        );
    }

    #[test]
    fn survives_worker_failures() {
        let spec = GridSpec {
            households: 10,
            duration_secs: 2 * 3600,
            ..spec()
        };
        let traces = spec.generate();
        let feeder = GridSpec::feeder_totals(&traces);
        let runner = MapReduceRunner::new(Platform::new());
        runner.injector().fail_map_task(0, 1);
        let report = detect_theft(&runner, &traces, &feeder).unwrap();
        let clean_runner = MapReduceRunner::new(Platform::new());
        let clean = detect_theft(&clean_runner, &traces, &feeder).unwrap();
        assert_eq!(report.ranked, clean.ranked, "retry must not change results");
    }
}
