//! Typed errors for the smart-grid pipelines.
//!
//! The analytics jobs decode their own wire formats out of mapreduce
//! output; a malformed or truncated record is an input problem the caller
//! can report or retry, not a reason to abort the whole generator, so the
//! decode paths surface [`SmartgridError`] instead of panicking.

use securecloud_mapreduce::MrError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the smart-grid analytics pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmartgridError {
    /// A reducer emitted a key or value that does not decode as the
    /// pipeline's wire format (wrong width or truncated bytes).
    MalformedRecord {
        /// Which field failed to decode.
        field: &'static str,
        /// Expected byte width.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A reducer emitted a window index outside the job's sample range.
    WindowOutOfRange {
        /// The decoded window index.
        window: usize,
        /// Number of windows the job was sized for.
        windows: usize,
    },
    /// The underlying map/reduce job failed.
    MapReduce(MrError),
}

impl fmt::Display for SmartgridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmartgridError::MalformedRecord {
                field,
                expected,
                actual,
            } => write!(
                f,
                "malformed reducer record: field {field} expected {expected} bytes, got {actual}"
            ),
            SmartgridError::WindowOutOfRange { window, windows } => write!(
                f,
                "reducer emitted window {window} outside the job's {windows} windows"
            ),
            SmartgridError::MapReduce(e) => write!(f, "map/reduce job failed: {e}"),
        }
    }
}

impl StdError for SmartgridError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SmartgridError::MapReduce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MrError> for SmartgridError {
    fn from(e: MrError) -> Self {
        SmartgridError::MapReduce(e)
    }
}

/// Decodes a fixed-width little-endian `f64`, surfacing a typed error on
/// width mismatch instead of panicking.
pub(crate) fn decode_f64(field: &'static str, bytes: &[u8]) -> Result<f64, SmartgridError> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| SmartgridError::MalformedRecord {
            field,
            expected: 8,
            actual: bytes.len(),
        })?;
    Ok(f64::from_le_bytes(arr))
}

/// Decodes a fixed-width little-endian `u64` key.
pub(crate) fn decode_u64(field: &'static str, bytes: &[u8]) -> Result<u64, SmartgridError> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| SmartgridError::MalformedRecord {
            field,
            expected: 8,
            actual: bytes.len(),
        })?;
    Ok(u64::from_le_bytes(arr))
}

/// Decodes a big-endian `u32` window key.
pub(crate) fn decode_window(field: &'static str, bytes: &[u8]) -> Result<usize, SmartgridError> {
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| SmartgridError::MalformedRecord {
            field,
            expected: 4,
            actual: bytes.len(),
        })?;
    Ok(u32::from_be_bytes(arr) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SmartgridError::MalformedRecord {
            field: "sum",
            expected: 8,
            actual: 3,
        };
        assert!(e.to_string().contains("sum"));
        assert!(e.source().is_none());
        let e = SmartgridError::WindowOutOfRange {
            window: 9,
            windows: 4,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn decoders_reject_wrong_widths() {
        assert!(decode_f64("v", &[0u8; 8]).is_ok());
        assert!(matches!(
            decode_f64("v", &[0u8; 7]),
            Err(SmartgridError::MalformedRecord { actual: 7, .. })
        ));
        assert!(decode_u64("k", &1u64.to_le_bytes()).is_ok());
        assert!(decode_u64("k", &[]).is_err());
        assert_eq!(decode_window("w", &3u32.to_be_bytes()).unwrap(), 3);
        assert!(decode_window("w", &[1, 2]).is_err());
    }
}
