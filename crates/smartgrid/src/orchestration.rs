//! Monitoring and orchestration (§VI, second use case): applications are
//! "supervised using monitoring services. Orchestration services detect
//! anomalies within milliseconds, which requires adaptations to the
//! virtual infrastructure".
//!
//! Micro-services publish telemetry (request latencies) to the bus; the
//! [`Orchestrator`] maintains per-service statistics and, when a sample
//! deviates beyond `threshold_sigma` standard deviations, emits a scaling
//! action — in the same bus step, i.e. within one delivery latency.

use securecloud_eventbus::bus::Message;
use securecloud_eventbus::service::{MicroService, ServiceCtx};
use securecloud_scbr::types::{Publication, Subscription, Value};
use securecloud_telemetry::stats::Welford;
use std::collections::HashMap;

/// Telemetry topic consumed by the orchestrator.
pub const TELEMETRY_TOPIC: &str = "telemetry/latency";
/// Topic on which scaling actions are emitted.
pub const ACTIONS_TOPIC: &str = "orchestration/actions";

/// Online mean/variance with a minimum sample count — a thin wrapper over
/// the workspace-shared [`Welford`] accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats(Welford);

impl LatencyStats {
    /// Observes one sample.
    pub fn observe(&mut self, value: f64) {
        self.0.observe(value);
    }

    /// Samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Current mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.0.mean()
    }

    /// Current standard deviation (0 before two samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.0.stddev()
    }
}

/// An anomaly verdict for one telemetry sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Service whose latency is anomalous.
    pub service: String,
    /// The offending sample, milliseconds.
    pub latency_ms: f64,
    /// Standard deviations from the learned mean.
    pub sigma: f64,
}

/// The orchestration micro-service.
#[derive(Debug)]
pub struct Orchestrator {
    /// Samples to learn per service before judging anomalies.
    pub warmup: u64,
    /// Anomaly threshold in standard deviations.
    pub threshold_sigma: f64,
    stats: HashMap<String, LatencyStats>,
    anomalies: Vec<Anomaly>,
}

impl Default for Orchestrator {
    fn default() -> Self {
        Orchestrator {
            warmup: 20,
            threshold_sigma: 4.0,
            stats: HashMap::new(),
            anomalies: Vec::new(),
        }
    }
}

impl Orchestrator {
    /// Creates an orchestrator with default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Anomalies detected so far.
    #[must_use]
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Judges one sample, updating the model. Anomalous samples are *not*
    /// absorbed into the model (they would inflate the variance).
    pub fn judge(&mut self, service: &str, latency_ms: f64) -> Option<Anomaly> {
        let stats = self.stats.entry(service.to_string()).or_default();
        if stats.count() >= self.warmup && stats.stddev() > 0.0 {
            let sigma = (latency_ms - stats.mean()).abs() / stats.stddev();
            if sigma >= self.threshold_sigma {
                let anomaly = Anomaly {
                    service: service.to_string(),
                    latency_ms,
                    sigma,
                };
                self.anomalies.push(anomaly.clone());
                return Some(anomaly);
            }
        }
        stats.observe(latency_ms);
        None
    }
}

/// Builds a telemetry publication for `service` with `latency_ms`.
#[must_use]
pub fn telemetry(service: &str, latency_ms: f64) -> Publication {
    Publication::new()
        .with("service", Value::Str(service.to_string()))
        .with("latency_ms", Value::Float(latency_ms))
}

impl MicroService for Orchestrator {
    fn name(&self) -> &str {
        "orchestrator"
    }

    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![(TELEMETRY_TOPIC.to_string(), None)]
    }

    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        let Some(Value::Str(service)) = message.attributes.attrs.get("service") else {
            return;
        };
        let Some(Value::Float(latency)) = message.attributes.attrs.get("latency_ms") else {
            return;
        };
        let service = service.clone();
        if let Some(anomaly) = self.judge(&service, *latency) {
            ctx.emit(
                ACTIONS_TOPIC,
                format!("scale-up {service}").into_bytes(),
                Publication::new()
                    .with("action", Value::Str("scale-up".into()))
                    .with("service", Value::Str(service))
                    .with("sigma", Value::Float(anomaly.sigma)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_eventbus::service::ServiceHost;

    #[test]
    fn stats_welford() {
        let mut s = LatencyStats::default();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.138_089_935).abs() < 1e-6);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn judge_learns_then_detects() {
        let mut orchestrator = Orchestrator::new();
        for i in 0..30 {
            // ~10 ms with small jitter.
            let latency = 10.0 + f64::from(i % 5) * 0.1;
            assert!(orchestrator.judge("api", latency).is_none());
        }
        let anomaly = orchestrator.judge("api", 100.0).expect("spike detected");
        assert!(anomaly.sigma > 4.0);
        assert_eq!(anomaly.service, "api");
        // The spike did not poison the model: a normal sample is fine and a
        // second spike still fires.
        assert!(orchestrator.judge("api", 10.2).is_none());
        assert!(orchestrator.judge("api", 90.0).is_some());
        assert_eq!(orchestrator.anomalies().len(), 2);
    }

    #[test]
    fn services_learned_independently() {
        let mut orchestrator = Orchestrator::new();
        for i in 0..25 {
            orchestrator.judge("fast", 1.0 + f64::from(i % 3) * 0.01);
            orchestrator.judge("slow", 100.0 + f64::from(i % 3));
        }
        // 50 ms is an anomaly for "fast" but normal-ish for "slow".
        assert!(orchestrator.judge("fast", 50.0).is_some());
        assert!(orchestrator.judge("slow", 103.0).is_none());
    }

    #[test]
    fn orchestrator_reacts_within_one_bus_step() {
        let mut host = ServiceHost::new(1000);
        host.register(Box::new(Orchestrator::new()));
        let actions = host.bus_mut().subscribe(ACTIONS_TOPIC, None);
        // Warm-up telemetry.
        for i in 0..30 {
            host.bus_mut().publish(
                TELEMETRY_TOPIC,
                Vec::new(),
                telemetry("billing", 5.0 + f64::from(i % 4) * 0.05),
            );
        }
        host.run_until_quiet(64);
        assert_eq!(host.bus().backlog(actions), 0, "no anomaly yet");
        // Inject the anomaly and count steps until the action appears.
        host.bus_mut()
            .publish(TELEMETRY_TOPIC, Vec::new(), telemetry("billing", 80.0));
        let mut steps = 0;
        while host.bus().backlog(actions) == 0 {
            assert!(host.step() > 0, "bus went quiet without an action");
            steps += 1;
            assert!(steps < 5);
        }
        assert_eq!(steps, 1, "action emitted in the same delivery step");
        let bus = host.bus_mut();
        let action = bus.fetch(actions).unwrap();
        assert_eq!(action.payload, b"scale-up billing");
        let id = action.id;
        bus.ack(actions, id);
    }
}
