//! Consumption aggregation and billing — the mundane half of §VI's first
//! use case: utilities moved these batch analytics to the cloud precisely
//! because they need "a large data storage and processing infrastructure",
//! and the readings are exactly the data that must stay confidential.
//!
//! Bills are computed as a secure map/reduce job over the reported
//! readings with a time-of-use tariff (peak/off-peak rates).

use crate::meters::MeterTrace;
use securecloud_mapreduce::{FnMapper, FnReducer, JobConfig, MapReduceRunner, MrError};
use std::collections::BTreeMap;

/// A time-of-use tariff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tariff {
    /// Price per kWh during peak hours, in cents.
    pub peak_cents_per_kwh: f64,
    /// Price per kWh off peak, in cents.
    pub offpeak_cents_per_kwh: f64,
    /// First peak hour (inclusive), 0-23.
    pub peak_start_hour: u64,
    /// Last peak hour (exclusive), 0-23.
    pub peak_end_hour: u64,
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff {
            peak_cents_per_kwh: 34.0,
            offpeak_cents_per_kwh: 22.0,
            peak_start_hour: 7,
            peak_end_hour: 22,
        }
    }
}

impl Tariff {
    /// Whether second-of-day `t` falls in the peak window.
    #[must_use]
    pub fn is_peak(&self, t_secs: u64) -> bool {
        let hour = (t_secs / 3600) % 24;
        hour >= self.peak_start_hour && hour < self.peak_end_hour
    }
}

/// One household's bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bill {
    /// Meter identifier.
    pub meter: u64,
    /// Peak-window energy, kWh.
    pub peak_kwh: f64,
    /// Off-peak energy, kWh.
    pub offpeak_kwh: f64,
    /// Total charge, cents.
    pub total_cents: f64,
}

/// Computes every household's bill with a secure map/reduce job.
///
/// # Errors
///
/// Propagates [`MrError`] from the job runner.
pub fn compute_bills(
    runner: &MapReduceRunner,
    traces: &[MeterTrace],
    interval_secs: u64,
    tariff: Tariff,
) -> Result<BTreeMap<u64, Bill>, MrError> {
    // Record: key = meter id, value = f64-LE reported series.
    let input: Vec<(Vec<u8>, Vec<u8>)> = traces
        .iter()
        .map(|t| {
            let mut bytes = Vec::with_capacity(t.reported.len() * 8);
            for w in &t.reported {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            (t.meter.to_le_bytes().to_vec(), bytes)
        })
        .collect();

    let hours = interval_secs as f64 / 3600.0;
    let result = runner.run(
        &JobConfig {
            mappers: 4,
            reducers: 4,
            max_retries: 1,
        },
        &input,
        &FnMapper(
            move |k: &[u8], v: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)| {
                let mut peak_kwh = 0.0f64;
                let mut offpeak_kwh = 0.0f64;
                for (i, chunk) in v.chunks_exact(8).enumerate() {
                    let watts = f64::from_le_bytes(chunk.try_into().expect("chunked"));
                    let kwh = watts / 1000.0 * hours;
                    if tariff.is_peak(i as u64 * interval_secs) {
                        peak_kwh += kwh;
                    } else {
                        offpeak_kwh += kwh;
                    }
                }
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&peak_kwh.to_le_bytes());
                out.extend_from_slice(&offpeak_kwh.to_le_bytes());
                emit(k.to_vec(), out);
            },
        ),
        &FnReducer(|_k: &[u8], values: &[Vec<u8>]| values[0].clone()),
    )?;

    Ok(result
        .output
        .into_iter()
        .map(|(k, v)| {
            let meter = u64::from_le_bytes(k.as_slice().try_into().expect("u64"));
            let peak_kwh = f64::from_le_bytes(v[..8].try_into().expect("f64"));
            let offpeak_kwh = f64::from_le_bytes(v[8..16].try_into().expect("f64"));
            (
                meter,
                Bill {
                    meter,
                    peak_kwh,
                    offpeak_kwh,
                    total_cents: peak_kwh * tariff.peak_cents_per_kwh
                        + offpeak_kwh * tariff.offpeak_cents_per_kwh,
                },
            )
        })
        .collect())
}

/// Sequential reference (for tests and cross-checks).
#[must_use]
pub fn compute_bills_reference(
    traces: &[MeterTrace],
    interval_secs: u64,
    tariff: Tariff,
) -> BTreeMap<u64, Bill> {
    let hours = interval_secs as f64 / 3600.0;
    traces
        .iter()
        .map(|t| {
            let mut peak_kwh = 0.0;
            let mut offpeak_kwh = 0.0;
            for (i, watts) in t.reported.iter().enumerate() {
                let kwh = watts / 1000.0 * hours;
                if tariff.is_peak(i as u64 * interval_secs) {
                    peak_kwh += kwh;
                } else {
                    offpeak_kwh += kwh;
                }
            }
            (
                t.meter,
                Bill {
                    meter: t.meter,
                    peak_kwh,
                    offpeak_kwh,
                    total_cents: peak_kwh * tariff.peak_cents_per_kwh
                        + offpeak_kwh * tariff.offpeak_cents_per_kwh,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meters::GridSpec;
    use securecloud_sgx::enclave::Platform;

    fn spec() -> GridSpec {
        GridSpec {
            households: 15,
            duration_secs: 24 * 3600,
            interval_secs: 60,
            theft_fraction: 0.0,
            ..GridSpec::default()
        }
    }

    #[test]
    fn mapreduce_matches_reference() {
        let spec = spec();
        let traces = spec.generate();
        let runner = MapReduceRunner::new(Platform::new());
        let bills = compute_bills(&runner, &traces, spec.interval_secs, Tariff::default()).unwrap();
        let reference = compute_bills_reference(&traces, spec.interval_secs, Tariff::default());
        assert_eq!(bills.len(), reference.len());
        for (meter, bill) in &bills {
            let want = &reference[meter];
            assert!((bill.peak_kwh - want.peak_kwh).abs() < 1e-9);
            assert!((bill.offpeak_kwh - want.offpeak_kwh).abs() < 1e-9);
            assert!((bill.total_cents - want.total_cents).abs() < 1e-6);
        }
    }

    #[test]
    fn bills_are_plausible() {
        let spec = spec();
        let traces = spec.generate();
        let runner = MapReduceRunner::new(Platform::new());
        let bills = compute_bills(&runner, &traces, spec.interval_secs, Tariff::default()).unwrap();
        for bill in bills.values() {
            let total_kwh = bill.peak_kwh + bill.offpeak_kwh;
            // Daily household consumption: somewhere between 1 and 60 kWh.
            assert!(total_kwh > 1.0 && total_kwh < 60.0, "{total_kwh} kWh");
            assert!(bill.total_cents > 0.0);
            // Peak window is 15 of 24 hours and includes the evening ramp.
            assert!(bill.peak_kwh > bill.offpeak_kwh * 0.3);
        }
    }

    #[test]
    fn tariff_window() {
        let tariff = Tariff::default();
        assert!(!tariff.is_peak(6 * 3600));
        assert!(tariff.is_peak(7 * 3600));
        assert!(tariff.is_peak(21 * 3600 + 3599));
        assert!(!tariff.is_peak(22 * 3600));
        // Second day wraps.
        assert!(tariff.is_peak(24 * 3600 + 12 * 3600));
    }

    #[test]
    fn theft_lowers_the_bill() {
        // The same household billed on reported vs actual: the thief pays
        // less — the revenue gap NTL detection exists to close.
        let spec = GridSpec {
            households: 10,
            theft_fraction: 0.5,
            theft_scale: 0.4,
            duration_secs: 12 * 3600,
            ..GridSpec::default()
        };
        let traces = spec.generate();
        let runner = MapReduceRunner::new(Platform::new());
        let bills = compute_bills(&runner, &traces, spec.interval_secs, Tariff::default()).unwrap();
        for trace in traces.iter().filter(|t| t.is_theft) {
            let honest_twin = MeterTrace {
                reported: trace.actual.clone(),
                ..trace.clone()
            };
            let honest =
                compute_bills_reference(&[honest_twin], spec.interval_secs, Tariff::default());
            assert!(
                bills[&trace.meter].total_cents < honest[&trace.meter].total_cents * 0.5,
                "thief should pay much less than the honest twin"
            );
        }
    }
}
