//! E2 regression bench: the three memory-pressure regimes (fits-LLC,
//! fits-EPC-misses-LLC, exceeds-EPC) at 1/16 scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use securecloud_scbr::engine::MatchEngine;
use securecloud_scbr::index::PosetIndex;
use securecloud_scbr::workload::WorkloadSpec;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;

fn small_geometry() -> MemoryGeometry {
    MemoryGeometry {
        line_bytes: 64,
        llc_bytes: 512 << 10,
        page_bytes: 4096,
        epc_total_bytes: 8 << 20,
        epc_reserved_bytes: 2 << 20,
    }
}

fn bench_regimes(c: &mut Criterion) {
    let spec = WorkloadSpec::fig3();
    let mut group = c.benchmark_group("cache_vs_swap");
    for (regime, db_kb) in [
        ("fits_llc", 256u64),
        ("fits_epc", 3 << 10),
        ("swapping", 12 << 10),
    ] {
        let mut mem = MemorySim::enclave(small_geometry(), CostModel::sgx_v1());
        let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
        for sub in spec.subscriptions_for_db_size(db_kb << 10) {
            engine.subscribe(&mut mem, sub);
        }
        let pubs = spec.publications(32);
        group.bench_with_input(BenchmarkId::from_parameter(regime), &pubs, |b, pubs| {
            b.iter(|| {
                let mut faults = 0u64;
                for publication in pubs {
                    engine.publish(&mut mem, publication);
                }
                faults += mem.stats().epc_faults;
                faults
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regimes);
criterion_main!(benches);
