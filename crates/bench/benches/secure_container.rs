//! E5 regression bench: secure image build (FS encryption + protection
//! file) and secure container start (attestation + SCF + mount) on a
//! 1 MiB protected file system.

use criterion::{criterion_group, criterion_main, Criterion};
use securecloud::containers::build::SecureImageBuilder;
use securecloud::SecureCloud;

fn bench_build(c: &mut Criterion) {
    let payload = vec![0xa7u8; 1 << 20];
    c.bench_function("secure_image_build_1MiB", |b| {
        b.iter(|| {
            SecureImageBuilder::new("bench", "v1", b"binary")
                .protect_file("/data/blob", &payload)
                .build()
                .unwrap()
                .measurement
        })
    });
}

fn bench_start(c: &mut Criterion) {
    let payload = vec![0xa7u8; 1 << 20];
    c.bench_function("secure_container_start_1MiB", |b| {
        b.iter_batched(
            || {
                let mut cloud = SecureCloud::new();
                let built = SecureImageBuilder::new("bench", "v1", b"binary")
                    .protect_file("/data/blob", &payload)
                    .build()
                    .unwrap();
                let image = cloud.deploy_image(built);
                (cloud, image)
            },
            |(mut cloud, image)| cloud.run_container(image).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_build, bench_start);
criterion_main!(benches);
