//! E1 / Figure 3 regression bench: matching throughput of the SCBR engine
//! in native vs enclave memory at database sizes below and beyond the EPC.
//!
//! Uses a 1/16-scale geometry (8 MiB EPC) so setup stays cheap; the
//! full-scale sweep is `cargo run --release -p securecloud-bench --bin
//! repro -- fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use securecloud_scbr::engine::MatchEngine;
use securecloud_scbr::index::PosetIndex;
use securecloud_scbr::workload::WorkloadSpec;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;

fn small_geometry() -> MemoryGeometry {
    MemoryGeometry {
        line_bytes: 64,
        llc_bytes: 512 << 10,
        page_bytes: 4096,
        epc_total_bytes: 8 << 20,
        epc_reserved_bytes: 2 << 20,
    }
}

fn bench_fig3(c: &mut Criterion) {
    let spec = WorkloadSpec::fig3();
    let mut group = c.benchmark_group("fig3_matching");
    for &db_mb in &[2u64, 6, 16] {
        for enclave in [false, true] {
            let label = if enclave { "enclave" } else { "native" };
            let mut mem = if enclave {
                MemorySim::enclave(small_geometry(), CostModel::sgx_v1())
            } else {
                MemorySim::native(small_geometry(), CostModel::sgx_v1())
            };
            let mut engine = MatchEngine::new(PosetIndex::with_partition_attr("topic"));
            for sub in spec.subscriptions_for_db_size(db_mb << 20) {
                engine.subscribe(&mut mem, sub);
            }
            let pubs = spec.publications(16);
            group.throughput(Throughput::Elements(pubs.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(label, format!("{db_mb}MB")),
                &pubs,
                |b, pubs| {
                    b.iter(|| {
                        let mut matched = 0usize;
                        for publication in pubs {
                            matched += engine.publish(&mut mem, publication).len();
                        }
                        matched
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
