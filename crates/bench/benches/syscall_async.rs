//! E4 regression bench: 256 shielded pwrites through the synchronous vs
//! the asynchronous interface (real lock-free queues and host thread).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use securecloud_scone::hostos::{MemHost, Syscall, SyscallRet};
use securecloud_scone::syscall::{AsyncShield, SyncShield};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use std::sync::Arc;

const CALLS: usize = 256;

fn bench_syscalls(c: &mut Criterion) {
    let mut group = c.benchmark_group("shielded_syscalls");
    group.throughput(Throughput::Elements(CALLS as u64));
    for payload in [64usize, 4096] {
        group.bench_with_input(
            BenchmarkId::new("sync", payload),
            &payload,
            |b, &payload| {
                let host = Arc::new(MemHost::new());
                let shield = SyncShield::new(host);
                let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
                let SyscallRet::Fd(fd) = shield
                    .call(
                        &mut mem,
                        &Syscall::Open {
                            path: "/f".into(),
                            create: true,
                        },
                    )
                    .unwrap()
                else {
                    panic!("open failed")
                };
                b.iter(|| {
                    for i in 0..CALLS {
                        shield
                            .call(
                                &mut mem,
                                &Syscall::Pwrite {
                                    fd,
                                    offset: (i * payload) as u64,
                                    data: vec![1u8; payload],
                                },
                            )
                            .unwrap();
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("async", payload),
            &payload,
            |b, &payload| {
                let host = Arc::new(MemHost::new());
                let mut shield = AsyncShield::new(host);
                let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
                let SyscallRet::Fd(fd) = shield
                    .call(
                        &mut mem,
                        Syscall::Open {
                            path: "/f".into(),
                            create: true,
                        },
                    )
                    .unwrap()
                else {
                    panic!("open failed")
                };
                b.iter(|| {
                    for i in 0..CALLS {
                        shield
                            .submit(
                                &mut mem,
                                Syscall::Pwrite {
                                    fd,
                                    offset: (i * payload) as u64,
                                    data: vec![1u8; payload],
                                },
                            )
                            .unwrap();
                    }
                    while shield.in_flight() > 0 {
                        shield.complete(&mut mem).unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_syscalls);
criterion_main!(benches);
