//! E7 regression bench: streaming power-quality detection and orchestrator
//! anomaly judgement throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use securecloud_smartgrid::orchestration::Orchestrator;
use securecloud_smartgrid::quality::{run_detector, QualityDetector, QualitySpec};

fn bench_detector(c: &mut Criterion) {
    let trace = QualitySpec {
        samples: 20_000,
        faults: 5,
        seed: 9,
        ..QualitySpec::default()
    }
    .generate();
    let mut group = c.benchmark_group("power_quality");
    group.throughput(Throughput::Elements(trace.samples.len() as u64));
    group.bench_function("detector_20k_samples", |b| {
        b.iter(|| {
            let report = run_detector(&trace, &mut QualityDetector::new());
            report.events.len()
        })
    });
    group.finish();
}

fn bench_judge(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("judge_10k_samples", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            let mut anomalies = 0usize;
            for i in 0..10_000u32 {
                let latency = if i % 1000 == 999 {
                    120.0
                } else {
                    5.0 + f64::from(i % 7) * 0.01
                };
                if orchestrator.judge("svc", latency).is_some() {
                    anomalies += 1;
                }
            }
            anomalies
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detector, bench_judge);
criterion_main!(benches);
