//! E3 regression bench: one scheduling simulation per scheduler over a
//! 2-hour, 20-server trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use securecloud_genpack::schedulers::{
    FirstFitScheduler, GenPackScheduler, RandomScheduler, Scheduler, SpreadScheduler,
};
use securecloud_genpack::sim::{simulate, SimConfig};
use securecloud_genpack::workload::WorkloadConfig;

fn bench_schedulers(c: &mut Criterion) {
    let trace = WorkloadConfig {
        duration: 2 * 3600,
        churn_per_hour: 120.0,
        system_services: 8,
        long_running: 20,
        ..WorkloadConfig::default()
    }
    .generate();
    let config = SimConfig {
        servers: 20,
        sample_every: 0,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("genpack_energy");
    type Factory = fn() -> Box<dyn Scheduler>;
    let make: Vec<(&str, Factory)> = vec![
        ("random", || Box::new(RandomScheduler::new(1))),
        ("spread", || Box::new(SpreadScheduler)),
        ("first_fit", || Box::new(FirstFitScheduler)),
        ("genpack", || Box::new(GenPackScheduler::new())),
    ];
    for (name, factory) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, trace| {
            b.iter(|| {
                let mut scheduler = factory();
                simulate(scheduler.as_mut(), trace, config).energy_joules
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
