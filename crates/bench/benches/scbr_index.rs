//! E6 regression bench: matching throughput of the containment index vs
//! the naive linear scan on a 20k-subscription database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use securecloud_scbr::index::{NaiveIndex, PosetIndex, SubscriptionIndex};
use securecloud_scbr::types::SubId;
use securecloud_scbr::workload::WorkloadSpec;

const SUBS: usize = 20_000;
const PUBS: usize = 16;

fn bench_indexes(c: &mut Criterion) {
    let spec = WorkloadSpec::fig3();
    let database = spec.subscriptions(SUBS);
    let publications = spec.publications(PUBS);

    let mut naive = NaiveIndex::new();
    let mut poset = PosetIndex::with_partition_attr("topic");
    for (i, sub) in database.iter().enumerate() {
        naive.insert(SubId(i as u64), sub.clone(), i as u64 * 256);
        poset.insert(SubId(i as u64), sub.clone(), i as u64 * 256);
    }

    let mut group = c.benchmark_group("index_matching_20k_subs");
    group.throughput(Throughput::Elements(PUBS as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("naive"),
        &publications,
        |b, pubs| {
            b.iter(|| {
                let mut matched = 0usize;
                for publication in pubs {
                    matched += naive.match_publication(publication, &mut |_| {}).len();
                }
                matched
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("poset"),
        &publications,
        |b, pubs| {
            b.iter(|| {
                let mut matched = 0usize;
                for publication in pubs {
                    matched += poset.match_publication(publication, &mut |_| {}).len();
                }
                matched
            })
        },
    );
    group.finish();

    c.bench_function("poset_insert_1k", |b| {
        let subs = spec.subscriptions(1_000);
        b.iter(|| {
            let mut index = PosetIndex::with_partition_attr("topic");
            for (i, sub) in subs.iter().enumerate() {
                index.insert(SubId(i as u64), sub.clone(), i as u64 * 256);
            }
            index.len()
        })
    });
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
