//! The parallel sweep contract: fanning sweep points across worker threads
//! changes wall-clock time and nothing else. Equal-seed runs must produce
//! byte-identical point vectors *and* byte-identical telemetry exports for
//! any `--jobs` value.

use securecloud_bench::{cluster_exp, fig3, messaging, replication, slo};
use securecloud_telemetry::Telemetry;

/// Tiny Figure 3 sweep (debug-build sized): serial and 4-way parallel runs
/// must agree on every point and on both telemetry exports.
#[test]
fn fig3_sweep_is_identical_across_job_counts() {
    let sizes: &[u64] = &[1, 2, 3];
    let pubs = 2;

    let run = |jobs: usize| {
        let telemetry = Telemetry::new();
        let points = fig3::sweep_jobs(sizes, pubs, jobs, Some(&telemetry));
        (points, telemetry.prometheus(), telemetry.trace_jsonl())
    };

    let (serial_points, serial_prom, serial_trace) = run(1);
    let (parallel_points, parallel_prom, parallel_trace) = run(4);

    assert_eq!(serial_points, parallel_points, "point vectors diverge");
    assert_eq!(serial_prom, parallel_prom, "metrics snapshots diverge");
    assert_eq!(serial_trace, parallel_trace, "trace exports diverge");
    assert_eq!(serial_points.len(), sizes.len());
    assert!(
        !serial_trace.is_empty(),
        "instrumented sweep must leave trace events"
    );
}

/// The uninstrumented fig3 path takes the same pool code; points must still
/// match across job counts.
#[test]
fn fig3_sweep_without_telemetry_is_identical_across_job_counts() {
    let serial = fig3::sweep_jobs(&[1, 2], 2, 1, None);
    let parallel = fig3::sweep_jobs(&[1, 2], 2, 3, None);
    assert_eq!(serial, parallel);
}

/// Messaging sweep (E11): serial and parallel runs must agree point-for-
/// point and leave byte-identical telemetry (the latency histograms are
/// absorbed into the shared bundle in point order, not completion order).
#[test]
fn messaging_sweep_is_identical_across_job_counts() {
    let config = messaging::MessagingConfig {
        batch_sizes: vec![1, 8],
        payload_bytes: vec![64, 256],
        messages: 32,
    };

    let run = |jobs: usize| {
        let telemetry = Telemetry::new();
        let report = messaging::sweep_jobs(&config, jobs, Some(&telemetry));
        (report, telemetry.prometheus(), telemetry.trace_jsonl())
    };

    let (serial_report, serial_prom, serial_trace) = run(1);
    let (parallel_report, parallel_prom, parallel_trace) = run(4);

    assert_eq!(serial_report, parallel_report, "reports diverge");
    assert_eq!(serial_prom, parallel_prom, "metrics snapshots diverge");
    assert_eq!(serial_trace, parallel_trace, "trace exports diverge");
    assert_eq!(serial_report.points.len(), 4);
    assert!(
        serial_prom.contains("securecloud_bench_messaging_publish_us"),
        "latency histogram missing from snapshot"
    );
}

/// E12 chaos cells: the controller's decision trace is a pure function of
/// (seed, policy, virtual clock), so serial and parallel runs must agree
/// on every point — the full decision trace bytes included, not just the
/// scalar outcomes.
#[test]
fn cluster_decision_traces_are_identical_across_job_counts() {
    let config = cluster_exp::ClusterConfig {
        seeds: vec![0xE1A5_0001, 0x5EED_0002],
        writes_per_tick: vec![4],
        ticks: 30,
        tick_ms: 250,
        overload_ticks: 9,
    };

    let serial = cluster_exp::sweep_jobs(&config, 1);
    let parallel = cluster_exp::sweep_jobs(&config, 4);

    assert_eq!(serial, parallel, "cluster chaos cells diverge across jobs");
    assert_eq!(serial.points.len(), 2);
    for (first, second) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(
            first.decision_trace, second.decision_trace,
            "seed {:#x}: decision trace bytes diverge",
            first.seed
        );
        assert!(!first.decision_trace.is_empty());
    }
    // Different seeds jitter the schedule differently, so their traces
    // must differ — equal traces would mean the seed is ignored.
    assert_ne!(
        serial.points[0].decision_trace,
        serial.points[1].decision_trace
    );
}

/// E13 traced cells: causal ids are minted from (seed, minting order)
/// alone, so the critical-path report and alert-stream *bytes* must be
/// identical at any job count — and differ across seeds (equal reports
/// would mean the seed never reached the minter or the schedule).
#[test]
fn slo_traces_and_reports_are_identical_across_job_counts() {
    let config = slo::SloConfig {
        seeds: vec![0x510_0001, 0x510_0002],
        ..slo::SloConfig::full()
    };

    let serial = slo::sweep_jobs(&config, 1);
    let two_way = slo::sweep_jobs(&config, 2);
    let eight_way = slo::sweep_jobs(&config, 8);

    assert_eq!(serial, two_way, "slo cells diverge between 1 and 2 jobs");
    assert_eq!(serial, eight_way, "slo cells diverge between 1 and 8 jobs");
    assert_eq!(serial.points.len(), 2);
    for point in &serial.points {
        assert!(!point.critical_path_text.is_empty());
        assert!(!point.alert_stream.is_empty());
        assert!(point.subsystems >= 4);
    }
    // Different seeds jitter the schedule and reseed the id minter, so
    // both determinism artifacts must differ across seeds.
    assert_ne!(
        serial.points[0].critical_path_text,
        serial.points[1].critical_path_text
    );
    assert_ne!(
        serial.points[0].decision_trace,
        serial.points[1].decision_trace
    );
    // The raw trace-event digest covers every minted causal id, so it is
    // seed-distinct even when the aggregate renders happen to coincide.
    assert_ne!(
        serial.points[0].trace_events_fnv,
        serial.points[1].trace_events_fnv
    );
}

/// Replication grid: serial and parallel runs must agree cell-for-cell, in
/// the serial sweep's row-major order.
#[test]
fn replication_grid_is_identical_across_job_counts() {
    let mut workload = replication::ReplicationWorkload::smoke();
    workload.keys = 128;
    workload.value_bytes = 256;

    let serial = replication::sweep_jobs(&[1, 2], &[1, 3], &workload, 1);
    let parallel = replication::sweep_jobs(&[1, 2], &[1, 3], &workload, 4);

    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 4);
    let expected_order: Vec<(u32, u32)> = vec![(1, 1), (1, 3), (2, 1), (2, 3)];
    let order: Vec<(u32, u32)> = serial
        .iter()
        .map(|p| (p.shards, p.replication_factor))
        .collect();
    assert_eq!(order, expected_order, "row-major order must be preserved");
}
