//! E1 (Figure 3) and E2 (cache misses vs memory swapping).
//!
//! The same SCBR matching engine runs against a native-domain and an
//! enclave-domain memory simulator over subscription databases of growing
//! size; the enclave/native time ratio reproduces Figure 3's "effect of
//! memory swapping".

use securecloud_scbr::engine::{Layout, MatchEngine};
use securecloud_scbr::index::PosetIndex;
use securecloud_scbr::workload::WorkloadSpec;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::Telemetry;

/// The database sizes swept for Figure 3 (MiB). The vertical line of the
/// paper's figure sits at 128 MiB.
pub const PAPER_DB_SIZES_MB: &[u64] = &[
    8, 16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192, 208, 224,
];

/// One point of the Figure 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Subscription database size in MiB.
    pub db_mb: u64,
    /// Steady-state native matching time per publication, microseconds.
    pub native_us: f64,
    /// Steady-state in-enclave matching time per publication, microseconds.
    pub enclave_us: f64,
    /// enclave / native ratio (the y-axis of Figure 3).
    pub ratio: f64,
    /// Index nodes visited per publication.
    pub visits_per_pub: u64,
    /// EPC page faults per publication (enclave run).
    pub faults_per_pub: u64,
    /// LLC misses per publication (enclave run).
    pub llc_misses_per_pub: u64,
}

struct DomainRun {
    us_per_pub: f64,
    visits_per_pub: u64,
    faults_per_pub: u64,
    llc_misses_per_pub: u64,
}

fn run_domain(
    spec: &WorkloadSpec,
    db_bytes: u64,
    publications: usize,
    geometry: MemoryGeometry,
    costs: CostModel,
    enclave: bool,
) -> DomainRun {
    run_domain_with_layout(
        spec,
        db_bytes,
        publications,
        geometry,
        costs,
        enclave,
        Layout::ArrivalOrder,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_domain_with_layout(
    spec: &WorkloadSpec,
    db_bytes: u64,
    publications: usize,
    geometry: MemoryGeometry,
    costs: CostModel,
    enclave: bool,
    layout: Layout,
    telemetry: Option<&Telemetry>,
) -> DomainRun {
    let domain = if enclave { "enclave" } else { "native" };
    let _span = telemetry.map(|t| {
        t.span_with(
            "bench",
            "fig3_domain",
            vec![
                ("domain", domain.to_string()),
                ("db_mb", (db_bytes >> 20).to_string()),
            ],
        )
    });
    let mut mem = if enclave {
        MemorySim::enclave(geometry, costs)
    } else {
        MemorySim::native(geometry, costs)
    };
    let mut engine = MatchEngine::with_layout(PosetIndex::with_partition_attr("topic"), layout);
    if let Some(t) = telemetry {
        mem.set_telemetry(t);
        engine.set_telemetry(t, domain);
    }
    for sub in spec.subscriptions_for_db_size(db_bytes) {
        engine.subscribe(&mut mem, sub);
    }
    let pubs = spec.publications(publications);
    // Warm-up pass (cold-start faults excluded), then the measured pass.
    for publication in &pubs {
        engine.publish(&mut mem, publication);
    }
    mem.reset_metrics();
    let visits_before = engine.stats().nodes_visited;
    for publication in &pubs {
        engine.publish(&mut mem, publication);
    }
    let visits = engine.stats().nodes_visited - visits_before;
    let n = publications as u64;
    DomainRun {
        us_per_pub: mem.elapsed().as_micros() as f64 / publications as f64,
        visits_per_pub: visits / n,
        faults_per_pub: mem.stats().epc_faults / n,
        llc_misses_per_pub: mem.stats().llc_misses / n,
    }
}

/// Runs one database size in both domains with explicit geometry/costs.
#[must_use]
pub fn run_point_with(
    db_bytes: u64,
    publications: usize,
    geometry: MemoryGeometry,
    costs: CostModel,
) -> Fig3Point {
    run_point_with_telemetry(db_bytes, publications, geometry, costs, None)
}

/// Like [`run_point_with`], optionally recording per-domain sgx/scbr
/// metrics and a `bench/fig3_domain` span pair into `telemetry`.
#[must_use]
pub fn run_point_with_telemetry(
    db_bytes: u64,
    publications: usize,
    geometry: MemoryGeometry,
    costs: CostModel,
    telemetry: Option<&Telemetry>,
) -> Fig3Point {
    let spec = WorkloadSpec::fig3();
    let native = run_domain_with_layout(
        &spec,
        db_bytes,
        publications,
        geometry,
        costs.clone(),
        false,
        Layout::ArrivalOrder,
        telemetry,
    );
    let enclave = run_domain_with_layout(
        &spec,
        db_bytes,
        publications,
        geometry,
        costs,
        true,
        Layout::ArrivalOrder,
        telemetry,
    );
    Fig3Point {
        db_mb: db_bytes >> 20,
        native_us: native.us_per_pub,
        enclave_us: enclave.us_per_pub,
        ratio: enclave.us_per_pub / native.us_per_pub,
        visits_per_pub: enclave.visits_per_pub,
        faults_per_pub: enclave.faults_per_pub,
        llc_misses_per_pub: enclave.llc_misses_per_pub,
    }
}

/// Runs one database size in both domains with SGX1 defaults.
#[must_use]
pub fn run_point(db_mb: u64, publications: usize) -> Fig3Point {
    run_point_with(
        db_mb << 20,
        publications,
        MemoryGeometry::sgx_v1(),
        CostModel::sgx_v1(),
    )
}

/// Full Figure 3 sweep.
#[must_use]
pub fn sweep(db_sizes_mb: &[u64], publications: usize) -> Vec<Fig3Point> {
    sweep_instrumented(db_sizes_mb, publications, None)
}

/// Full Figure 3 sweep with optional telemetry: every point records its
/// memory-simulator and matching-engine metrics (labeled by domain) into
/// the shared registry and leaves a span per domain run in the trace.
#[must_use]
pub fn sweep_instrumented(
    db_sizes_mb: &[u64],
    publications: usize,
    telemetry: Option<&Telemetry>,
) -> Vec<Fig3Point> {
    sweep_jobs(db_sizes_mb, publications, 1, telemetry)
}

/// Figure 3 sweep fanned across up to `jobs` worker threads.
///
/// Every sweep point is independent (own simulator, own engine, own virtual
/// time base), so points run concurrently and are collected in input order.
/// When telemetry is requested, each point records into a private bundle
/// that is absorbed into the shared one in point order — the serial path
/// (`jobs == 1`) goes through the identical record-then-absorb sequence, so
/// results *and* telemetry exports are byte-identical for any job count.
#[must_use]
pub fn sweep_jobs(
    db_sizes_mb: &[u64],
    publications: usize,
    jobs: usize,
    telemetry: Option<&Telemetry>,
) -> Vec<Fig3Point> {
    let instrument = telemetry.is_some();
    let results = crate::pool::run_ordered(db_sizes_mb.to_vec(), jobs, move |mb| {
        let local = instrument.then(Telemetry::new);
        let point = run_point_with_telemetry(
            mb << 20,
            publications,
            MemoryGeometry::sgx_v1(),
            CostModel::sgx_v1(),
            local.as_ref(),
        );
        (point, local)
    });
    results
        .into_iter()
        .map(|(point, local)| {
            if let (Some(shared), Some(local)) = (telemetry, local) {
                shared.absorb(&local);
            }
            point
        })
        .collect()
}

/// E8: one Figure 3 point under the paper's proposed optimisations.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimisedPoint {
    /// Variant label.
    pub variant: &'static str,
    /// Database size, MiB.
    pub db_mb: u64,
    /// In-enclave matching time per publication, microseconds.
    pub enclave_us: f64,
    /// enclave / native ratio against the shared native baseline.
    pub ratio: f64,
    /// EPC faults per publication.
    pub faults_per_pub: u64,
}

/// E8: the paper's future-work directions quantified — a topic-clustered
/// arena layout ("optimise our data structures to avoid paging") and a
/// larger-EPC platform (SGX2-class hardware) — against the measured
/// baseline, at one past-EPC database size.
#[must_use]
pub fn optimisations(db_mb: u64, publications: usize) -> Vec<OptimisedPoint> {
    let spec = WorkloadSpec::fig3();
    let costs = CostModel::sgx_v1();
    // Each variant is compared against a native run on the *same*
    // geometry, so larger-LLC platforms do not skew the ratio.
    let native_v1 = run_domain(
        &spec,
        db_mb << 20,
        publications,
        MemoryGeometry::sgx_v1(),
        costs.clone(),
        false,
    );
    let native_v2 = run_domain(
        &spec,
        db_mb << 20,
        publications,
        MemoryGeometry::sgx_v2(),
        costs.clone(),
        false,
    );
    let variants: Vec<(&'static str, MemoryGeometry, Layout)> = vec![
        (
            "baseline (arrival order, SGX1)",
            MemoryGeometry::sgx_v1(),
            Layout::ArrivalOrder,
        ),
        (
            "clustered layout, SGX1",
            MemoryGeometry::sgx_v1(),
            Layout::Clustered("topic".into()),
        ),
        (
            "arrival order, SGX2 EPC",
            MemoryGeometry::sgx_v2(),
            Layout::ArrivalOrder,
        ),
        (
            "clustered layout, SGX2 EPC",
            MemoryGeometry::sgx_v2(),
            Layout::Clustered("topic".into()),
        ),
    ];
    variants
        .into_iter()
        .map(|(variant, geometry, layout)| {
            let run = run_domain_with_layout(
                &spec,
                db_mb << 20,
                publications,
                geometry,
                costs.clone(),
                true,
                layout,
                None,
            );
            let native_us = if geometry == MemoryGeometry::sgx_v2() {
                native_v2.us_per_pub
            } else {
                native_v1.us_per_pub
            };
            OptimisedPoint {
                variant,
                db_mb,
                enclave_us: run.us_per_pub,
                ratio: run.us_per_pub / native_us,
                faults_per_pub: run.faults_per_pub,
            }
        })
        .collect()
}

/// E2: the three memory-pressure regimes of §V-B.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRegime {
    /// Regime label.
    pub regime: &'static str,
    /// Database size, MiB.
    pub db_mb: u64,
    /// The measured point.
    pub point: Fig3Point,
}

/// Runs the cache-vs-swap comparison: a working set inside the LLC, one
/// inside the EPC but beyond the LLC (MEE overhead only — "limited"), and
/// one beyond the EPC (paging — "more critical").
#[must_use]
pub fn cache_vs_swap(publications: usize) -> Vec<CacheRegime> {
    [
        ("fits LLC", 4u64),
        ("fits EPC, misses LLC", 48),
        ("exceeds EPC (swapping)", 160),
    ]
    .into_iter()
    .map(|(regime, db_mb)| CacheRegime {
        regime,
        db_mb,
        point: run_point(db_mb, publications),
    })
    .collect()
}
