//! E4: SCONE's asynchronous system-call interface versus the naive
//! synchronous (transition-per-call) interface (§IV).

use securecloud_scone::hostos::{MemHost, Syscall, SyscallRet};
use securecloud_scone::syscall::{AsyncShield, SyncShield};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use std::sync::Arc;

/// Result of one payload-size point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyscallPoint {
    /// Write payload in bytes.
    pub payload: usize,
    /// Enclave cycles per call, synchronous interface.
    pub sync_cycles: f64,
    /// Enclave cycles per call, asynchronous interface.
    pub async_cycles: f64,
    /// sync / async speedup.
    pub speedup: f64,
    /// Synchronous throughput in Mcalls/s of simulated time.
    pub sync_mcalls_per_s: f64,
    /// Asynchronous throughput in Mcalls/s of simulated time.
    pub async_mcalls_per_s: f64,
}

fn enclave_mem() -> MemorySim {
    MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
}

fn open(shield: &SyncShield, mem: &mut MemorySim, path: &str) -> u64 {
    match shield
        .call(
            mem,
            &Syscall::Open {
                path: path.to_string(),
                create: true,
            },
        )
        .expect("open")
    {
        SyscallRet::Fd(fd) => fd,
        other => panic!("unexpected open result {other:?}"),
    }
}

/// Measures `calls` pwrites of `payload` bytes through both interfaces.
#[must_use]
pub fn run_point(payload: usize, calls: usize) -> SyscallPoint {
    let host = Arc::new(MemHost::new());
    let ghz = CostModel::sgx_v1().cpu_ghz;

    // --- Synchronous: each call transitions out and back.
    let sync_shield = SyncShield::new(host.clone());
    let mut mem = enclave_mem();
    let fd = open(&sync_shield, &mut mem, "/sync");
    let before = mem.cycles();
    for i in 0..calls {
        sync_shield
            .call(
                &mut mem,
                &Syscall::Pwrite {
                    fd,
                    offset: (i * payload) as u64,
                    data: vec![0xab; payload],
                },
            )
            .expect("pwrite");
    }
    let sync_cycles = (mem.cycles() - before) as f64 / calls as f64;

    // --- Asynchronous: lock-free queue to a host thread, 32 in flight.
    let mut async_shield = AsyncShield::new(host);
    let mut mem = enclave_mem();
    let setup = SyncShield::new(Arc::new(MemHost::new()));
    let _ = setup; // async shield opens through itself:
    let fd = match async_shield
        .call(
            &mut mem,
            Syscall::Open {
                path: "/async".into(),
                create: true,
            },
        )
        .expect("open")
    {
        SyscallRet::Fd(fd) => fd,
        other => panic!("unexpected open result {other:?}"),
    };
    let before = mem.cycles();
    const WINDOW: usize = 32;
    let mut issued = 0usize;
    while issued < calls {
        let batch = WINDOW.min(calls - issued);
        for i in 0..batch {
            async_shield
                .submit(
                    &mut mem,
                    Syscall::Pwrite {
                        fd,
                        offset: ((issued + i) * payload) as u64,
                        data: vec![0xab; payload],
                    },
                )
                .expect("submit");
        }
        for _ in 0..batch {
            async_shield.complete(&mut mem).expect("complete");
        }
        issued += batch;
    }
    let async_cycles = (mem.cycles() - before) as f64 / calls as f64;

    SyscallPoint {
        payload,
        sync_cycles,
        async_cycles,
        speedup: sync_cycles / async_cycles,
        sync_mcalls_per_s: ghz * 1000.0 / sync_cycles,
        async_mcalls_per_s: ghz * 1000.0 / async_cycles,
    }
}

/// The payload sweep used in EXPERIMENTS.md.
#[must_use]
pub fn sweep(payloads: &[usize], calls: usize) -> Vec<SyscallPoint> {
    payloads.iter().map(|&p| run_point(p, calls)).collect()
}

/// E4b: effect of the asynchronous in-flight window. The enclave-side
/// *simulated* cost per call is window-independent (the submissions are
/// identical); what the window buys is overlap with the host thread, so
/// this sweep reports **wall-clock** time per call across the real
/// lock-free queues and host thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// In-flight window depth.
    pub window: usize,
    /// Enclave cycles per call (simulated; window-independent by design).
    pub cycles_per_call: f64,
    /// Wall-clock nanoseconds per call across the real queues.
    pub wall_ns_per_call: f64,
}

/// Sweeps the async in-flight window for 64-byte writes.
#[must_use]
pub fn window_sweep(windows: &[usize], calls: usize) -> Vec<WindowPoint> {
    windows
        .iter()
        .map(|&window| {
            let host = Arc::new(MemHost::new());
            let mut shield = AsyncShield::new(host);
            let mut mem = enclave_mem();
            let fd = match shield
                .call(
                    &mut mem,
                    Syscall::Open {
                        path: "/w".into(),
                        create: true,
                    },
                )
                .expect("open")
            {
                SyscallRet::Fd(fd) => fd,
                other => panic!("unexpected open result {other:?}"),
            };
            let before = mem.cycles();
            let wall_start = std::time::Instant::now();
            let mut issued = 0usize;
            while issued < calls {
                let batch = window.min(calls - issued);
                for i in 0..batch {
                    shield
                        .submit(
                            &mut mem,
                            Syscall::Pwrite {
                                fd,
                                offset: ((issued + i) * 64) as u64,
                                data: vec![0u8; 64],
                            },
                        )
                        .expect("submit");
                }
                for _ in 0..batch {
                    shield.complete(&mut mem).expect("complete");
                }
                issued += batch;
            }
            WindowPoint {
                window,
                cycles_per_call: (mem.cycles() - before) as f64 / calls as f64,
                wall_ns_per_call: wall_start.elapsed().as_nanos() as f64 / calls as f64,
            }
        })
        .collect()
}

/// Default payload sizes (64 B – 64 KiB).
pub const PAYLOADS: &[usize] = &[64, 256, 1024, 4096, 16_384, 65_536];
