//! E16: streaming analytics over the switchless messaging plane — window
//! size x key cardinality x EPC pressure.
//!
//! Each cell deploys the full city pipelines of `securecloud-streaming`
//! (per-meter usage rollups, the reported-vs-actual loss join, per-feeder
//! power-quality rollups) on a fresh [`StreamPlane`], streams a seeded
//! smart-grid city through the sealed SCBR ingress, and reads the cost
//! model's accounting back out of the router enclave and every operator's
//! own memory simulator. The sweep crosses:
//!
//! * **window size** — longer windows hold more live accumulators;
//! * **key cardinality** — meters drive the per-meter operator's state
//!   (the 10^5..10^6-key dimension, scaled down for the harness);
//! * **EPC pressure** — shrunken enclave geometries move the *same*
//!   operator state from resident to paging to spilled.
//!
//! The expected shape is the trade-off curve of arXiv 2104.03731: flat
//! cycles/event while peak state fits the usable EPC, a knee as it
//! crosses, and explicit host I/O past the memtable budget. Cells are
//! independent and seeded, so the report — including every cell's FNV
//! digest over its sink results — is byte-identical at any `--jobs` count.
//!
//! [`StreamPlane`]: securecloud_streaming::pipeline::StreamPlane

use std::io;
use std::path::Path;

use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_streaming::pipeline::{CityConfig, CityPipelines, CitySpec};
use securecloud_streaming::window::WindowSpec;

/// Workload knobs for the sweep.
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    /// Tumbling window sizes, milliseconds.
    pub window_ms: Vec<u64>,
    /// Total meter counts (key cardinality of the per-meter operator).
    pub meters: Vec<usize>,
    /// Enclave geometries operator state is charged against, roomy first.
    pub geometries: Vec<MemoryGeometry>,
    /// Meters per feeder (feeders derive from the meter count).
    pub households_per_feeder: usize,
    /// Meter sampling interval, seconds.
    pub interval_secs: u64,
    /// Trace duration, seconds.
    pub duration_secs: u64,
    /// Events sealed per ingress batch frame.
    pub ingest_batch: usize,
    /// City seed (per-feeder seeds derive from it).
    pub seed: u64,
}

impl StreamingWorkload {
    /// Full-size sweep: 2 windows x 3 cardinalities x 2 geometries.
    #[must_use]
    pub fn full() -> Self {
        StreamingWorkload {
            window_ms: vec![900_000, 3_600_000],
            meters: vec![400, 1_600, 6_400],
            geometries: vec![small_epc(4 << 20, 1 << 20), small_epc(256 << 10, 64 << 10)],
            households_per_feeder: 40,
            interval_secs: 300,
            duration_secs: 3_600,
            ingest_batch: 256,
            seed: 11,
        }
    }

    /// CI-sized sweep with the same shape.
    #[must_use]
    pub fn smoke() -> Self {
        StreamingWorkload {
            window_ms: vec![900_000],
            meters: vec![160, 640],
            geometries: vec![small_epc(1 << 20, 256 << 10), small_epc(64 << 10, 16 << 10)],
            households_per_feeder: 20,
            interval_secs: 300,
            duration_secs: 3_600,
            ingest_batch: 256,
            seed: 11,
        }
    }
}

/// SGX1 line/page sizes with a scaled-down EPC (LLC a quarter of it), the
/// same shrinking the storage bench uses so paging behaves like the
/// full-size model at harness-sized working sets.
#[must_use]
pub fn small_epc(total: usize, reserved: usize) -> MemoryGeometry {
    MemoryGeometry {
        epc_total_bytes: total,
        epc_reserved_bytes: reserved,
        llc_bytes: total / 4,
        ..MemoryGeometry::sgx_v1()
    }
}

/// One cell of the window x meters x geometry grid.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingPoint {
    /// Tumbling window size, milliseconds.
    pub window_ms: u64,
    /// Meter count (per-meter operator key cardinality).
    pub meters: usize,
    /// Usable EPC the operators ran against, KiB.
    pub usable_epc_kib: u64,
    /// Events sealed into the plane.
    pub events: u64,
    /// Results delivered to the sealed sink (all three output streams).
    pub results: u64,
    /// Simulated throughput: thousand events per simulated second.
    pub kevents_per_s: f64,
    /// Simulated cycles (router enclave + every operator) per event.
    pub cycles_per_event: f64,
    /// Operator EPC faults per thousand events.
    pub faults_per_kevent: f64,
    /// Operator host I/O (reads + writes) per thousand events, KiB.
    pub host_kib_per_kevent: f64,
    /// High-water live operator state, KiB.
    pub peak_state_kib: f64,
    /// Peak state over usable EPC — the knee sits where this crosses 1.
    pub state_to_epc: f64,
    /// Feeders the loss join flagged...
    pub flagged_feeders: u64,
    /// ...and feeders actually hosting thieves (ground truth).
    pub theft_feeders: u64,
    /// Power-quality windows classified sag / swell.
    pub sag_windows: u64,
    /// See `sag_windows`.
    pub swell_windows: u64,
    /// FNV-1a digest over the cell's sink results, in delivery order.
    pub results_digest: u64,
}

fn run_cell(
    window_ms: u64,
    meters: usize,
    geometry: MemoryGeometry,
    workload: &StreamingWorkload,
) -> StreamingPoint {
    let costs = CostModel::sgx_v1();
    let feeders = (meters / workload.households_per_feeder).max(1);
    let config = CityConfig {
        spec: CitySpec {
            feeders,
            households_per_feeder: workload.households_per_feeder,
            interval_secs: workload.interval_secs,
            duration_secs: workload.duration_secs,
            seed: workload.seed,
            ..CitySpec::default()
        },
        windows: WindowSpec::tumbling(window_ms).expect("non-zero window"),
        geometry,
        ingest_batch: workload.ingest_batch,
        ..CityConfig::default()
    };
    let mut pipelines = CityPipelines::deploy(config).expect("plane deploys");
    let report = pipelines.run().expect("city run completes");

    let events = report.events_ingested;
    let cycles = pipelines.plane().router_cycles() + pipelines.operator_cycles();
    let (faults, host_read, host_write) = pipelines.operator_paging();
    let peak_state = pipelines.peak_state_bytes();
    let usable_epc = (geometry.epc_total_bytes - geometry.epc_reserved_bytes) as u64;
    let sim_secs = costs.cycles_to_duration(cycles).as_secs_f64();
    let per_kevent = events as f64 / 1_000.0;

    StreamingPoint {
        window_ms,
        meters,
        usable_epc_kib: usable_epc >> 10,
        events,
        results: pipelines.plane().results().len() as u64,
        kevents_per_s: if sim_secs > 0.0 {
            events as f64 / sim_secs / 1_000.0
        } else {
            0.0
        },
        cycles_per_event: cycles as f64 / events as f64,
        faults_per_kevent: faults as f64 / per_kevent,
        host_kib_per_kevent: (host_read + host_write) as f64 / 1024.0 / per_kevent,
        peak_state_kib: peak_state as f64 / 1024.0,
        state_to_epc: peak_state as f64 / usable_epc as f64,
        flagged_feeders: report.flagged_feeders.len() as u64,
        theft_feeders: report.theft_feeders.len() as u64,
        sag_windows: report.sag_windows,
        swell_windows: report.swell_windows,
        results_digest: report.results_digest,
    }
}

/// Runs the grid serially.
#[must_use]
pub fn sweep(workload: &StreamingWorkload) -> Vec<StreamingPoint> {
    sweep_jobs(workload, 1)
}

/// Runs the grid fanned across up to `jobs` worker threads. Every cell
/// deploys its own plane, enclaves, and simulators, so results come back
/// byte-identical in row-major order regardless of the worker count.
#[must_use]
pub fn sweep_jobs(workload: &StreamingWorkload, jobs: usize) -> Vec<StreamingPoint> {
    let cells: Vec<(u64, usize, MemoryGeometry)> = workload
        .window_ms
        .iter()
        .flat_map(|&w| {
            workload
                .meters
                .iter()
                .flat_map(move |&m| workload.geometries.iter().map(move |&g| (w, m, g)))
        })
        .collect();
    crate::pool::run_ordered(cells, jobs, |(window_ms, meters, geometry)| {
        run_cell(window_ms, meters, geometry, workload)
    })
}

/// The whole sweep, with enough workload echo to interpret the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingReport {
    /// Meters per feeder used to derive feeder counts.
    pub households_per_feeder: usize,
    /// Meter sampling interval, seconds.
    pub interval_secs: u64,
    /// Trace duration, seconds.
    pub duration_secs: u64,
    /// One point per (window, meters, geometry) cell, row-major.
    pub points: Vec<StreamingPoint>,
}

/// Runs the sweep and wraps it in a report.
#[must_use]
pub fn report_jobs(workload: &StreamingWorkload, jobs: usize) -> StreamingReport {
    StreamingReport {
        households_per_feeder: workload.households_per_feeder,
        interval_secs: workload.interval_secs,
        duration_secs: workload.duration_secs,
        points: sweep_jobs(workload, jobs),
    }
}

impl StreamingReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde). Digests are hex strings so consumers never round them
    /// through a double.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"streaming\",\n");
        out.push_str(&format!(
            "  \"city\": {{\"households_per_feeder\": {}, \"interval_secs\": {}, \"duration_secs\": {}}},\n",
            self.households_per_feeder, self.interval_secs, self.duration_secs
        ));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window_ms\": {}, \"meters\": {}, \"usable_epc_kib\": {}, \
                 \"events\": {}, \"results\": {}, \"kevents_per_s\": {:.2}, \
                 \"cycles_per_event\": {:.1}, \"faults_per_kevent\": {:.2}, \
                 \"host_kib_per_kevent\": {:.3}, \"peak_state_kib\": {:.1}, \
                 \"state_to_epc\": {:.3}, \"flagged_feeders\": {}, \
                 \"theft_feeders\": {}, \"sag_windows\": {}, \"swell_windows\": {}, \
                 \"results_digest\": \"{:016x}\"}}",
                p.window_ms,
                p.meters,
                p.usable_epc_kib,
                p.events,
                p.results,
                p.kevents_per_s,
                p.cycles_per_event,
                p.faults_per_kevent,
                p.host_kib_per_kevent,
                p.peak_state_kib,
                p.state_to_epc,
                p.flagged_feeders,
                p.theft_feeders,
                p.sag_windows,
                p.swell_windows,
                p.results_digest
            ));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized workload with the smoke sweep's shape.
    fn tiny_workload() -> StreamingWorkload {
        StreamingWorkload {
            window_ms: vec![900_000],
            meters: vec![200],
            geometries: vec![small_epc(1 << 20, 256 << 10), small_epc(16 << 10, 4 << 10)],
            households_per_feeder: 10,
            interval_secs: 300,
            duration_secs: 1_800,
            ingest_batch: 64,
            seed: 11,
        }
    }

    #[test]
    fn epc_pressure_shows_the_knee() {
        let report = report_jobs(&tiny_workload(), 1);
        assert_eq!(report.points.len(), 2);
        let roomy = &report.points[0];
        let tight = &report.points[1];
        assert_eq!(roomy.meters, tight.meters);
        assert!(roomy.events > 0 && roomy.results > 0);
        // Identical city, identical windows: the streaming *output* does
        // not depend on the enclave geometry...
        assert_eq!(roomy.results_digest, tight.results_digest);
        assert_eq!(roomy.events, tight.events);
        // ...but the tight EPC pays for it in faults and cycles.
        assert!(tight.state_to_epc > roomy.state_to_epc);
        assert!(
            tight.faults_per_kevent > roomy.faults_per_kevent,
            "shrinking the EPC under the same state must fault more \
             ({} vs {})",
            tight.faults_per_kevent,
            roomy.faults_per_kevent
        );
        assert!(tight.cycles_per_event > roomy.cycles_per_event);
    }

    #[test]
    fn sweep_is_byte_identical_across_job_counts() {
        let workload = tiny_workload();
        let serial = report_jobs(&workload, 1);
        let parallel = report_jobs(&workload, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn json_report_shape() {
        let report = report_jobs(&tiny_workload(), 2);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"streaming\""));
        assert!(json.contains("\"results_digest\""));
        assert!(json.contains("\"state_to_epc\""));
        assert!(json.ends_with("}\n"));
    }
}
