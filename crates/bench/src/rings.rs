//! E15: the switchless enclave runtime — shared-memory syscall rings and
//! the in-enclave cooperative executor versus the transition-per-call
//! synchronous shield (DESIGN.md §14).
//!
//! Each point runs `workers` cooperative tasks inside one executor; every
//! task opens its own shielded file, issues a run of pwrites, and closes
//! it. The synchronous baseline performs the identical syscall sequence
//! through [`SyncShield`], paying a full ECALL/OCALL pair per call. The
//! ring plane pays only slot copies ([`CostModel::ring_slot_cycles`]) and
//! never transitions, so `ring_cycles_per_op` stays below
//! [`CostModel::transition_pair`] regardless of payload — that inequality
//! is the experiment's "~0 transitions per op" witness.
//!
//! Determinism contract: results and telemetry are byte-identical for any
//! `--jobs N` — each point runs on a private telemetry bundle, absorbed
//! into the shared one in point order.

use securecloud_scone::executor::Executor;
use securecloud_scone::hostos::{MemHost, Syscall, SyscallRet};
use securecloud_scone::syscall::{AsyncShield, SyncShield};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;
use securecloud_telemetry::Telemetry;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Sweep configuration: the cross product of depths × payloads × workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingsConfig {
    /// Submission/completion ring depths (slots).
    pub depths: Vec<usize>,
    /// Pwrite payload sizes in bytes.
    pub payload_bytes: Vec<usize>,
    /// Cooperative tasks sharing the executor.
    pub workers: Vec<usize>,
    /// Total pwrites per point, split evenly across workers.
    pub ops: usize,
}

impl RingsConfig {
    /// The full sweep recorded in EXPERIMENTS.md.
    #[must_use]
    pub fn full() -> Self {
        RingsConfig {
            depths: vec![1, 8, 64],
            payload_bytes: vec![64, 512, 4096],
            workers: vec![1, 4, 16],
            ops: 384,
        }
    }

    /// A reduced sweep for CI smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        RingsConfig {
            depths: vec![1, 8, 64],
            payload_bytes: vec![64, 512],
            workers: vec![1, 4],
            ops: 96,
        }
    }
}

/// Result of one (depth, payload, workers) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingsPoint {
    /// Ring depth in slots.
    pub depth: usize,
    /// Pwrite payload in bytes.
    pub payload_bytes: usize,
    /// Cooperative tasks in the executor.
    pub workers: usize,
    /// Syscalls issued per plane (opens + pwrites + closes).
    pub syscalls: u64,
    /// Enclave cycles per syscall, synchronous shield.
    pub sync_cycles_per_op: f64,
    /// Enclave cycles per syscall, ring plane.
    pub ring_cycles_per_op: f64,
    /// sync / ring speedup.
    pub speedup: f64,
    /// Ring-plane throughput in kilo-ops/s of simulated time.
    pub ring_kops_per_s: f64,
    /// Enclave transitions per syscall on the sync plane (always 1: the
    /// shield charges one ECALL/OCALL pair per call by construction).
    pub sync_transitions_per_op: f64,
    /// Enclave transitions per syscall on the ring plane (always 0: the
    /// servicer drains submissions without an enclave exit).
    pub ring_transitions_per_op: f64,
    /// Executor parks on the completion signal.
    pub parks: u64,
    /// Wakes that found no completion (deterministic servicer: ~0).
    pub spurious_wakes: u64,
}

fn enclave_mem() -> MemorySim {
    MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1())
}

/// Deterministic per-worker payload so host file contents are a pure
/// function of the workload (the property tests compare them bytewise).
fn payload(bytes: usize, worker: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(31).wrapping_add(worker * 17) % 251) as u8)
        .collect()
}

fn expect_fd(ret: &SyscallRet) -> u64 {
    match ret {
        SyscallRet::Fd(fd) => *fd,
        other => panic!("unexpected open result {other:?}"),
    }
}

/// Runs the identical workload through the synchronous shield; returns
/// (total cycles, syscall count, host) for comparison.
fn run_sync_plane(
    payload_bytes: usize,
    workers: usize,
    ops_per_worker: usize,
) -> (u64, u64, Arc<MemHost>) {
    let host = Arc::new(MemHost::new());
    let shield = SyncShield::new(host.clone());
    let mut mem = enclave_mem();
    let before = mem.cycles();
    for worker in 0..workers {
        let ret = shield
            .call(
                &mut mem,
                &Syscall::Open {
                    path: format!("/bench/w{worker}"),
                    create: true,
                },
            )
            .expect("open");
        let fd = expect_fd(&ret);
        let data = payload(payload_bytes, worker);
        for i in 0..ops_per_worker {
            shield
                .call(
                    &mut mem,
                    &Syscall::Pwrite {
                        fd,
                        offset: (i * payload_bytes) as u64,
                        data: data.clone(),
                    },
                )
                .expect("pwrite");
        }
        shield
            .call(&mut mem, &Syscall::Close { fd })
            .expect("close");
    }
    (mem.cycles() - before, host.call_count(), host)
}

/// Runs the workload as `workers` cooperative tasks over the ring plane;
/// returns (cycles, stats, spurious wakes, host).
fn run_ring_plane(
    depth: usize,
    payload_bytes: usize,
    workers: usize,
    ops_per_worker: usize,
    telemetry: Option<&Telemetry>,
) -> (
    u64,
    securecloud_scone::executor::ExecStats,
    u64,
    Arc<MemHost>,
) {
    let host = Arc::new(MemHost::new());
    let shield = AsyncShield::switchless(host.clone(), depth);
    let mut exec = Executor::new(shield);
    let local = Arc::new(Telemetry::new());
    exec.set_telemetry(local.clone());
    for worker in 0..workers {
        let handle = exec.handle();
        let data = payload(payload_bytes, worker);
        exec.spawn(async move {
            let ret = handle
                .syscall(Syscall::Open {
                    path: format!("/bench/w{worker}"),
                    create: true,
                })
                .await
                .expect("open");
            let fd = expect_fd(&ret);
            for i in 0..ops_per_worker {
                handle
                    .syscall(Syscall::Pwrite {
                        fd,
                        offset: (i * data.len()) as u64,
                        data: data.clone(),
                    })
                    .await
                    .expect("pwrite");
            }
            handle.syscall(Syscall::Close { fd }).await.expect("close");
        });
    }
    let mut mem = enclave_mem();
    let before = mem.cycles();
    let stats = exec.run(&mut mem).expect("executor run");
    let cycles = mem.cycles() - before;
    let spurious = local
        .counter_with("securecloud_scone_ring_spurious_wakes_total", &[])
        .value();
    if let Some(shared) = telemetry {
        shared.absorb(&local);
    }
    (cycles, stats, spurious, host)
}

/// Measures one cell on both planes.
#[must_use]
pub fn run_point(
    depth: usize,
    payload_bytes: usize,
    workers: usize,
    ops: usize,
    telemetry: Option<&Telemetry>,
) -> RingsPoint {
    let ops_per_worker = (ops / workers).max(1);
    let ghz = CostModel::sgx_v1().cpu_ghz;

    let (sync_cycles, sync_calls, sync_host) =
        run_sync_plane(payload_bytes, workers, ops_per_worker);
    let (ring_cycles, stats, spurious, ring_host) =
        run_ring_plane(depth, payload_bytes, workers, ops_per_worker, telemetry);
    assert_eq!(
        sync_calls, stats.syscalls,
        "planes must issue identical syscall sequences"
    );
    for worker in 0..workers {
        let path = format!("/bench/w{worker}");
        assert_eq!(
            sync_host.raw_file(&path),
            ring_host.raw_file(&path),
            "planes must leave identical host bytes"
        );
    }

    let ops_f = sync_calls as f64;
    let sync_per = sync_cycles as f64 / ops_f;
    let ring_per = ring_cycles as f64 / ops_f;
    RingsPoint {
        depth,
        payload_bytes,
        workers,
        syscalls: sync_calls,
        sync_cycles_per_op: sync_per,
        ring_cycles_per_op: ring_per,
        speedup: sync_per / ring_per,
        ring_kops_per_s: ghz * 1e6 / ring_per,
        sync_transitions_per_op: 1.0,
        ring_transitions_per_op: 0.0,
        parks: stats.parks,
        spurious_wakes: spurious,
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RingsReport {
    /// Total pwrites requested per point.
    pub ops: usize,
    /// One point per (depth, payload, workers) cell, depth-major.
    pub points: Vec<RingsPoint>,
}

/// Runs the sweep with `jobs` worker threads. Results and telemetry are
/// byte-identical for any job count: each point runs on a private
/// telemetry bundle, absorbed into `telemetry` in point order.
#[must_use]
pub fn sweep_jobs(config: &RingsConfig, jobs: usize, telemetry: Option<&Telemetry>) -> RingsReport {
    let cells: Vec<(usize, usize, usize)> = config
        .depths
        .iter()
        .flat_map(|&depth| {
            config.payload_bytes.iter().flat_map(move |&payload| {
                config
                    .workers
                    .iter()
                    .map(move |&workers| (depth, payload, workers))
            })
        })
        .collect();
    let ops = config.ops;
    let instrument = telemetry.is_some();
    let results = crate::pool::run_ordered(cells, jobs, move |(depth, payload, workers)| {
        let local = instrument.then(Telemetry::new);
        let point = run_point(depth, payload, workers, ops, local.as_ref());
        (point, local)
    });
    let points = results
        .into_iter()
        .map(|(point, local)| {
            if let (Some(shared), Some(local)) = (telemetry, local) {
                shared.absorb(&local);
            }
            point
        })
        .collect();
    RingsReport { ops, points }
}

impl RingsReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"rings\",\n");
        out.push_str(&format!("  \"ops\": {},\n", self.ops));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"depth\": {}, \"payload_bytes\": {}, \"workers\": {}, \"syscalls\": {}, \
                 \"sync_cycles_per_op\": {:.0}, \"ring_cycles_per_op\": {:.0}, \
                 \"speedup\": {:.2}, \"ring_kops_per_s\": {:.1}, \
                 \"sync_transitions_per_op\": {:.1}, \"ring_transitions_per_op\": {:.1}, \
                 \"parks\": {}, \"spurious_wakes\": {}}}",
                p.depth,
                p.payload_bytes,
                p.workers,
                p.syscalls,
                p.sync_cycles_per_op,
                p.ring_cycles_per_op,
                p.speedup,
                p.ring_kops_per_s,
                p.sync_transitions_per_op,
                p.ring_transitions_per_op,
                p.parks,
                p.spurious_wakes,
            ));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RingsConfig {
        RingsConfig {
            depths: vec![1, 8, 64],
            payload_bytes: vec![64, 4096],
            workers: vec![1, 4],
            ops: 64,
        }
    }

    #[test]
    fn ring_plane_never_pays_a_transition() {
        let pair = CostModel::sgx_v1().transition_pair() as f64;
        let report = sweep_jobs(&tiny(), 1, None);
        for p in &report.points {
            // The sync plane pays at least one full ECALL/OCALL pair per
            // op; the ring plane's whole per-op budget stays under one
            // pair — the "~0 transitions" witness.
            assert!(p.sync_cycles_per_op > pair, "{p:?}");
            assert!(p.ring_cycles_per_op < pair, "{p:?}");
            assert!(p.speedup > 1.0, "{p:?}");
            assert_eq!(p.ring_transitions_per_op, 0.0);
        }
    }

    #[test]
    fn ring_p99_stays_flat_as_payload_grows() {
        // On the sync plane the per-op cost is transition-dominated but
        // still grows with payload copies; on the ring plane the slot
        // copy dominates, so the 64 B → 4 KiB cost ratio must stay far
        // below the sync plane's absolute transition overhead.
        let report = sweep_jobs(&tiny(), 1, None);
        let per_op = |depth: usize, payload: usize| {
            report
                .points
                .iter()
                .find(|p| p.depth == depth && p.payload_bytes == payload && p.workers == 4)
                .map(|p| p.ring_cycles_per_op)
                .expect("point present")
        };
        let small = per_op(64, 64);
        let large = per_op(64, 4096);
        let pair = CostModel::sgx_v1().transition_pair() as f64;
        assert!(large - small < pair, "growth {small} -> {large}");
    }

    #[test]
    fn deterministic_servicer_reports_zero_spurious_wakes() {
        let report = sweep_jobs(&tiny(), 1, None);
        for p in &report.points {
            assert_eq!(p.spurious_wakes, 0, "{p:?}");
        }
    }

    #[test]
    fn sweep_is_deterministic_across_job_counts() {
        let t1 = Telemetry::new();
        let t8 = Telemetry::new();
        let serial = sweep_jobs(&tiny(), 1, Some(&t1));
        let parallel = sweep_jobs(&tiny(), 8, Some(&t8));
        assert_eq!(serial, parallel);
        assert_eq!(
            securecloud_telemetry::export::prometheus_text(t1.registry()),
            securecloud_telemetry::export::prometheus_text(t8.registry())
        );
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}
