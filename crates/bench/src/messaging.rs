//! E11: batched messaging on the SCBR sealed path.
//!
//! Measures what batching buys on the secure router: a batch of N
//! publications arrives as **one** AEAD frame, is opened and matched
//! inside **one** ECALL/OCALL pair, and fans out one sealed notification
//! frame per subscriber — versus N single publishes, each paying its own
//! enclave transition, its own nonce schedule, and its own GHASH setup.
//!
//! Durations are simulated cycles from [`CostModel::sgx_v1`], so every
//! point is deterministic and hardware-independent; the per-batch publish
//! latency feeds an ordinary telemetry histogram, and the reported p99 is
//! that histogram's 99th-percentile bucket bound.

use securecloud_scbr::secure::{RouterClient, SecureRouter};
use securecloud_scbr::types::{Op, Predicate, Publication, Subscription, Value};
use securecloud_sgx::costs::CostModel;
use securecloud_sgx::enclave::{EnclaveConfig, Platform};
use securecloud_telemetry::{Histogram, Telemetry};
use std::io;
use std::path::Path;

/// Sizing knobs for the messaging sweep.
#[derive(Debug, Clone)]
pub struct MessagingConfig {
    /// Publications per sealed frame; must include 1 (the single-message
    /// baseline every other batch size is compared against).
    pub batch_sizes: Vec<usize>,
    /// Approximate attribute-payload size per publication, bytes.
    pub payload_bytes: Vec<usize>,
    /// Publications per sweep point.
    pub messages: usize,
}

impl MessagingConfig {
    /// Full-size run.
    #[must_use]
    pub fn full() -> Self {
        MessagingConfig {
            batch_sizes: vec![1, 8, 64],
            payload_bytes: vec![64, 512, 4096],
            messages: 1024,
        }
    }

    /// CI-sized run: same batch shape (the 64-vs-1 speedup must still be
    /// visible), fewer messages and payload sizes.
    #[must_use]
    pub fn smoke() -> Self {
        MessagingConfig {
            batch_sizes: vec![1, 8, 64],
            payload_bytes: vec![64, 512],
            messages: 128,
        }
    }
}

/// One (batch size, payload size) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MessagingPoint {
    /// Call plane the router matched on: `"sync"` (every frame pays an
    /// ECALL/OCALL pair) or `"switchless"` (ring-slot pairs, no
    /// transitions).
    pub plane: &'static str,
    /// Publications per sealed frame (1 = the single-publish path).
    pub batch: usize,
    /// Approximate attribute-payload size per publication, bytes.
    pub payload_bytes: usize,
    /// Publications pushed through the router.
    pub messages: usize,
    /// Publications delivered to the subscriber (must equal `messages`).
    pub delivered: u64,
    /// Simulated router throughput, messages per second.
    pub msgs_per_s: f64,
    /// 99th-percentile per-frame publish latency (histogram bucket upper
    /// bound), simulated microseconds.
    pub p99_us: u64,
    /// Enclave transitions per publication, measured from the enclave's
    /// own ECALL counter (~0 on the switchless plane).
    pub transitions_per_msg: f64,
}

/// A deterministic, incompressible-ish attribute blob of roughly `bytes`.
fn blob(bytes: usize) -> String {
    (0..bytes)
        .map(|i| char::from(b'a' + (i.wrapping_mul(31) % 26) as u8))
        .collect()
}

fn run_point(
    batch: usize,
    payload_bytes: usize,
    messages: usize,
    switchless: bool,
    telemetry: Option<&Telemetry>,
) -> MessagingPoint {
    assert!(batch >= 1, "batch size must be at least 1");
    let costs = CostModel::sgx_v1();
    let platform = Platform::new();
    let enclave = platform
        .launch(EnclaveConfig::new("scbr-bench", b"router code"))
        .expect("fresh platform launches");
    let mut router = SecureRouter::new(enclave, Some("topic"));
    router.set_switchless(switchless);
    // A private registry counts this point's enclave transitions; it never
    // leaks into the shared telemetry, so the exported snapshot stays
    // byte-identical to the pre-measurement stream.
    let transition_counters = Telemetry::new();
    router.enclave_mut().set_telemetry(&transition_counters);
    let mut subscriber = RouterClient::new();
    let mut publisher = RouterClient::new();
    let sub_client = router.register(&subscriber.public_key());
    let pub_client = router.register(&publisher.public_key());
    subscriber.complete_exchange(&router.public_key());
    publisher.complete_exchange(&router.public_key());
    let sealed = subscriber
        .seal_subscription(&Subscription::new(vec![Predicate::new(
            "topic",
            Op::Eq,
            Value::Int(1),
        )]))
        .expect("exchange completed");
    router
        .subscribe_sealed(sub_client, &sealed)
        .expect("fresh sequence");

    let body = blob(payload_bytes);
    let publications: Vec<Publication> = (0..messages)
        .map(|i| {
            Publication::new()
                .with("topic", Value::Int(1))
                .with("seq", Value::Int(i as i64))
                .with("body", Value::Str(body.clone()))
        })
        .collect();

    let plane = if switchless { "switchless" } else { "sync" };
    let batch_label = batch.to_string();
    let payload_label = payload_bytes.to_string();
    let latency = match telemetry {
        Some(t) => t.histogram_with(
            "securecloud_bench_messaging_publish_us",
            &[
                ("batch", &batch_label),
                ("payload_bytes", &payload_label),
                ("plane", plane),
            ],
        ),
        None => Histogram::new(),
    };

    let mut delivered = 0u64;
    let started = router.enclave_mut().memory().cycles();
    for chunk in publications.chunks(batch) {
        let before = router.enclave_mut().memory().cycles();
        if batch == 1 {
            let sealed = publisher
                .seal_publication(&chunk[0])
                .expect("exchange completed");
            let notifications = router
                .publish_sealed(pub_client, &sealed)
                .expect("sequenced publish");
            for (_, framed) in notifications {
                subscriber
                    .open_notification(&framed)
                    .expect("authentic notification");
                delivered += 1;
            }
        } else {
            let sealed = publisher
                .seal_publication_batch(chunk)
                .expect("exchange completed");
            let notifications = router
                .publish_sealed_batch(pub_client, &sealed)
                .expect("sequenced publish");
            for (_, framed) in notifications {
                delivered += subscriber
                    .open_notification_batch(&framed)
                    .expect("authentic notification")
                    .len() as u64;
            }
        }
        let frame_cycles = router.enclave_mut().memory().cycles() - before;
        latency.observe((frame_cycles as f64 / (costs.cpu_ghz * 1e3)) as u64);
    }
    let total_cycles = router.enclave_mut().memory().cycles() - started;
    let secs = (total_cycles as f64 / (costs.cpu_ghz * 1e9)).max(1e-12);
    let ecalls = transition_counters
        .counter("securecloud_sgx_ecalls_total")
        .value();

    MessagingPoint {
        plane,
        batch,
        payload_bytes,
        messages,
        delivered,
        msgs_per_s: messages as f64 / secs,
        p99_us: latency.percentile_upper_bound(99).unwrap_or(0),
        transitions_per_msg: ecalls as f64 / messages as f64,
    }
}

/// Runs the sweep on the classic transition-per-frame plane. Results and
/// telemetry are byte-identical for any job count: each point runs on a
/// private telemetry bundle, absorbed into `telemetry` in point order.
#[must_use]
pub fn sweep_jobs(
    config: &MessagingConfig,
    jobs: usize,
    telemetry: Option<&Telemetry>,
) -> MessagingReport {
    sweep_jobs_on(config, jobs, telemetry, false)
}

/// Runs the sweep on either call plane: `switchless = true` routes every
/// router match through the shared-memory ring plane
/// ([`SecureRouter::set_switchless`]) instead of per-frame ECALL/OCALL
/// pairs. Determinism contract as [`sweep_jobs`].
#[must_use]
pub fn sweep_jobs_on(
    config: &MessagingConfig,
    jobs: usize,
    telemetry: Option<&Telemetry>,
    switchless: bool,
) -> MessagingReport {
    let cells: Vec<(usize, usize)> = config
        .payload_bytes
        .iter()
        .flat_map(|&payload| {
            config
                .batch_sizes
                .iter()
                .map(move |&batch| (batch, payload))
        })
        .collect();
    let messages = config.messages;
    let instrument = telemetry.is_some();
    let results = crate::pool::run_ordered(cells, jobs, move |(batch, payload)| {
        let local = instrument.then(Telemetry::new);
        let point = run_point(batch, payload, messages, switchless, local.as_ref());
        (point, local)
    });
    let points = results
        .into_iter()
        .map(|(point, local)| {
            if let (Some(shared), Some(local)) = (telemetry, local) {
                shared.absorb(&local);
            }
            point
        })
        .collect();
    MessagingReport {
        plane: if switchless { "switchless" } else { "sync" },
        messages,
        points,
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MessagingReport {
    /// Call plane every point ran on (`"sync"` or `"switchless"`).
    pub plane: &'static str,
    /// Publications per point.
    pub messages: usize,
    /// One point per (payload, batch) cell, payload-major.
    pub points: Vec<MessagingPoint>,
}

impl MessagingReport {
    /// Throughput of `batch` relative to the single-publish baseline at
    /// the same payload size.
    #[must_use]
    pub fn speedup(&self, payload_bytes: usize, batch: usize) -> Option<f64> {
        let rate = |b: usize| {
            self.points
                .iter()
                .find(|p| p.payload_bytes == payload_bytes && p.batch == b)
                .map(|p| p.msgs_per_s)
        };
        Some(rate(batch)? / rate(1)?)
    }

    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"messaging\",\n");
        out.push_str(&format!("  \"plane\": \"{}\",\n", self.plane));
        out.push_str(&format!("  \"messages\": {},\n", self.messages));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"batch\": {}, \"payload_bytes\": {}, \"msgs_per_s\": {:.0}, \"p99_us\": {}, \"transitions_per_msg\": {:.3}",
                p.batch, p.payload_bytes, p.msgs_per_s, p.p99_us, p.transitions_per_msg
            ));
            if let Some(speedup) = self.speedup(p.payload_bytes, p.batch) {
                out.push_str(&format!(", \"speedup_vs_single\": {speedup:.2}"));
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MessagingConfig {
        MessagingConfig {
            batch_sizes: vec![1, 8, 64],
            payload_bytes: vec![64],
            messages: 128,
        }
    }

    #[test]
    fn batching_amortizes_transitions_at_least_threefold() {
        let report = sweep_jobs(&tiny(), 1, None);
        for point in &report.points {
            assert_eq!(
                point.delivered, point.messages as u64,
                "batch {} dropped deliveries",
                point.batch
            );
            assert!(point.msgs_per_s > 0.0);
        }
        let speedup = report.speedup(64, 64).expect("both points present");
        assert!(
            speedup >= 3.0,
            "batch 64 must amortize to >= 3x the single path, got {speedup:.2}x"
        );
    }

    #[test]
    fn sweep_is_deterministic_across_job_counts() {
        let serial = sweep_jobs(&tiny(), 1, None);
        let parallel = sweep_jobs(&tiny(), 4, None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn switchless_plane_eliminates_transitions() {
        let sync = sweep_jobs_on(&tiny(), 1, None, false);
        let switchless = sweep_jobs_on(&tiny(), 1, None, true);
        for (s, r) in sync.points.iter().zip(&switchless.points) {
            assert_eq!(r.delivered, s.delivered, "planes must route identically");
            assert_eq!(
                r.transitions_per_msg, 0.0,
                "switchless batch {} still paid transitions",
                r.batch
            );
            assert!(
                s.transitions_per_msg > 0.0,
                "sync batch {} should measure its transitions",
                s.batch
            );
        }
        // With transitions gone, the single-publish path stops being
        // transition-bound: the batch-64 vs batch-1 throughput knee
        // flattens substantially relative to the sync plane.
        let knee = |report: &MessagingReport| report.speedup(64, 64).expect("points present");
        assert!(
            knee(&switchless) < knee(&sync) / 2.0,
            "switchless knee {:.2}x vs sync knee {:.2}x",
            knee(&switchless),
            knee(&sync)
        );
        // And batch-1 publishes get faster in absolute terms.
        let single = |report: &MessagingReport| {
            report
                .points
                .iter()
                .find(|p| p.batch == 1)
                .expect("batch 1 present")
                .msgs_per_s
        };
        assert!(single(&switchless) > 2.0 * single(&sync));
    }

    #[test]
    fn switchless_sweep_is_deterministic_across_job_counts() {
        let serial = sweep_jobs_on(&tiny(), 1, None, true);
        let parallel = sweep_jobs_on(&tiny(), 4, None, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn report_serialises_with_speedups() {
        let report = sweep_jobs(
            &MessagingConfig {
                batch_sizes: vec![1, 8],
                payload_bytes: vec![64],
                messages: 32,
            },
            1,
            None,
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"messaging\""));
        assert!(json.contains("\"batch\": 8"));
        assert!(json.contains("\"speedup_vs_single\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn p99_comes_from_histogram_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1_000_000);
        // 99th percentile lands in the bucket holding the 10s.
        assert_eq!(
            h.percentile_upper_bound(99),
            Some(Histogram::bucket_upper_bound(4))
        );
        assert_eq!(Histogram::new().percentile_upper_bound(99), None);
    }
}
