//! A small ordered fan-out pool for embarrassingly parallel sweeps.
//!
//! Sweep points in this harness are independent by construction: each one
//! builds its own platform, seeds its own RNG, and runs on its own virtual
//! clock. [`run_ordered`] exploits that by fanning points across OS threads
//! while returning results **in input order**, so callers that fold results
//! (telemetry absorption, report rows) observe exactly the sequence a serial
//! run would have produced. Parallelism changes wall-clock time and nothing
//! else.

use crossbeam::channel;

/// The default worker count: the machine's available parallelism, falling
/// back to 1 when it cannot be queried.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item, using up to `jobs` worker threads, and returns
/// the results in input order.
///
/// With `jobs <= 1` the items run serially on the calling thread — no
/// threads, no channels — so a single code path serves both the reference
/// serial mode and the parallel mode. Worker threads are scoped: the call
/// returns only after every worker has finished.
///
/// # Panics
/// Propagates a panic from `f` after the scope unwinds, like the serial
/// loop would.
pub fn run_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let total = items.len();
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    for task in items.into_iter().enumerate() {
        assert!(
            task_tx.send(task).is_ok(),
            "task channel open while enqueuing"
        );
    }
    drop(task_tx);

    let workers = jobs.min(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((index, item)) = task_rx.recv() {
                    let result = f(item);
                    if result_tx.send((index, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
        while let Ok((index, result)) = result_rx.recv() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task produced a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_results_match_in_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial = run_ordered(items.clone(), 1, |x| x * x);
        let parallel = run_ordered(items, 4, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 100);
    }

    #[test]
    fn handles_more_jobs_than_items() {
        let out = run_ordered(vec![1u32, 2], 16, |x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out = run_ordered(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
