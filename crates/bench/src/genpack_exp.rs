//! E3: GenPack energy savings versus non-generational schedulers (§VI:
//! "up to 23% energy savings ... for typical data-center workloads").

use securecloud_genpack::schedulers::{
    FirstFitScheduler, GenPackScheduler, RandomScheduler, Scheduler, SpreadScheduler,
};
use securecloud_genpack::sim::{simulate, SimConfig, SimResult};
use securecloud_genpack::workload::WorkloadConfig;

/// Parameters of one energy-comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyExperiment {
    /// Cluster size.
    pub servers: usize,
    /// Trace duration in hours.
    pub hours: u64,
    /// Short/batch job churn per hour.
    pub churn_per_hour: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for EnergyExperiment {
    fn default() -> Self {
        EnergyExperiment {
            servers: 60,
            hours: 24,
            churn_per_hour: 150.0,
            seed: 1,
        }
    }
}

/// Result bundle: one [`SimResult`] per scheduler plus derived savings.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyComparison {
    /// Per-scheduler results (random, spread, first-fit, genpack).
    pub results: Vec<SimResult>,
    /// GenPack savings vs the strongest baseline (first-fit), percent.
    pub savings_vs_best_baseline: f64,
    /// GenPack savings vs spread, percent.
    pub savings_vs_spread: f64,
}

/// Runs all four schedulers over the same trace.
#[must_use]
pub fn run(experiment: EnergyExperiment) -> EnergyComparison {
    let workload = WorkloadConfig {
        duration: experiment.hours * 3600,
        churn_per_hour: experiment.churn_per_hour,
        system_services: experiment.servers / 2,
        long_running: (experiment.servers * 4) / 3,
        seed: experiment.seed,
        ..WorkloadConfig::default()
    };
    let trace = workload.generate();
    let config = SimConfig {
        servers: experiment.servers,
        ..SimConfig::default()
    };
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RandomScheduler::new(experiment.seed)),
        Box::new(SpreadScheduler),
        Box::new(FirstFitScheduler),
        Box::new(GenPackScheduler::new()),
    ];
    let results: Vec<SimResult> = schedulers
        .iter_mut()
        .map(|s| simulate(s.as_mut(), &trace, config))
        .collect();
    let genpack = results.last().expect("four schedulers ran").clone();
    let first_fit = &results[2];
    let spread = &results[1];
    EnergyComparison {
        savings_vs_best_baseline: genpack.savings_vs(first_fit),
        savings_vs_spread: genpack.savings_vs(spread),
        results,
    }
}

/// E3c: savings as a function of workload churn — substantiating the
/// paper's "up to 23 %": the saving depends on how much consolidation
/// opportunity the workload offers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// Short/batch arrivals per hour.
    pub churn_per_hour: f64,
    /// GenPack energy, kWh.
    pub genpack_kwh: f64,
    /// Best-baseline (first-fit) energy, kWh.
    pub baseline_kwh: f64,
    /// Savings vs the best baseline, percent.
    pub savings_percent: f64,
}

/// Sweeps churn rates at a fixed cluster size.
#[must_use]
pub fn churn_sweep(churns: &[f64], servers: usize, hours: u64) -> Vec<ChurnPoint> {
    churns
        .iter()
        .map(|&churn_per_hour| {
            let comparison = run(EnergyExperiment {
                servers,
                hours,
                churn_per_hour,
                seed: 1,
            });
            let genpack = comparison.results.last().expect("ran");
            let baseline = &comparison.results[2];
            ChurnPoint {
                churn_per_hour,
                genpack_kwh: genpack.energy_kwh(),
                baseline_kwh: baseline.energy_kwh(),
                savings_percent: comparison.savings_vs_best_baseline,
            }
        })
        .collect()
}

/// Ablation of DESIGN.md: GenPack variants with pieces disabled, isolating
/// where the savings come from.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Variant label.
    pub variant: &'static str,
    /// Simulation result.
    pub result: SimResult,
}

/// Runs the GenPack ablation: full, no-consolidation (promotion only), and
/// conservative thresholds.
#[must_use]
pub fn ablation(experiment: EnergyExperiment) -> Vec<AblationResult> {
    let workload = WorkloadConfig {
        duration: experiment.hours * 3600,
        churn_per_hour: experiment.churn_per_hour,
        system_services: experiment.servers / 2,
        long_running: (experiment.servers * 4) / 3,
        seed: experiment.seed,
        ..WorkloadConfig::default()
    };
    let trace = workload.generate();
    let config = SimConfig {
        servers: experiment.servers,
        ..SimConfig::default()
    };
    let mut variants: Vec<(&'static str, GenPackScheduler)> = vec![
        ("genpack (full)", GenPackScheduler::new()),
        (
            "no consolidation",
            GenPackScheduler::new().with_consolidation_threshold(0.0),
        ),
        (
            "slow promotion (1h/6h)",
            GenPackScheduler::new().with_promotion_secs(3600, 6 * 3600),
        ),
        (
            "aggressive consolidation (0.8)",
            GenPackScheduler::new().with_consolidation_threshold(0.8),
        ),
    ];
    variants
        .iter_mut()
        .map(|(variant, scheduler)| AblationResult {
            variant,
            result: simulate(scheduler, &trace, config),
        })
        .collect()
}
