//! E13: end-to-end causal tracing, critical-path attribution, and SLO
//! burn-rate alerting under a seeded fault schedule.
//!
//! Each cell runs the full platform loop on the virtual clock in traced
//! mode: every bus publish mints a root trace that the service host,
//! replica quorum writes, and container restart chains join; a seeded
//! schedule aborts a supervised secure container (twice), panics the
//! consuming micro-service (nack + retry churn on the bus), and
//! partitions a shard group (refusing writes unacknowledged), while a
//! consumer-stall window backs up deliveries until publish-to-ack
//! latency spikes past the objective. A declarative [`SloEngine`]
//! watches the live latency histogram and write counters through
//! multi-window burn rates; the cell *asserts* that the schedule drew at
//! least one burn-rate alert and that the folded critical path
//! attributes self time to at least four distinct subsystems.
//!
//! Everything runs on virtual time with deterministic causal-id minting,
//! so equal seeds produce byte-identical critical-path reports and alert
//! streams at any `--jobs N` (pinned by `tests/parallel_determinism.rs`
//! and the recorded `*_fnv` digests in `BENCH_slo.json`).

use crate::cluster_exp::trace_fnv;
use securecloud::cluster::ScalingPolicy;
use securecloud::containers::build::SecureImageBuilder;
use securecloud::containers::engine::{RestartPolicy, SupervisionConfig};
use securecloud::eventbus::bus::{Message, METRIC_BACKPRESSURED, METRIC_PUBLISH_TO_ACK_MS};
use securecloud::eventbus::service::{MicroService, ServiceCtx};
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan};
use securecloud::replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};
use securecloud::scbr::types::{Publication, Subscription};
use securecloud::telemetry::{CategoryAttribution, SloEngine, SloSpec};
use securecloud::SecureCloud;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Sizing knobs for the SLO sweep.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Fault-schedule seeds; each also seeds the causal-id minter, so
    /// different seeds produce distinct trace-id streams.
    pub seeds: Vec<u64>,
    /// Platform ticks per cell (one [`SecureCloud::advance`] each).
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// Bus publications per tick (each mints a root trace).
    pub publishes_per_tick: u64,
    /// Traced quorum writes per tick.
    pub writes_per_tick: u64,
    /// Leading ticks with sustained bus backpressure (drives the
    /// controller's scale-ups, whose cause chains cite ack exemplars).
    pub overload_ticks: u64,
    /// Ticks during which the consumer does not run: published messages
    /// queue up and ack with multi-tick waits once the stall lifts — the
    /// latency regression the latency SLO catches.
    pub stall_ticks: std::ops::Range<u64>,
}

impl SloConfig {
    /// Full-size run: four seeds.
    #[must_use]
    pub fn full() -> Self {
        SloConfig {
            seeds: vec![0x510_0001, 0x510_0002, 0x510_0003, 0x510_0004],
            ticks: 40,
            tick_ms: 250,
            publishes_per_tick: 8,
            writes_per_tick: 8,
            overload_ticks: 10,
            stall_ticks: 6..9,
        }
    }

    /// CI-sized run with the same shape (only the seed count shrinks).
    #[must_use]
    pub fn smoke() -> Self {
        SloConfig {
            seeds: vec![0x510_0001, 0x510_0002],
            ..SloConfig::full()
        }
    }
}

/// One seed cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPoint {
    /// Fault-schedule and trace seed.
    pub seed: u64,
    /// Bus publications attempted.
    pub published: u64,
    /// Traced quorum writes acknowledged.
    pub acked: u64,
    /// Writes refused unacknowledged (partition window).
    pub rejected: u64,
    /// Burn-rate alerts fired — asserted ≥ 1.
    pub alerts: u64,
    /// Supervised container restarts (the traced restart chains).
    pub restarts: u64,
    /// Distinct subsystem categories in the critical path — asserted ≥ 4.
    pub subsystems: u64,
    /// Distinct causal traces that contributed spans.
    pub traces: u64,
    /// Total self time attributed across subsystems, virtual ms.
    pub total_self_ms: u64,
    /// Controller decision lines (SLO alerts appear here too).
    pub decisions: u64,
    /// Per-subsystem attribution, heaviest first.
    pub categories: Vec<CategoryAttribution>,
    /// The rendered critical-path report — a byte-identical determinism
    /// artifact (digested as `critical_path_fnv`).
    pub critical_path_text: String,
    /// The alert stream, one line per alert (digested as `alert_fnv`).
    pub alert_stream: String,
    /// The controller decision trace (digested as `decision_fnv`).
    pub decision_trace: String,
    /// FNV digest of the full trace-event export. Unlike the aggregate
    /// critical-path render (which can coincide when two seeds land
    /// faults in the same tick windows), this covers every minted causal
    /// id, so it is distinct across seeds by construction.
    pub trace_events_fnv: u64,
}

/// The consuming micro-service: aggregates meter readings and
/// republishes every fourth one downstream under a child context (the
/// causally-linked republish path).
struct MeterAggregator {
    seen: u64,
}

impl MicroService for MeterAggregator {
    fn name(&self) -> &str {
        "meter-agg"
    }
    fn subscriptions(&self) -> Vec<(String, Option<Subscription>)> {
        vec![("meter/readings".into(), None)]
    }
    fn handle(&mut self, message: &Message, ctx: &mut ServiceCtx) {
        self.seen += 1;
        if self.seen.is_multiple_of(4) {
            ctx.emit("meter/rollups", message.payload.clone(), Publication::new());
        }
    }
}

/// The seeded fault schedule: two enclave aborts against the supervised
/// container (each becomes a traced restart chain), two service panics
/// (nack + retry churn on the bus), and a shard-group partition (refused
/// writes burn the durability budget).
/// The jitter moves fire times by whole tick windows plus a sub-tick
/// offset, so different seeds interleave observably differently.
fn plan_for(seed: u64, tick_ms: u64) -> FaultPlan {
    let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let jitter = |k: u32, windows: u64| {
        let bits = mix.rotate_left(k);
        (bits % windows) * tick_ms + bits % (tick_ms - 1) + 1
    };
    FaultPlan::new()
        .at(
            3 * tick_ms + jitter(3, 2),
            FaultKind::EnclaveAbort { container: 1 },
        )
        .at(
            6 * tick_ms + jitter(9, 2),
            FaultKind::ServicePanic {
                service: "meter-agg".into(),
            },
        )
        .at(
            9 * tick_ms + jitter(15, 2),
            FaultKind::ServicePanic {
                service: "meter-agg".into(),
            },
        )
        .at(
            12 * tick_ms + jitter(21, 2),
            FaultKind::EnclaveAbort { container: 1 },
        )
        .at(
            16 * tick_ms + jitter(27, 2),
            FaultKind::NetworkPartition {
                group: 0,
                heal_after_ms: 2 * tick_ms + jitter(31, 2),
            },
        )
}

fn run_cell(seed: u64, config: &SloConfig) -> SloPoint {
    let mut cloud = SecureCloud::new();
    cloud.set_trace_seed(seed);
    let injector = Arc::new(FaultInjector::with_plan(
        seed,
        plan_for(seed, config.tick_ms),
    ));
    cloud.set_fault_injector(Arc::clone(&injector));

    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .expect("valid replica config");
    cloud
        .attach_cluster_controller(id, ScalingPolicy::default(), 8)
        .expect("valid default policy");

    // The declarative objectives over live metric handles: a latency SLO
    // on the bus publish-to-ack histogram (normal acks wait one tick;
    // lease-expiry redeliveries land far above 500 ms), and a durability
    // SLO on traced write admissions (partition refusals burn it).
    let telemetry = Arc::clone(cloud.telemetry());
    let writes_total = telemetry.counter("securecloud_slo_writes_total");
    let writes_refused = telemetry.counter("securecloud_slo_writes_refused_total");
    let mut engine = SloEngine::new(Arc::clone(&telemetry));
    engine.add(SloSpec {
        fast_window_ticks: 2,
        slow_window_ticks: 6,
        ..SloSpec::latency(
            "publish_to_ack_latency",
            telemetry.histogram(METRIC_PUBLISH_TO_ACK_MS),
            500,
            10_000,
        )
    });
    engine.add(SloSpec {
        fast_window_ticks: 2,
        slow_window_ticks: 6,
        ..SloSpec::error_ratio(
            "write_durability",
            writes_total.clone(),
            writes_refused.clone(),
            10_000,
        )
    });
    assert!(cloud.set_slo_engine(engine), "controller attached above");

    // One supervised secure container: the schedule's enclave aborts turn
    // into traced restart chains (engine container id 1, the first run).
    let image = cloud.deploy_image(
        SecureImageBuilder::new("meter", "v1", b"meter service binary")
            .protect_file("/data/keys", b"secret key material")
            .build()
            .expect("valid secure image"),
    );
    cloud
        .engine_mut()
        .run_supervised(
            image,
            SupervisionConfig {
                policy: RestartPolicy::OnFailure,
                jitter_ms: 0,
                ..SupervisionConfig::default()
            },
        )
        .expect("supervised container starts");

    cloud.register_service(Box::new(MeterAggregator { seen: 0 }));

    let backpressured = telemetry.counter(METRIC_BACKPRESSURED);
    let mut published = 0u64;
    let mut acked = 0u64;
    let mut rejected = 0u64;
    for tick in 0..config.ticks {
        for i in 0..config.publishes_per_tick {
            let payload = (tick * config.publishes_per_tick + i)
                .to_le_bytes()
                .to_vec();
            cloud
                .services_mut()
                .bus_mut()
                .publish("meter/readings", payload, Publication::new());
            published += 1;
        }
        for i in 0..config.writes_per_tick {
            let key = format!("meter/{tick}/{i}");
            let root = telemetry.mint_root();
            writes_total.inc();
            match cloud
                .replicated_kv_mut(id)
                .expect("deployment exists")
                .put_traced(key.as_bytes(), &tick.to_le_bytes(), root)
            {
                Ok(()) => acked += 1,
                Err(_) => {
                    writes_refused.inc();
                    rejected += 1;
                }
            }
        }
        if tick < config.overload_ticks {
            backpressured.add(20);
        }
        cloud.advance(config.tick_ms);
        if !config.stall_ticks.contains(&tick) {
            cloud.run_services(256);
        }
    }

    let report = telemetry.critical_path();
    let trace_events_fnv = trace_fnv(&telemetry.trace_jsonl());
    let alerts = cloud
        .cluster_controller()
        .expect("controller attached")
        .slo_engine()
        .expect("slo engine attached")
        .alerts()
        .len() as u64;
    let alert_stream = cloud
        .cluster_controller()
        .expect("controller attached")
        .slo_engine()
        .expect("slo engine attached")
        .alert_stream();
    let decision_trace = cloud
        .cluster_controller()
        .expect("controller attached")
        .decision_trace();
    let restarts = telemetry
        .counter("securecloud_containers_restarts_total")
        .value();

    assert!(
        alerts >= 1,
        "seed {seed:#x}: fault schedule must draw at least one burn-rate alert"
    );
    assert!(
        report.categories.len() >= 4,
        "seed {seed:#x}: critical path must span >= 4 subsystems, got {:?}",
        report.categories
    );
    assert!(
        restarts >= 1,
        "seed {seed:#x}: the aborted container must have restarted"
    );

    SloPoint {
        seed,
        published,
        acked,
        rejected,
        alerts,
        restarts,
        subsystems: report.categories.len() as u64,
        traces: report.traces,
        total_self_ms: report.total_self_ms,
        decisions: decision_trace.lines().count() as u64,
        categories: report.categories.clone(),
        critical_path_text: report.render(),
        alert_stream,
        decision_trace,
        trace_events_fnv,
    }
}

/// Runs every seed cell fanned across `jobs` worker threads. Cells are
/// independent virtual-clock simulations with deterministic id minting,
/// so results — critical-path reports and alert streams included — are
/// byte-identical for any job count, in seed order.
#[must_use]
pub fn sweep_jobs(config: &SloConfig, jobs: usize) -> SloReport {
    let points =
        crate::pool::run_ordered(config.seeds.clone(), jobs, |seed| run_cell(seed, config));
    SloReport {
        ticks: config.ticks,
        tick_ms: config.tick_ms,
        points,
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Platform ticks per cell.
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// One point per seed, in seed order.
    pub points: Vec<SloPoint>,
}

impl SloReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde). Texts are recorded as FNV-1a digests plus counts,
    /// enough to diff two runs for determinism.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"slo\",\n");
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"tick_ms\": {},\n", self.tick_ms));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let categories: Vec<String> = p
                .categories
                .iter()
                .map(|c| {
                    format!(
                        "{{\"category\": \"{}\", \"self_ms\": {}, \"spans\": {}}}",
                        c.category, c.self_ms, c.spans
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"seed\": {}, \"published\": {}, \"acked\": {}, \
                 \"rejected\": {}, \"alerts\": {}, \"restarts\": {}, \
                 \"subsystems\": {}, \"traces\": {}, \"total_self_ms\": {}, \
                 \"decisions\": {}, \"critical_path_fnv\": {}, \
                 \"alert_fnv\": {}, \"decision_fnv\": {}, \
                 \"trace_events_fnv\": {}, \"categories\": [{}]}}",
                p.seed,
                p.published,
                p.acked,
                p.rejected,
                p.alerts,
                p.restarts,
                p.subsystems,
                p.traces,
                p.total_self_ms,
                p.decisions,
                trace_fnv(&p.critical_path_text),
                trace_fnv(&p.alert_stream),
                trace_fnv(&p.decision_trace),
                p.trace_events_fnv,
                categories.join(", ")
            ));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The concatenated critical-path reports and alert streams, one
    /// section per seed — the human-readable artifact CI uploads.
    #[must_use]
    pub fn critical_path_document(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!("== seed {:#x} ==\n", p.seed));
            out.push_str(&p.critical_path_text);
            out.push_str("burn-rate alerts:\n");
            if p.alert_stream.is_empty() {
                out.push_str("  (none)\n");
            } else {
                for line in p.alert_stream.lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Writes the critical-path document to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_critical_path(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.critical_path_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SloConfig {
        SloConfig {
            seeds: vec![0x510_0001],
            ..SloConfig::full()
        }
    }

    #[test]
    fn slo_cell_alerts_and_attributes_latency() {
        let report = sweep_jobs(&tiny(), 1);
        let point = &report.points[0];
        // run_cell asserted the acceptance invariants; pin the evidence.
        assert!(point.alerts >= 1, "{point:?}");
        assert!(point.subsystems >= 4, "{point:?}");
        assert!(point.restarts >= 1, "{point:?}");
        assert!(point.rejected > 0, "partition refused some writes");
        assert!(point.total_self_ms > 0, "acks folded real queue wait");
        let cats: Vec<&str> = point
            .categories
            .iter()
            .map(|c| c.category.as_str())
            .collect();
        for expected in ["eventbus", "service", "replica", "containers"] {
            assert!(cats.contains(&expected), "missing {expected}: {cats:?}");
        }
        // Both objectives fired: the consumer stall burned the latency
        // budget, the partition burned the durability budget.
        assert!(
            point.alert_stream.contains("slo=publish_to_ack_latency"),
            "{}",
            point.alert_stream
        );
        assert!(
            point.alert_stream.contains("slo=write_durability"),
            "{}",
            point.alert_stream
        );
        assert!(
            point
                .critical_path_text
                .contains("per-subsystem attribution"),
            "{}",
            point.critical_path_text
        );
    }

    #[test]
    fn report_serialises_with_digests() {
        let report = sweep_jobs(&tiny(), 1);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"slo\""));
        assert!(json.contains("\"critical_path_fnv\": "));
        assert!(json.contains("\"alert_fnv\": "));
        assert!(json.contains("\"trace_events_fnv\": "));
        assert!(json.ends_with("}\n"));
        let doc = report.critical_path_document();
        assert!(doc.contains("== seed 0x5100001 =="));
        assert!(doc.contains("burn-rate alerts:"));
    }
}
