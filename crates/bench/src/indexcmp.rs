//! E6: the SCBR containment index versus naive linear matching — "a
//! reduced number of comparisons is required whenever a message must be
//! matched" (§V-B).

use securecloud_scbr::engine::MatchEngine;
use securecloud_scbr::index::{NaiveIndex, PosetIndex, SubscriptionIndex};
use securecloud_scbr::types::{Op, Predicate, Subscription, Value};
use securecloud_scbr::workload::WorkloadSpec;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;

/// One subscription-count point comparing the two indexes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexPoint {
    /// Number of subscriptions.
    pub subs: usize,
    /// Nodes visited per publication, naive index.
    pub naive_visits: u64,
    /// Nodes visited per publication, containment index.
    pub poset_visits: u64,
    /// Predicates evaluated per publication, naive index.
    pub naive_predicates: u64,
    /// Predicates evaluated per publication, containment index.
    pub poset_predicates: u64,
    /// Simulated matching time per publication, naive, microseconds.
    pub naive_us: f64,
    /// Simulated matching time per publication, containment, microseconds.
    pub poset_us: f64,
}

fn run_index<I: SubscriptionIndex>(
    index: I,
    subs: &[Subscription],
    publications: usize,
) -> (u64, u64, f64) {
    let spec = WorkloadSpec::fig3();
    let mut mem = MemorySim::enclave(MemoryGeometry::sgx_v1(), CostModel::sgx_v1());
    let mut engine = MatchEngine::new(index);
    for sub in subs {
        engine.subscribe(&mut mem, sub.clone());
    }
    let pubs = spec.publications(publications);
    for publication in &pubs {
        engine.publish(&mut mem, publication);
    }
    mem.reset_metrics();
    let before = engine.stats();
    for publication in &pubs {
        engine.publish(&mut mem, publication);
    }
    let after = engine.stats();
    let n = publications as u64;
    (
        (after.nodes_visited - before.nodes_visited) / n,
        (after.predicates_evaluated - before.predicates_evaluated) / n,
        mem.elapsed().as_micros() as f64 / publications as f64,
    )
}

/// Compares both indexes at one database size (uniform fig3 workload).
#[must_use]
pub fn run_point(subs: usize, publications: usize) -> IndexPoint {
    let spec = WorkloadSpec::fig3();
    let database = spec.subscriptions(subs);
    let (naive_visits, naive_predicates, naive_us) =
        run_index(NaiveIndex::new(), &database, publications);
    let (poset_visits, poset_predicates, poset_us) = run_index(
        PosetIndex::with_partition_attr("topic"),
        &database,
        publications,
    );
    IndexPoint {
        subs,
        naive_visits,
        poset_visits,
        naive_predicates,
        poset_predicates,
        naive_us,
        poset_us,
    }
}

/// Sweep over database sizes.
#[must_use]
pub fn sweep(sub_counts: &[usize], publications: usize) -> Vec<IndexPoint> {
    sub_counts
        .iter()
        .map(|&n| run_point(n, publications))
        .collect()
}

/// A containment-heavy workload: range subscriptions nested inside each
/// other (the structure the forest prunes best). Returns visits per
/// publication for naive vs poset *without* topic partitioning, isolating
/// the containment effect itself.
#[must_use]
pub fn containment_heavy_point(chains: usize, depth: usize, publications: usize) -> (u64, u64) {
    let mut database = Vec::new();
    for chain in 0..chains {
        let base = (chain as i64) * 1000;
        for level in 0..depth {
            // Deeper levels are narrower intervals: [base+level, base+1000-level).
            database.push(Subscription::new(vec![
                Predicate::new("x", Op::Ge, Value::Int(base + level as i64)),
                Predicate::new("x", Op::Lt, Value::Int(base + 1000 - level as i64)),
            ]));
        }
    }
    // Publications that miss every chain (x = -1): the poset visits only
    // the chain heads, the naive index visits everything.
    let publication = securecloud_scbr::types::Publication::new().with("x", Value::Int(-1));
    let run = |use_poset: bool| -> u64 {
        let mut mem = MemorySim::native(MemoryGeometry::sgx_v1(), CostModel::zero());
        let mut visits = 0u64;
        if use_poset {
            let mut index = PosetIndex::new();
            for (i, sub) in database.iter().enumerate() {
                index.insert(
                    securecloud_scbr::types::SubId(i as u64),
                    sub.clone(),
                    i as u64 * 256,
                );
            }
            for _ in 0..publications {
                index.match_publication(&publication, &mut |_| visits += 1);
            }
        } else {
            let mut index = NaiveIndex::new();
            for (i, sub) in database.iter().enumerate() {
                index.insert(
                    securecloud_scbr::types::SubId(i as u64),
                    sub.clone(),
                    i as u64 * 256,
                );
            }
            for _ in 0..publications {
                index.match_publication(&publication, &mut |_| visits += 1);
            }
        }
        let _ = &mut mem;
        visits / publications as u64
    };
    (run(false), run(true))
}
