//! E9: replicated KV scaling — shard count x replication factor.
//!
//! Sweeps a [`ReplicatedKv`] deployment over the (shards, replication
//! factor) grid with a deliberately small per-replica EPC, so the sweep
//! shows both effects the design trades off:
//!
//! * **sharding** splits the working set — one shard pages hard past the
//!   EPC knee, while enough shards keep every replica's slice resident
//!   (Figure 3's cliff, avoided by partitioning instead of optimisation);
//! * **replication** multiplies write work by `n` (every live replica
//!   applies every write) and buys fault tolerance, paid for again at
//!   failover time when a snapshot is sealed, streamed, and restored.
//!
//! Durations are simulated (cost-model cycles), so results are
//! deterministic and hardware-independent.

use securecloud::replica::{
    ReplicaConfig, ReplicatedKv, ReplicationFactor, ShardId, StorageConfig, WriteQuorum,
};
use securecloud_kvstore::CounterService;
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::enclave::Platform;

/// One cell of the shards x replication grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationPoint {
    /// Shard groups in the deployment.
    pub shards: u32,
    /// Replicas per shard.
    pub replication_factor: u32,
    /// Write quorum used (smallest majority of the replication factor).
    pub write_quorum: u32,
    /// Simulated microseconds per acknowledged quorum write.
    pub put_us: f64,
    /// Simulated microseconds per quorum read.
    pub get_us: f64,
    /// Acknowledged writes per simulated second.
    pub put_kops_s: f64,
    /// EPC faults per read during the re-read pass, summed over the read
    /// quorum's replicas. The paging indicator: first-touch faults during
    /// the load are compulsory either way, but re-reads only fault when a
    /// shard's slice exceeds the EPC (~0 once sharding makes it fit).
    pub faults_per_get: f64,
    /// Simulated milliseconds to recover from one replica kill (seal a
    /// snapshot, re-attest a replacement, stream + restore). Zero when
    /// `replication_factor == 1` (no survivor: failover impossible).
    pub failover_ms: f64,
}

/// Workload knobs for the sweep.
#[derive(Debug, Clone)]
pub struct ReplicationWorkload {
    /// Distinct keys written (then read back).
    pub keys: usize,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Per-replica memory geometry (small EPC so sharding matters).
    pub geometry: MemoryGeometry,
}

impl ReplicationWorkload {
    /// Full-size workload: a 16 MiB dataset against a 6 MiB-usable EPC, so
    /// one shard pages heavily and four shards fit entirely.
    #[must_use]
    pub fn full() -> Self {
        ReplicationWorkload {
            keys: 4_096,
            value_bytes: 4_096,
            geometry: small_epc(8 << 20, 2 << 20),
        }
    }

    /// CI-sized workload with the same shape: a 1 MiB dataset against a
    /// 384 KiB-usable EPC.
    #[must_use]
    pub fn smoke() -> Self {
        ReplicationWorkload {
            keys: 1_024,
            value_bytes: 1_024,
            geometry: small_epc(512 << 10, 128 << 10),
        }
    }
}

/// SGX1 line/page sizes with a scaled-down EPC (and an LLC a quarter of
/// it, keeping the cache-vs-EPC proportions of the full-size model).
fn small_epc(total: usize, reserved: usize) -> MemoryGeometry {
    MemoryGeometry {
        epc_total_bytes: total,
        epc_reserved_bytes: reserved,
        llc_bytes: total / 4,
        ..MemoryGeometry::sgx_v1()
    }
}

/// Runs the grid: every `shards` value against every `replication` value.
#[must_use]
pub fn sweep(
    shards: &[u32],
    replication: &[u32],
    workload: &ReplicationWorkload,
) -> Vec<ReplicationPoint> {
    sweep_jobs(shards, replication, workload, 1)
}

/// Runs the grid fanned across up to `jobs` worker threads. Each cell
/// deploys its own platform and replica set, so cells are independent and
/// deterministic; results come back in the serial sweep's row-major order.
#[must_use]
pub fn sweep_jobs(
    shards: &[u32],
    replication: &[u32],
    workload: &ReplicationWorkload,
    jobs: usize,
) -> Vec<ReplicationPoint> {
    let cells: Vec<(u32, u32)> = shards
        .iter()
        .flat_map(|&s| replication.iter().map(move |&n| (s, n)))
        .collect();
    crate::pool::run_ordered(cells, jobs, |(s, n)| run_cell(s, n, workload))
}

fn run_cell(shards: u32, replication: u32, workload: &ReplicationWorkload) -> ReplicationPoint {
    let costs = CostModel::sgx_v1();
    let config = ReplicaConfig {
        shards,
        replication: ReplicationFactor(replication),
        write_quorum: WriteQuorum::majority(ReplicationFactor(replication)),
        geometry: workload.geometry,
        costs: costs.clone(),
        ..ReplicaConfig::default()
    };
    let write_quorum = config.write_quorum.0;
    let platform = Platform::new();
    let counters = CounterService::new();
    let mut kv = ReplicatedKv::deploy(config, &platform, &counters).expect("valid config");

    let value = vec![0xa5u8; workload.value_bytes];
    let keys: Vec<Vec<u8>> = (0..workload.keys)
        .map(|i| format!("grid/meter/{i:08}").into_bytes())
        .collect();

    let before_puts = kv.total_cycles();
    for key in &keys {
        kv.put(key, &value).expect("quorum write");
    }
    let put_cycles = kv.total_cycles() - before_puts;
    let faults_after_puts = epc_faults(&kv);

    let before_gets = kv.total_cycles();
    for key in &keys {
        kv.get(key).expect("quorum read");
    }
    let get_cycles = kv.total_cycles() - before_gets;
    let get_faults = epc_faults(&kv) - faults_after_puts;

    // One replica kill + full recovery, timed in simulated cycles.
    let failover_ms = if replication > 1 {
        let before = kv.total_cycles();
        kv.kill_replica(securecloud::replica::ShardId(0), 0);
        kv.fail_over().expect("failover with survivors");
        costs
            .cycles_to_duration(kv.total_cycles() - before)
            .as_secs_f64()
            * 1e3
    } else {
        0.0
    };

    let ops = workload.keys as f64;
    let put_secs = costs.cycles_to_duration(put_cycles).as_secs_f64();
    let get_secs = costs.cycles_to_duration(get_cycles).as_secs_f64();
    ReplicationPoint {
        shards,
        replication_factor: replication,
        write_quorum,
        put_us: put_secs * 1e6 / ops,
        get_us: get_secs * 1e6 / ops,
        put_kops_s: if put_secs > 0.0 {
            ops / put_secs / 1e3
        } else {
            0.0
        },
        faults_per_get: get_faults as f64 / ops,
        failover_ms,
    }
}

/// E9b: bytes streamed to catch a replacement up after one replica kill,
/// whole-store snapshot (in-memory deployment) vs incremental manifest
/// (tiered deployment), at the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverStreamComparison {
    /// Keys loaded before the kill.
    pub keys: usize,
    /// Value size, bytes.
    pub value_bytes: usize,
    /// Bytes streamed when the group seals and ships the whole store.
    pub whole_bytes: u64,
    /// Trusted bytes streamed when the group ships an incremental
    /// manifest (manifest + WAL tail; sealed segments are already on the
    /// replacement's untrusted host path and self-authenticate).
    pub incremental_bytes: u64,
}

impl FailoverStreamComparison {
    /// whole / incremental stream-size ratio.
    #[must_use]
    pub fn shrink_factor(&self) -> f64 {
        self.whole_bytes as f64 / self.incremental_bytes.max(1) as f64
    }
}

/// Runs the same kill-plus-failover against an in-memory and a tiered
/// single-shard deployment and compares the bytes each streamed.
#[must_use]
pub fn failover_stream_comparison(workload: &ReplicationWorkload) -> FailoverStreamComparison {
    let streamed = |storage: Option<StorageConfig>| -> u64 {
        let config = ReplicaConfig {
            shards: 1,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            geometry: workload.geometry,
            storage,
            ..ReplicaConfig::default()
        };
        let platform = Platform::new();
        let counters = CounterService::new();
        let mut kv = ReplicatedKv::deploy(config, &platform, &counters).expect("valid config");
        let value = vec![0xa5u8; workload.value_bytes];
        for i in 0..workload.keys {
            kv.put(format!("grid/meter/{i:08}").as_bytes(), &value)
                .expect("quorum write");
        }
        kv.kill_replica(ShardId(0), 0);
        kv.fail_over().expect("failover with survivors");
        kv.stats().snapshot_stream_bytes
    };
    FailoverStreamComparison {
        keys: workload.keys,
        value_bytes: workload.value_bytes,
        whole_bytes: streamed(None),
        incremental_bytes: streamed(Some(StorageConfig {
            block_bytes: 4096,
            flush_bytes: 64 << 10,
            cache_blocks: 8,
            compact_at_segments: 8,
        })),
    }
}

/// Total EPC faults charged across the deployment's live replicas.
fn epc_faults(kv: &ReplicatedKv) -> u64 {
    (0..kv.shard_map().shards())
        .filter_map(|s| kv.group(securecloud::replica::ShardId(s)))
        .map(securecloud::replica::ShardGroup::epc_faults)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_relieves_paging_and_replication_costs_writes() {
        let workload = ReplicationWorkload::smoke();
        let grid = sweep(&[1, 4], &[1, 3], &workload);
        assert_eq!(grid.len(), 4);
        let cell = |s: u32, n: u32| {
            grid.iter()
                .find(|p| p.shards == s && p.replication_factor == n)
                .unwrap()
        };
        // One shard can't hold the dataset in EPC, so re-reads page; four
        // shards fit and re-reads stay resident.
        assert!(
            cell(1, 1).faults_per_get > cell(4, 1).faults_per_get,
            "1 shard: {} faults/get, 4 shards: {} faults/get",
            cell(1, 1).faults_per_get,
            cell(4, 1).faults_per_get
        );
        // Triple replication makes each write do more total work.
        assert!(cell(4, 3).put_us > cell(4, 1).put_us);
        // Failover is measured only where a survivor exists.
        assert!(cell(4, 1).failover_ms == 0.0);
        assert!(cell(4, 3).failover_ms > 0.0);
    }

    #[test]
    fn incremental_manifest_streams_fewer_bytes_than_whole_snapshot() {
        let comparison = failover_stream_comparison(&ReplicationWorkload::smoke());
        assert!(comparison.whole_bytes > 0, "whole-store path streamed");
        assert!(
            comparison.incremental_bytes > 0,
            "incremental path streamed"
        );
        assert!(
            comparison.incremental_bytes < comparison.whole_bytes,
            "incremental manifest ({} B) must undercut the whole snapshot ({} B)",
            comparison.incremental_bytes,
            comparison.whole_bytes
        );
    }
}
