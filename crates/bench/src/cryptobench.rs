//! E10: crypto kernel throughput — the one experiment measured in real
//! wall-clock time.
//!
//! Times the optimised kernels (`securecloud-crypto`'s T-table AES-GCM and
//! windowed GHASH) against the scalar reference implementations they must
//! match byte-for-byte (`securecloud_crypto::reference`), over a fixed
//! deterministic payload. Reported throughput is decimal MB/s of payload
//! processed; SHA-256 has a single implementation and reports throughput
//! only.
//!
//! Wall-clock numbers vary with the host, so unlike the simulated
//! experiments this one asserts nothing — EXPERIMENTS.md records the
//! observed speedups instead.

use std::io;
use std::path::Path;
use std::time::Instant;

use securecloud_crypto::gcm::{AesGcm, NONCE_LEN};
use securecloud_crypto::sha256::Sha256;
use securecloud_crypto::{reference, CryptoError};

/// Sizing knobs for the microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct CryptoBenchConfig {
    /// Payload size per pass, bytes.
    pub payload_bytes: usize,
    /// Timed passes per operation (one extra warm-up pass runs first).
    pub iterations: usize,
}

impl CryptoBenchConfig {
    /// Full-size run: 4 MiB payload, enough passes to smooth timer jitter.
    #[must_use]
    pub fn full() -> Self {
        CryptoBenchConfig {
            payload_bytes: 4 << 20,
            iterations: 4,
        }
    }

    /// CI-sized run: 256 KiB payload, same shape.
    #[must_use]
    pub fn smoke() -> Self {
        CryptoBenchConfig {
            payload_bytes: 256 << 10,
            iterations: 2,
        }
    }
}

/// Throughput of one operation, fast kernel vs scalar reference.
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoBenchPoint {
    /// Operation label (`ghash`, `seal`, `open`, `sha256`).
    pub op: &'static str,
    /// Optimised-kernel throughput, decimal MB/s of payload.
    pub mb_per_s: f64,
    /// Scalar-reference throughput, where a reference implementation
    /// exists.
    pub reference_mb_per_s: Option<f64>,
}

impl CryptoBenchPoint {
    /// fast / reference throughput ratio, where a reference exists.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.reference_mb_per_s.map(|r| self.mb_per_s / r)
    }
}

/// The whole microbenchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoBenchReport {
    /// The sizing used.
    pub payload_bytes: usize,
    /// Timed passes per operation.
    pub iterations: usize,
    /// One point per operation.
    pub points: Vec<CryptoBenchPoint>,
}

const KEY: [u8; 16] = *b"securecloud-key!";
const NONCE: [u8; NONCE_LEN] = *b"bench-nonce!";
const AAD: &[u8] = b"securecloud crypto bench";

/// Payload bytes: fixed, patterned, incompressible enough to defeat any
/// accidental special-casing of all-zero input.
fn payload(bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(31) % 251) as u8)
        .collect()
}

/// Times `pass` (one warm-up, then `iterations` timed passes) and returns
/// decimal MB/s of `bytes_per_pass`.
fn throughput(bytes_per_pass: usize, iterations: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let start = Instant::now();
    for _ in 0..iterations {
        pass();
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (bytes_per_pass * iterations) as f64 / secs / 1e6
}

/// Runs every operation at the configured size.
#[must_use]
pub fn run(config: CryptoBenchConfig) -> CryptoBenchReport {
    let data = payload(config.payload_bytes);
    let cipher = AesGcm::new(&KEY);
    let iterations = config.iterations;
    let bytes = config.payload_bytes;

    let ghash_fast = throughput(bytes, iterations, || {
        std::hint::black_box(cipher.ghash(AAD, &data));
    });
    let ghash_ref = throughput(bytes, iterations, || {
        std::hint::black_box(reference::ghash(&KEY, AAD, &data));
    });

    let seal_fast = throughput(bytes, iterations, || {
        std::hint::black_box(cipher.seal(&NONCE, &data, AAD));
    });
    let seal_ref = throughput(bytes, iterations, || {
        std::hint::black_box(reference::seal(&KEY, &NONCE, &data, AAD));
    });

    let sealed = cipher.seal(&NONCE, &data, AAD);
    let open_fast = throughput(bytes, iterations, || {
        let opened: Result<Vec<u8>, CryptoError> = cipher.open(&NONCE, &sealed, AAD);
        std::hint::black_box(opened.expect("bench ciphertext authenticates"));
    });
    let open_ref = throughput(bytes, iterations, || {
        let opened = reference::open(&KEY, &NONCE, &sealed, AAD);
        std::hint::black_box(opened.expect("bench ciphertext authenticates"));
    });

    let sha = throughput(bytes, iterations, || {
        std::hint::black_box(Sha256::digest(&data));
    });

    CryptoBenchReport {
        payload_bytes: config.payload_bytes,
        iterations,
        points: vec![
            CryptoBenchPoint {
                op: "ghash",
                mb_per_s: ghash_fast,
                reference_mb_per_s: Some(ghash_ref),
            },
            CryptoBenchPoint {
                op: "seal",
                mb_per_s: seal_fast,
                reference_mb_per_s: Some(seal_ref),
            },
            CryptoBenchPoint {
                op: "open",
                mb_per_s: open_fast,
                reference_mb_per_s: Some(open_ref),
            },
            CryptoBenchPoint {
                op: "sha256",
                mb_per_s: sha,
                reference_mb_per_s: None,
            },
        ],
    }
}

impl CryptoBenchReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"crypto\",\n");
        out.push_str(&format!("  \"payload_bytes\": {},\n", self.payload_bytes));
        out.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"mb_per_s\": {:.1}",
                p.op, p.mb_per_s
            ));
            if let (Some(r), Some(s)) = (p.reference_mb_per_s, p.speedup()) {
                out.push_str(&format!(
                    ", \"reference_mb_per_s\": {r:.1}, \"speedup\": {s:.2}"
                ));
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_op_and_serialises() {
        let report = run(CryptoBenchConfig {
            payload_bytes: 4 << 10,
            iterations: 1,
        });
        let ops: Vec<&str> = report.points.iter().map(|p| p.op).collect();
        assert_eq!(ops, ["ghash", "seal", "open", "sha256"]);
        for p in &report.points {
            assert!(p.mb_per_s > 0.0, "{}: non-positive throughput", p.op);
        }
        let json = report.to_json();
        assert!(json.contains("\"op\": \"ghash\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.ends_with("}\n"));
    }
}
