//! E5: secure-container overhead — image build (FS encryption + protection
//! file) and startup (attestation + SCF provisioning + shielded mount)
//! versus a plain container (§V-A workflow).
//!
//! Build and startup are crypto-bound real work, so this experiment
//! reports **wall-clock** time alongside the startup's simulated enclave
//! cycles.

use securecloud::containers::build::SecureImageBuilder;

use securecloud::SecureCloud;
use std::time::Instant;

/// Result of one image-size point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerPoint {
    /// Protected file-system size in MiB.
    pub fs_mb: usize,
    /// Secure image build wall-clock, milliseconds.
    pub build_ms: f64,
    /// Published image size, bytes.
    pub image_bytes: u64,
    /// Secure container start wall-clock, milliseconds (attestation + SCF
    /// + mount).
    pub secure_start_ms: f64,
    /// Plain container start wall-clock, milliseconds.
    pub plain_start_ms: f64,
    /// Simulated enclave cycles consumed by the secure bootstrap.
    pub bootstrap_sim_cycles: u64,
}

/// Builds, deploys, and starts one secure image of `fs_mb` MiB of
/// protected data (plus a plain twin for comparison).
#[must_use]
pub fn run_point(fs_mb: usize) -> ContainerPoint {
    let mut cloud = SecureCloud::new();
    let payload: Vec<u8> = (0..fs_mb * 1024 * 1024).map(|i| (i % 251) as u8).collect();

    let t0 = Instant::now();
    let built = SecureImageBuilder::new("bench", "v1", b"bench binary")
        .protect_file("/data/blob", &payload)
        .build()
        .expect("build");
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let image_bytes = built.image.size();
    let image = cloud.deploy_image(built);

    let t1 = Instant::now();
    let container = cloud.run_container(image).expect("secure start");
    let secure_start_ms = t1.elapsed().as_secs_f64() * 1000.0;
    let bootstrap_sim_cycles = cloud
        .with_runtime(container, |rt| rt.enclave_mut().memory().cycles())
        .expect("secure container");

    // Plain twin: byte-identical image content (same chunk files), but not
    // marked secure — no enclave, no attestation, no SCF, no mount. The
    // start-time delta is therefore exactly the secure-bootstrap protocol.
    let mut plain = cloud.registry().pull(image).expect("image just deployed");
    plain.name = "bench-plain".to_string();
    plain.secure = false;
    let plain_id = cloud.registry().push(plain);
    let t2 = Instant::now();
    cloud.run_container(plain_id).expect("plain start");
    let plain_start_ms = t2.elapsed().as_secs_f64() * 1000.0;

    ContainerPoint {
        fs_mb,
        build_ms,
        image_bytes,
        secure_start_ms,
        plain_start_ms,
        bootstrap_sim_cycles,
    }
}

/// Sweep over protected-FS sizes.
#[must_use]
pub fn sweep(fs_sizes_mb: &[usize]) -> Vec<ContainerPoint> {
    fs_sizes_mb.iter().map(|&mb| run_point(mb)).collect()
}
