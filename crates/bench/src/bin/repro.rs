//! Regenerates every figure and quantitative claim of the SecureCloud
//! paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! recorded outputs).
//!
//! Usage: `cargo run --release -p securecloud-bench --bin repro -- [exp] [--smoke] [--jobs N]`
//! where `exp` is one of `fig3`, `cache`, `fig3opt`, `genpack`, `ablation`,
//! `genpack_sweep`, `syscall`, `syscall_window`, `container`, `index`,
//! `orchestration`, `replication`, `crypto`, `messaging`, `cluster`,
//! `slo`, `storage`, `rings`, `streaming`, or `all` (default). `--smoke`
//! runs reduced workloads (CI-sized) with the same code paths. `--jobs N`
//! fans the fig3, replication, messaging, cluster, slo, storage, rings,
//! and streaming sweeps across N worker threads (default: available
//! parallelism; `--jobs 1` forces serial) — results and telemetry are
//! byte-identical for any job count.
//!
//! Every run leaves a telemetry report (Prometheus snapshot, JSONL trace,
//! chrome trace) under `target/telemetry/`; `crypto` additionally writes
//! `target/telemetry/BENCH_crypto.json`, `messaging` writes
//! `target/telemetry/BENCH_messaging.json`, `cluster` writes
//! `target/telemetry/BENCH_cluster.json`, `slo` writes
//! `target/telemetry/BENCH_slo.json` plus the folded critical-path
//! report `target/telemetry/critical_path.txt`, `storage` writes
//! `target/telemetry/BENCH_storage.json`, and `rings` writes
//! `target/telemetry/BENCH_rings.json` plus a switchless-plane rerun of
//! E11 into `target/telemetry/BENCH_messaging.json`, and `streaming`
//! writes `target/telemetry/BENCH_streaming.json`.

use securecloud_bench::{
    cluster_exp, container, cryptobench, fig3, genpack_exp, indexcmp, messaging, orchestration_exp,
    pool, replication, rings, slo, storage, streaming_exp, syscalls,
};
use securecloud_telemetry::Telemetry;
use std::path::Path;

fn main() {
    let mut which = "all".to_string();
    let mut smoke = false;
    let mut jobs = pool::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--jobs" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--jobs requires a worker count");
                std::process::exit(2);
            });
            jobs = value.parse().unwrap_or_else(|_| {
                eprintln!("--jobs: invalid worker count {value:?}");
                std::process::exit(2);
            });
        } else {
            which = arg;
        }
    }
    let jobs = jobs.max(1);
    let all = which == "all";
    let telemetry = Telemetry::new();
    if all || which == "fig3" {
        run_fig3(smoke, jobs, &telemetry);
    }
    if all || which == "cache" {
        run_cache(smoke);
    }
    if all || which == "fig3opt" {
        run_fig3opt(smoke);
    }
    if all || which == "genpack" {
        run_genpack();
    }
    if all || which == "ablation" {
        run_ablation();
    }
    if all || which == "genpack_sweep" {
        run_genpack_sweep();
    }
    if all || which == "syscall_window" {
        run_syscall_window(smoke);
    }
    if all || which == "syscall" {
        run_syscall(smoke);
    }
    if all || which == "container" {
        run_container(smoke);
    }
    if all || which == "index" {
        run_index(smoke);
    }
    if all || which == "orchestration" {
        run_orchestration(smoke);
    }
    if all || which == "replication" {
        run_replication(smoke, jobs);
    }
    if all || which == "crypto" {
        run_crypto(smoke);
    }
    if all || which == "messaging" {
        run_messaging(smoke, jobs, &telemetry);
    }
    if all || which == "cluster" {
        run_cluster(smoke, jobs);
    }
    if all || which == "slo" {
        run_slo(smoke, jobs);
    }
    if all || which == "storage" {
        run_storage(smoke, jobs);
    }
    if all || which == "rings" {
        run_rings(smoke, jobs, &telemetry);
    }
    if all || which == "streaming" {
        run_streaming(smoke, jobs);
    }
    match telemetry.write_report(Path::new("target/telemetry")) {
        Ok(report) => println!(
            "telemetry report: {}, {}, {}",
            report.snapshot.display(),
            report.trace_jsonl.display(),
            report.trace_chrome.display()
        ),
        Err(err) => eprintln!("warning: telemetry report not written: {err}"),
    }
}

fn run_fig3(smoke: bool, jobs: usize, telemetry: &Telemetry) {
    println!("== E1 / Figure 3: effect of memory swapping ==");
    println!("(paper: ratio ~1 below EPC, degradation before the 128 MiB line,");
    println!(" ~18x at a 200 MiB subscription database)\n");
    println!(
        "{:>6} {:>12} {:>13} {:>7} {:>11} {:>11}",
        "DB MiB", "native us/p", "enclave us/p", "ratio", "faults/pub", "visits/pub"
    );
    let (sizes, pubs): (&[u64], usize) = if smoke {
        // Few sizes, but enough publications that the 160 MiB point still
        // pages (too few and the touched set fits the EPC after warm-up).
        (&[8, 64, 128, 160], 20)
    } else {
        (fig3::PAPER_DB_SIZES_MB, 30)
    };
    for point in fig3::sweep_jobs(sizes, pubs, jobs, Some(telemetry)) {
        let marker = if point.db_mb == 128 {
            "  <-- EPC size"
        } else {
            ""
        };
        println!(
            "{:>6} {:>12.1} {:>13.1} {:>6.1}x {:>11} {:>11}{marker}",
            point.db_mb,
            point.native_us,
            point.enclave_us,
            point.ratio,
            point.faults_per_pub,
            point.visits_per_pub
        );
    }
    println!();
}

fn run_cache(smoke: bool) {
    println!("== E2: cache misses vs memory swapping (§V-B) ==");
    println!("(paper: cache misses impose limited overhead; swapping is worse)\n");
    println!(
        "{:<24} {:>6} {:>12} {:>13} {:>7} {:>11} {:>11}",
        "regime", "DB MiB", "native us/p", "enclave us/p", "ratio", "misses/pub", "faults/pub"
    );
    for regime in fig3::cache_vs_swap(if smoke { 30 } else { 200 }) {
        println!(
            "{:<24} {:>6} {:>12.1} {:>13.1} {:>6.1}x {:>11} {:>11}",
            regime.regime,
            regime.db_mb,
            regime.point.native_us,
            regime.point.enclave_us,
            regime.point.ratio,
            regime.point.llc_misses_per_pub,
            regime.point.faults_per_pub
        );
    }
    println!();
}

fn run_fig3opt(smoke: bool) {
    println!("== E8: paging optimisations (paper's future work, quantified) ==");
    println!("(\"we intend to optimise our data structures to avoid paging and");
    println!(" cache misses ... to further decrease the overhead\", 160 MiB DB)\n");
    println!(
        "{:<32} {:>13} {:>7} {:>11}",
        "variant", "enclave us/p", "ratio", "faults/pub"
    );
    for point in fig3::optimisations(160, if smoke { 6 } else { 30 }) {
        println!(
            "{:<32} {:>13.1} {:>6.1}x {:>11}",
            point.variant, point.enclave_us, point.ratio, point.faults_per_pub
        );
    }
    println!();
}

fn run_genpack() {
    println!("== E3: GenPack energy savings (§VI) ==");
    println!("(paper: up to 23% energy savings for typical data-center workloads)\n");
    let comparison = genpack_exp::run(genpack_exp::EnergyExperiment::default());
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>10}",
        "scheduler", "energy kWh", "avg srv on", "migrations", "rejections", "overloads"
    );
    for result in &comparison.results {
        println!(
            "{:<10} {:>11.1} {:>11.1} {:>11} {:>11} {:>10}",
            result.scheduler,
            result.energy_kwh(),
            result.avg_servers_on,
            result.migrations,
            result.rejections,
            result.overload_ticks
        );
    }
    println!(
        "\ngenpack savings: {:.1}% vs first-fit (best baseline), {:.1}% vs spread\n",
        comparison.savings_vs_best_baseline, comparison.savings_vs_spread
    );
}

fn run_ablation() {
    println!("== E3b: GenPack ablation (design-choice isolation) ==\n");
    println!(
        "{:<30} {:>11} {:>11} {:>11}",
        "variant", "energy kWh", "avg srv on", "migrations"
    );
    for entry in genpack_exp::ablation(genpack_exp::EnergyExperiment::default()) {
        println!(
            "{:<30} {:>11.1} {:>11.1} {:>11}",
            entry.variant,
            entry.result.energy_kwh(),
            entry.result.avg_servers_on,
            entry.result.migrations
        );
    }
    println!();
}

fn run_genpack_sweep() {
    println!("== E3c: GenPack savings vs workload churn (\"up to 23%\") ==\n");
    println!(
        "{:>10} {:>12} {:>13} {:>9}",
        "churn/h", "genpack kWh", "first-fit kWh", "savings"
    );
    for point in genpack_exp::churn_sweep(&[40.0, 80.0, 150.0, 250.0, 400.0], 60, 24) {
        println!(
            "{:>10.0} {:>12.1} {:>13.1} {:>8.1}%",
            point.churn_per_hour, point.genpack_kwh, point.baseline_kwh, point.savings_percent
        );
    }
    println!();
}

fn run_syscall_window(smoke: bool) {
    println!("== E4b: async syscall in-flight window (batching ablation) ==");
    println!("(enclave-side cycles are window-independent; the window buys");
    println!(" wall-clock overlap with the host syscall thread)\n");
    println!(
        "{:>8} {:>16} {:>18}",
        "window", "cycles per call", "wall ns per call"
    );
    for point in syscalls::window_sweep(
        &[1, 2, 4, 8, 16, 32, 64],
        if smoke { 2_000 } else { 20_000 },
    ) {
        println!(
            "{:>8} {:>16.0} {:>18.0}",
            point.window, point.cycles_per_call, point.wall_ns_per_call
        );
    }
    println!();
}

fn run_syscall(smoke: bool) {
    println!("== E4: synchronous vs asynchronous shielded syscalls (§IV) ==");
    println!("(paper: SCONE's async interface makes enclave performance acceptable)\n");
    println!(
        "{:>9} {:>12} {:>13} {:>9} {:>13} {:>14}",
        "payload B", "sync cyc", "async cyc", "speedup", "sync Mc/s", "async Mc/s"
    );
    for point in syscalls::sweep(syscalls::PAYLOADS, if smoke { 500 } else { 2_000 }) {
        println!(
            "{:>9} {:>12.0} {:>13.0} {:>8.1}x {:>13.2} {:>14.2}",
            point.payload,
            point.sync_cycles,
            point.async_cycles,
            point.speedup,
            point.sync_mcalls_per_s,
            point.async_mcalls_per_s
        );
    }
    println!();
}

fn run_container(smoke: bool) {
    println!("== E5: secure container build & startup overhead (§V-A) ==\n");
    println!(
        "{:>6} {:>11} {:>12} {:>16} {:>15} {:>14}",
        "FS MiB", "build ms", "image MiB", "secure start ms", "plain start ms", "bootstrap Mcyc"
    );
    let sizes: &[usize] = if smoke { &[8, 32] } else { &[8, 32, 128] };
    for point in container::sweep(sizes) {
        println!(
            "{:>6} {:>11.1} {:>12.1} {:>16.1} {:>15.1} {:>14.1}",
            point.fs_mb,
            point.build_ms,
            point.image_bytes as f64 / (1024.0 * 1024.0),
            point.secure_start_ms,
            point.plain_start_ms,
            point.bootstrap_sim_cycles as f64 / 1e6
        );
    }
    println!();
}

fn run_index(smoke: bool) {
    println!("== E6: containment index vs naive matching (§V-B) ==\n");
    println!(
        "{:>8} {:>12} {:>12} {:>11} {:>11} {:>10} {:>10}",
        "subs", "naive visit", "poset visit", "naive pred", "poset pred", "naive us", "poset us"
    );
    let (sub_counts, pubs): (&[usize], usize) = if smoke {
        (&[1_000, 10_000], 10)
    } else {
        (&[1_000, 10_000, 50_000, 100_000], 30)
    };
    for point in indexcmp::sweep(sub_counts, pubs) {
        println!(
            "{:>8} {:>12} {:>12} {:>11} {:>11} {:>10.1} {:>10.1}",
            point.subs,
            point.naive_visits,
            point.poset_visits,
            point.naive_predicates,
            point.poset_predicates,
            point.naive_us,
            point.poset_us
        );
    }
    let (naive, poset) = indexcmp::containment_heavy_point(50, 50, 10);
    println!("\ncontainment-heavy workload (50 chains x 50 nested ranges, non-matching pubs):");
    println!(
        "  naive visits/pub: {naive}, poset visits/pub: {poset} ({}x fewer)\n",
        naive / poset.max(1)
    );
}

fn run_replication(smoke: bool, jobs: usize) {
    println!("== E9: replicated KV — shards x replication factor ==");
    println!("(sharding splits the working set below the EPC knee; replication");
    println!(" multiplies write work and buys attested failover)\n");
    println!(
        "{:>7} {:>4} {:>3} {:>10} {:>10} {:>11} {:>11} {:>12}",
        "shards", "rf", "w", "put us", "get us", "put kops/s", "faults/get", "failover ms"
    );
    let (shards, replication, workload) = if smoke {
        (
            &[1u32, 4][..],
            &[1u32, 3][..],
            replication::ReplicationWorkload::smoke(),
        )
    } else {
        (
            &[1u32, 2, 4, 8][..],
            &[1u32, 3, 5][..],
            replication::ReplicationWorkload::full(),
        )
    };
    for point in replication::sweep_jobs(shards, replication, &workload, jobs) {
        println!(
            "{:>7} {:>4} {:>3} {:>10.1} {:>10.1} {:>11.1} {:>11.2} {:>12.2}",
            point.shards,
            point.replication_factor,
            point.write_quorum,
            point.put_us,
            point.get_us,
            point.put_kops_s,
            point.faults_per_get,
            point.failover_ms
        );
    }
    let comparison = replication::failover_stream_comparison(&workload);
    println!(
        "\nfailover catch-up stream ({} keys x {} B): whole snapshot {} B,",
        comparison.keys, comparison.value_bytes, comparison.whole_bytes
    );
    println!(
        "incremental manifest {} B ({:.1}x smaller)\n",
        comparison.incremental_bytes,
        comparison.shrink_factor()
    );
}

fn run_storage(smoke: bool, jobs: usize) {
    println!("== E14: tiered encrypted storage — sealed segments beyond EPC ==");
    println!("(in-EPC memtable over sealed log-structured host segments: reads");
    println!(" beyond the EPC pay explicit amortised host I/O instead of paging,");
    println!(" and restart replays only the WAL tail)\n");
    let workload = if smoke {
        storage::StorageWorkload::smoke()
    } else {
        storage::StorageWorkload::full()
    };
    let report = storage::report_jobs(&workload, jobs);
    println!(
        "usable EPC: {} KiB, block {} B, memtable budget {} KiB\n",
        report.usable_epc_bytes >> 10,
        report.config.block_bytes,
        report.config.flush_bytes >> 10
    );
    println!(
        "{:>6} {:>7} {:>7} {:>8} {:>10} {:>8} {:>10} {:>9} {:>5} {:>10} {:>12}",
        "ws/EPC",
        "val B",
        "keys",
        "put us",
        "wr KiB/put",
        "get us",
        "rd KiB/get",
        "flt/get",
        "segs",
        "restart ms",
        "replay/total"
    );
    for point in &report.points {
        println!(
            "{:>5.1}x {:>7} {:>7} {:>8.1} {:>10.3} {:>8.1} {:>10.3} {:>9.3} {:>5} {:>10.3} {:>6}/{}",
            point.epc_ratio,
            point.value_bytes,
            point.keys,
            point.put_us,
            point.host_write_kib_per_put,
            point.get_us,
            point.host_read_kib_per_get,
            point.faults_per_get,
            point.segments,
            point.restart_ms,
            point.wal_replayed,
            point.wal_total
        );
    }
    let path = Path::new("target/telemetry/BENCH_storage.json");
    match report.write_json(path) {
        Ok(()) => println!("\nstorage bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: storage bench report not written: {err}\n"),
    }
}

fn run_crypto(smoke: bool) {
    println!("== E10: crypto kernel throughput (wall-clock) ==");
    println!("(optimised T-table AES-GCM / windowed GHASH vs the scalar");
    println!(" reference implementations they match byte-for-byte)\n");
    let config = if smoke {
        cryptobench::CryptoBenchConfig::smoke()
    } else {
        cryptobench::CryptoBenchConfig::full()
    };
    let report = cryptobench::run(config);
    println!(
        "payload: {} KiB x {} iterations\n",
        report.payload_bytes >> 10,
        report.iterations
    );
    println!(
        "{:<8} {:>12} {:>15} {:>9}",
        "op", "fast MB/s", "reference MB/s", "speedup"
    );
    for point in &report.points {
        match (point.reference_mb_per_s, point.speedup()) {
            (Some(reference), Some(speedup)) => println!(
                "{:<8} {:>12.1} {:>15.1} {:>8.1}x",
                point.op, point.mb_per_s, reference, speedup
            ),
            _ => println!(
                "{:<8} {:>12.1} {:>15} {:>9}",
                point.op, point.mb_per_s, "-", "-"
            ),
        }
    }
    let path = Path::new("target/telemetry/BENCH_crypto.json");
    match report.write_json(path) {
        Ok(()) => println!("\ncrypto bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: crypto bench report not written: {err}\n"),
    }
}

fn run_messaging(smoke: bool, jobs: usize, telemetry: &Telemetry) {
    println!("== E11: batched messaging on the SCBR sealed path ==");
    println!("(one AEAD frame + one ECALL/OCALL pair per batch amortizes the");
    println!(" enclave transition and nonce/GHASH setup across N publications)\n");
    let config = if smoke {
        messaging::MessagingConfig::smoke()
    } else {
        messaging::MessagingConfig::full()
    };
    let report = messaging::sweep_jobs(&config, jobs, Some(telemetry));
    println!("messages per point: {}\n", report.messages);
    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>9}",
        "batch", "payload B", "msgs/s", "p99 us", "speedup"
    );
    for point in &report.points {
        let speedup = report
            .speedup(point.payload_bytes, point.batch)
            .unwrap_or(1.0);
        println!(
            "{:>6} {:>10} {:>12.0} {:>9} {:>8.1}x",
            point.batch, point.payload_bytes, point.msgs_per_s, point.p99_us, speedup
        );
    }
    let path = Path::new("target/telemetry/BENCH_messaging.json");
    match report.write_json(path) {
        Ok(()) => println!("\nmessaging bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: messaging bench report not written: {err}\n"),
    }
}

fn run_cluster(smoke: bool, jobs: usize) {
    println!("== E12: elastic cluster controller under a seeded fault schedule ==");
    println!("(load ramp forces scale-ups; the schedule kills the replicas they");
    println!(" admit, stalls one, partitions a group — zero acked writes lost,");
    println!(" no epoch rollback, byte-identical decisions at any --jobs)\n");
    let config = if smoke {
        cluster_exp::ClusterConfig::smoke()
    } else {
        cluster_exp::ClusterConfig::full()
    };
    println!(
        "{} tick(s) x {} ms virtual per cell\n",
        config.ticks, config.tick_ms
    );
    println!(
        "{:>10} {:>7} {:>6} {:>6} {:>5} {:>7} {:>6} {:>6} {:>5} {:>9} {:>18}",
        "seed",
        "wr/tick",
        "acked",
        "reject",
        "ups",
        "downs",
        "kills",
        "repl",
        "live",
        "decisions",
        "trace fnv"
    );
    let report = cluster_exp::sweep_jobs(&config, jobs);
    for point in &report.points {
        println!(
            "{:>10x} {:>7} {:>6} {:>6} {:>5} {:>7} {:>6} {:>6} {:>5} {:>9} {:>18x}",
            point.seed,
            point.writes_per_tick,
            point.acked,
            point.rejected,
            point.scale_ups,
            point.scale_downs,
            point.replicas_killed,
            point.replicas_replaced,
            point.final_live,
            point.decisions,
            cluster_exp::trace_fnv(&point.decision_trace)
        );
    }
    let path = Path::new("target/telemetry/BENCH_cluster.json");
    match report.write_json(path) {
        Ok(()) => println!("\ncluster bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: cluster bench report not written: {err}\n"),
    }
}

fn run_slo(smoke: bool, jobs: usize) {
    println!("== E13: causal tracing, critical path, and SLO burn rates ==");
    println!("(every publish mints a root trace; aborts, a consumer stall, and");
    println!(" a partition draw burn-rate alerts; the critical path attributes");
    println!(" self time per subsystem — byte-identical at any --jobs)\n");
    let config = if smoke {
        slo::SloConfig::smoke()
    } else {
        slo::SloConfig::full()
    };
    println!(
        "{} tick(s) x {} ms virtual per cell\n",
        config.ticks, config.tick_ms
    );
    println!(
        "{:>10} {:>6} {:>6} {:>7} {:>7} {:>9} {:>11} {:>7} {:>9} {:>18}",
        "seed",
        "acked",
        "reject",
        "alerts",
        "restart",
        "subsystem",
        "self ms",
        "traces",
        "decisions",
        "trace fnv"
    );
    // The schedule panics the aggregator on purpose; keep the injected
    // backtraces quiet for the sweep, then restore normal reporting.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = slo::sweep_jobs(&config, jobs);
    std::panic::set_hook(hook);
    for point in &report.points {
        println!(
            "{:>10x} {:>6} {:>6} {:>7} {:>7} {:>9} {:>11} {:>7} {:>9} {:>18x}",
            point.seed,
            point.acked,
            point.rejected,
            point.alerts,
            point.restarts,
            point.subsystems,
            point.total_self_ms,
            point.traces,
            point.decisions,
            point.trace_events_fnv
        );
    }
    if let Some(point) = report.points.first() {
        println!("\ncritical path, seed {:#x}:", point.seed);
        for line in point.critical_path_text.lines() {
            println!("  {line}");
        }
    }
    let json_path = Path::new("target/telemetry/BENCH_slo.json");
    match report.write_json(json_path) {
        Ok(()) => println!("\nslo bench report: {}", json_path.display()),
        Err(err) => eprintln!("\nwarning: slo bench report not written: {err}"),
    }
    let cp_path = Path::new("target/telemetry/critical_path.txt");
    match report.write_critical_path(cp_path) {
        Ok(()) => println!("critical-path report: {}\n", cp_path.display()),
        Err(err) => eprintln!("warning: critical-path report not written: {err}\n"),
    }
}

fn run_rings(smoke: bool, jobs: usize, telemetry: &Telemetry) {
    println!("== E15: switchless syscall rings + in-enclave executor (§IV) ==");
    println!("(submission/completion rings replace the per-call ECALL/OCALL");
    println!(" pair with slot copies; the cooperative executor overlaps tasks");
    println!(" while the host servicer drains the ring without a transition)\n");
    let config = if smoke {
        rings::RingsConfig::smoke()
    } else {
        rings::RingsConfig::full()
    };
    let report = rings::sweep_jobs(&config, jobs, Some(telemetry));
    println!("pwrites per point: {}\n", report.ops);
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>10} {:>9} {:>11} {:>9} {:>7} {:>9}",
        "depth",
        "payload B",
        "workers",
        "sync c/op",
        "ring c/op",
        "speedup",
        "ring kop/s",
        "trans/op",
        "parks",
        "spurious"
    );
    for point in &report.points {
        println!(
            "{:>6} {:>10} {:>8} {:>10.0} {:>10.0} {:>8.1}x {:>11.1} {:>9.1} {:>7} {:>9}",
            point.depth,
            point.payload_bytes,
            point.workers,
            point.sync_cycles_per_op,
            point.ring_cycles_per_op,
            point.speedup,
            point.ring_kops_per_s,
            point.ring_transitions_per_op,
            point.parks,
            point.spurious_wakes
        );
    }
    let path = Path::new("target/telemetry/BENCH_rings.json");
    match report.write_json(path) {
        Ok(()) => println!("\nrings bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: rings bench report not written: {err}\n"),
    }

    println!("-- E11 rerun over the switchless plane --");
    println!("(the same messaging sweep with every router match riding the");
    println!(" ring plane: ~0 transitions/msg, no batch-size knee)\n");
    let mconfig = if smoke {
        messaging::MessagingConfig::smoke()
    } else {
        messaging::MessagingConfig::full()
    };
    let mreport = messaging::sweep_jobs_on(&mconfig, jobs, Some(telemetry), true);
    println!(
        "plane: {}, messages per point: {}\n",
        mreport.plane, mreport.messages
    );
    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>9} {:>10}",
        "batch", "payload B", "msgs/s", "p99 us", "speedup", "trans/msg"
    );
    for point in &mreport.points {
        let speedup = mreport
            .speedup(point.payload_bytes, point.batch)
            .unwrap_or(1.0);
        println!(
            "{:>6} {:>10} {:>12.0} {:>9} {:>8.1}x {:>10.3}",
            point.batch,
            point.payload_bytes,
            point.msgs_per_s,
            point.p99_us,
            speedup,
            point.transitions_per_msg
        );
    }
    let mpath = Path::new("target/telemetry/BENCH_messaging.json");
    match mreport.write_json(mpath) {
        Ok(()) => println!(
            "\nmessaging (switchless) bench report: {}\n",
            mpath.display()
        ),
        Err(err) => eprintln!("\nwarning: messaging bench report not written: {err}\n"),
    }
}

fn run_streaming(smoke: bool, jobs: usize) {
    println!("== E16: streaming analytics — window x cardinality x EPC pressure ==");
    println!("(city pipelines over the sealed plane; operator state in the tiered");
    println!(" KV, charged to shrunken enclave geometries — flat cycles/event while");
    println!(" peak state fits the EPC, a knee past it, host I/O past the memtable)\n");
    let workload = if smoke {
        streaming_exp::StreamingWorkload::smoke()
    } else {
        streaming_exp::StreamingWorkload::full()
    };
    let report = streaming_exp::report_jobs(&workload, jobs);
    println!(
        "city: {} meters/feeder, {} s interval, {} s trace\n",
        report.households_per_feeder, report.interval_secs, report.duration_secs
    );
    println!(
        "{:>9} {:>7} {:>8} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>7} {:>5} {:>18}",
        "window s",
        "meters",
        "EPC KiB",
        "events",
        "kev/s",
        "cyc/ev",
        "flt/kev",
        "KiB/kev",
        "state/E",
        "flag",
        "theft",
        "digest"
    );
    for point in &report.points {
        println!(
            "{:>9} {:>7} {:>8} {:>7} {:>8.1} {:>9.0} {:>9.2} {:>9.3} {:>8.2} {:>7} {:>5} {:>18x}",
            point.window_ms / 1_000,
            point.meters,
            point.usable_epc_kib,
            point.events,
            point.kevents_per_s,
            point.cycles_per_event,
            point.faults_per_kevent,
            point.host_kib_per_kevent,
            point.state_to_epc,
            point.flagged_feeders,
            point.theft_feeders,
            point.results_digest
        );
    }
    let path = Path::new("target/telemetry/BENCH_streaming.json");
    match report.write_json(path) {
        Ok(()) => println!("\nstreaming bench report: {}\n", path.display()),
        Err(err) => eprintln!("\nwarning: streaming bench report not written: {err}\n"),
    }
}

fn run_orchestration(smoke: bool) {
    println!("== E7: anomaly detection within milliseconds (§VI) ==\n");
    let result = orchestration_exp::run(if smoke { 10_000 } else { 60_000 }, 10, 3);
    println!(
        "power-quality faults: {} injected, {} detected, {} missed, {} false positives",
        result.faults_injected, result.faults_detected, result.missed, result.false_positives
    );
    println!(
        "detection latency: mean {:.1} ms, max {:.1} ms (1 kHz sampling)",
        result.mean_latency_ms, result.max_latency_ms
    );
    println!(
        "orchestrator reaction: scaling action emitted after {} bus step(s)\n",
        result.orchestrator_reaction_steps
    );
}
