//! The SecureCloud benchmark harness.
//!
//! One module per experiment in DESIGN.md's index (E1–E16), plus the
//! ordered worker [`pool`] the sweeps fan out on. Each module exposes a
//! runner returning structured results; the `repro` binary prints them as
//! the tables recorded in EXPERIMENTS.md, and the Criterion benches in
//! `benches/` exercise the same code paths at reduced scale for regression
//! tracking.
//!
//! Experiment results are *simulated* durations from the SGX cost model
//! (deterministic, hardware-independent) except where noted (E5 measures
//! real wall-clock of the cryptographic build pipeline, E10 real
//! wall-clock crypto kernel throughput).

pub mod cluster_exp;
pub mod container;
pub mod cryptobench;
pub mod fig3;
pub mod genpack_exp;
pub mod indexcmp;
pub mod messaging;
pub mod orchestration_exp;
pub mod pool;
pub mod replication;
pub mod rings;
pub mod slo;
pub mod storage;
pub mod streaming_exp;
pub mod syscalls;
