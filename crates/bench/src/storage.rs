//! E14: tiered encrypted storage — sealed log-structured segments beyond
//! the EPC.
//!
//! Sweeps a tiered [`SecureKv`] (in-EPC memtable over the
//! `securecloud-storage` engine's sealed on-host segments) across working
//! sets of 0.5x, 2x, and 8x the usable EPC, crossed with value sizes. The
//! sweep shows the design's central trade: once the working set outgrows
//! the EPC, the plain in-enclave store of Figure 3 pages on *every*
//! access, while the tiered store keeps a bounded memtable resident and
//! pays explicit, amortised host I/O (sealed 4 KiB-class blocks through
//! the cost model's host read/write domain) only on lookups that miss the
//! memtable and block cache.
//!
//! Each cell also restarts the store from a clone of its untrusted disk
//! and reports how much WAL had to be replayed — the incremental-recovery
//! claim: restart cost is proportional to the WAL tail, not the store.
//!
//! All durations are simulated cost-model cycles; cells are independent
//! and seeded, so the report is byte-identical at any `--jobs` count.

use std::io;
use std::path::Path;

use securecloud_kvstore::{CounterService, SecureKv, StorageConfig, StoreKeys};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::mem::MemorySim;

/// Workload knobs for the sweep.
#[derive(Debug, Clone)]
pub struct StorageWorkload {
    /// Working-set sizes as multiples of the usable EPC.
    pub epc_ratios: Vec<f64>,
    /// Value sizes, bytes.
    pub value_bytes: Vec<usize>,
    /// Per-cell enclave memory geometry (scaled down so the 8x point
    /// stays fast while paging exactly like the full-size model).
    pub geometry: MemoryGeometry,
    /// Storage-tier tuning used by every cell.
    pub config: StorageConfig,
    /// Fraction of keys overwritten after the load (exercises shadowing
    /// across segments and the deterministic compactor), as 1/n.
    pub overwrite_every: usize,
}

impl StorageWorkload {
    /// Full-size sweep: 3 MiB usable EPC, the paper-shaped ratio grid.
    #[must_use]
    pub fn full() -> Self {
        StorageWorkload {
            epc_ratios: vec![0.5, 2.0, 8.0],
            value_bytes: vec![256, 1024],
            geometry: small_epc(4 << 20, 1 << 20),
            // Memtable budget: two thirds of the usable EPC, so the 0.5x
            // working set never flushes (pure in-EPC service) while the
            // 2x and 8x sets spill to sealed segments.
            config: StorageConfig {
                block_bytes: 4096,
                flush_bytes: 2 << 20,
                cache_blocks: 8,
                compact_at_segments: 8,
            },
            overwrite_every: 4,
        }
    }

    /// CI-sized sweep with the same shape: 192 KiB usable EPC.
    #[must_use]
    pub fn smoke() -> Self {
        StorageWorkload {
            epc_ratios: vec![0.5, 8.0],
            value_bytes: vec![256],
            geometry: small_epc(256 << 10, 64 << 10),
            config: StorageConfig {
                block_bytes: 1024,
                flush_bytes: 128 << 10,
                cache_blocks: 4,
                compact_at_segments: 6,
            },
            overwrite_every: 4,
        }
    }
}

/// SGX1 line/page sizes with a scaled-down EPC (LLC a quarter of it,
/// keeping the cache-vs-EPC proportions of the full-size model).
fn small_epc(total: usize, reserved: usize) -> MemoryGeometry {
    MemoryGeometry {
        epc_total_bytes: total,
        epc_reserved_bytes: reserved,
        llc_bytes: total / 4,
        ..MemoryGeometry::sgx_v1()
    }
}

/// One cell of the ratio x value-size grid.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePoint {
    /// Working set as a multiple of the usable EPC.
    pub epc_ratio: f64,
    /// Value size, bytes.
    pub value_bytes: usize,
    /// Distinct keys loaded.
    pub keys: usize,
    /// Simulated microseconds per put during the load.
    pub put_us: f64,
    /// Host KiB written per put (WAL append plus amortised flush).
    pub host_write_kib_per_put: f64,
    /// Simulated microseconds per get in the cold re-read pass.
    pub get_us: f64,
    /// Host KiB read per get (sealed blocks paged in past the cache).
    pub host_read_kib_per_get: f64,
    /// EPC faults per get — stays bounded however large the store grows,
    /// because only the memtable and block cache live in the EPC.
    pub faults_per_get: f64,
    /// Live sealed segments after the workload (post-compaction).
    pub segments: u64,
    /// Compactions the workload triggered.
    pub compactions: u64,
    /// Total sealed bytes on the untrusted host, MiB.
    pub sealed_mib: f64,
    /// Simulated milliseconds to reopen the store from the host disk.
    pub restart_ms: f64,
    /// WAL records replayed at restart (the tail only)...
    pub wal_replayed: u64,
    /// ...out of this many mutations applied over the store's life.
    pub wal_total: u64,
}

/// Runs the grid serially.
#[must_use]
pub fn sweep(workload: &StorageWorkload) -> Vec<StoragePoint> {
    sweep_jobs(workload, 1)
}

/// Runs the grid fanned across up to `jobs` worker threads. Cells build
/// independent stores and simulators, so results come back byte-identical
/// in row-major order regardless of the worker count.
#[must_use]
pub fn sweep_jobs(workload: &StorageWorkload, jobs: usize) -> Vec<StoragePoint> {
    let cells: Vec<(f64, usize)> = workload
        .epc_ratios
        .iter()
        .flat_map(|&r| workload.value_bytes.iter().map(move |&v| (r, v)))
        .collect();
    crate::pool::run_ordered(cells, jobs, |(ratio, value_bytes)| {
        run_cell(ratio, value_bytes, workload)
    })
}

/// Deterministic patterned value: distinct per key and pass, incompressible
/// enough to defeat accidental special-casing, no RNG required.
fn value_for(key_index: usize, pass: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (key_index
                .wrapping_mul(31)
                .wrapping_add(i.wrapping_mul(7))
                .wrapping_add(pass as usize * 131)
                % 251) as u8
        })
        .collect()
}

fn run_cell(ratio: f64, value_bytes: usize, workload: &StorageWorkload) -> StoragePoint {
    let costs = CostModel::sgx_v1();
    let geometry = workload.geometry;
    let usable_epc = geometry.epc_total_bytes - geometry.epc_reserved_bytes;
    // Size the key count so keys * (key + value) hits the requested ratio.
    let key_len = "tier/meter/00000000".len();
    let keys = ((usable_epc as f64 * ratio) / (key_len + value_bytes) as f64).ceil() as usize;

    let mut mem = MemorySim::enclave(geometry, costs.clone());
    let mut kv = SecureKv::tiered(
        workload.config.clone(),
        StoreKeys::new([0xE1; 16]),
        CounterService::new(),
        "bench/storage",
    );

    let key_of = |i: usize| format!("tier/meter/{i:08}").into_bytes();

    // Load phase: every key once.
    let load_start_cycles = mem.cycles();
    let writes_before = mem.stats().host_write_bytes;
    for i in 0..keys {
        kv.put(&mut mem, &key_of(i), &value_for(i, 0, value_bytes));
    }
    // Overwrite phase: a deterministic subset gets fresh values, leaving
    // shadowed records behind in older segments for the compactor.
    for i in (0..keys).step_by(workload.overwrite_every.max(1)) {
        kv.put(&mut mem, &key_of(i), &value_for(i, 1, value_bytes));
    }
    let put_cycles = mem.cycles() - load_start_cycles;
    let put_host_kib = (mem.stats().host_write_bytes - writes_before) as f64 / 1024.0;
    let puts = keys + keys.div_ceil(workload.overwrite_every.max(1));

    // Cold re-read pass: metrics reset so first-touch load faults don't
    // pollute the steady-state read numbers.
    mem.reset_metrics();
    for i in 0..keys {
        let got = kv.get(&mut mem, &key_of(i)).expect("loaded key present");
        let pass = if i.is_multiple_of(workload.overwrite_every.max(1)) {
            1
        } else {
            0
        };
        assert_eq!(
            got,
            value_for(i, pass, value_bytes),
            "tier returned stale data"
        );
    }
    let get_cycles = mem.cycles();
    let get_stats = mem.stats();

    let engine = kv.storage().expect("tiered store");
    let stats = engine.stats();
    let segments = engine.segment_count() as u64;
    let compactions = stats.compactions;
    let wal_total = stats.wal_appends;
    let sealed_mib = engine.disk().bytes() as f64 / (1024.0 * 1024.0);

    // Restart: only the untrusted disk survives; reopen replays the WAL
    // tail against the trusted counter floor.
    let disk = engine.disk().clone();
    let config = workload.config.clone();
    let counters = kv.storage().expect("tiered store").counters().clone();
    drop(kv);
    let mut restart_mem = MemorySim::enclave(geometry, costs.clone());
    let (mut reopened, report) = SecureKv::reopen(
        &mut restart_mem,
        config,
        StoreKeys::new([0xE1; 16]),
        counters,
        "bench/storage",
        disk,
    )
    .expect("restart from own disk");
    let restart_cycles = restart_mem.cycles();
    // Spot-check the recovered store before trusting the numbers.
    let probe = keys / 2;
    let pass = if probe.is_multiple_of(workload.overwrite_every.max(1)) {
        1
    } else {
        0
    };
    assert_eq!(
        reopened.get(&mut restart_mem, &key_of(probe)),
        Some(value_for(probe, pass, value_bytes)),
        "restarted store lost a key"
    );

    let ops = keys as f64;
    StoragePoint {
        epc_ratio: ratio,
        value_bytes,
        keys,
        put_us: costs.cycles_to_duration(put_cycles).as_secs_f64() * 1e6 / puts as f64,
        host_write_kib_per_put: put_host_kib / puts as f64,
        get_us: costs.cycles_to_duration(get_cycles).as_secs_f64() * 1e6 / ops,
        host_read_kib_per_get: get_stats.host_read_bytes as f64 / 1024.0 / ops,
        faults_per_get: get_stats.epc_faults as f64 / ops,
        segments,
        compactions,
        sealed_mib,
        restart_ms: costs.cycles_to_duration(restart_cycles).as_secs_f64() * 1e3,
        wal_replayed: report.wal_replayed,
        wal_total,
    }
}

/// The whole sweep, with enough workload echo to interpret the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// Usable EPC bytes each cell ran against.
    pub usable_epc_bytes: usize,
    /// Storage-tier tuning used.
    pub config: StorageConfig,
    /// One point per (ratio, value size) cell, row-major.
    pub points: Vec<StoragePoint>,
}

/// Runs the sweep and wraps it in a report.
#[must_use]
pub fn report_jobs(workload: &StorageWorkload, jobs: usize) -> StorageReport {
    StorageReport {
        usable_epc_bytes: workload.geometry.epc_total_bytes - workload.geometry.epc_reserved_bytes,
        config: workload.config.clone(),
        points: sweep_jobs(workload, jobs),
    }
}

impl StorageReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"storage\",\n");
        out.push_str(&format!(
            "  \"usable_epc_bytes\": {},\n",
            self.usable_epc_bytes
        ));
        out.push_str(&format!(
            "  \"config\": {{\"block_bytes\": {}, \"flush_bytes\": {}, \"cache_blocks\": {}, \"compact_at_segments\": {}}},\n",
            self.config.block_bytes,
            self.config.flush_bytes,
            self.config.cache_blocks,
            self.config.compact_at_segments
        ));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"epc_ratio\": {:.1}, \"value_bytes\": {}, \"keys\": {}, \
                 \"put_us\": {:.2}, \"host_write_kib_per_put\": {:.3}, \
                 \"get_us\": {:.2}, \"host_read_kib_per_get\": {:.3}, \
                 \"faults_per_get\": {:.3}, \"segments\": {}, \"compactions\": {}, \
                 \"sealed_mib\": {:.2}, \"restart_ms\": {:.3}, \
                 \"wal_replayed\": {}, \"wal_total\": {}}}",
                p.epc_ratio,
                p.value_bytes,
                p.keys,
                p.put_us,
                p.host_write_kib_per_put,
                p.get_us,
                p.host_read_kib_per_get,
                p.faults_per_get,
                p.segments,
                p.compactions,
                p.sealed_mib,
                p.restart_ms,
                p.wal_replayed,
                p.wal_total
            ));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized workload with the smoke sweep's shape.
    fn tiny_workload() -> StorageWorkload {
        StorageWorkload {
            epc_ratios: vec![0.5, 8.0],
            value_bytes: vec![64],
            geometry: small_epc(64 << 10, 16 << 10),
            config: StorageConfig {
                block_bytes: 512,
                flush_bytes: 32 << 10,
                cache_blocks: 2,
                compact_at_segments: 4,
            },
            overwrite_every: 4,
        }
    }

    #[test]
    fn beyond_epc_cell_pays_host_io_and_restarts_from_the_tail() {
        let workload = tiny_workload();
        let report = report_jobs(&workload, 1);
        assert_eq!(report.points.len(), 2);
        let small = &report.points[0];
        let large = &report.points[1];
        assert_eq!(small.epc_ratio, 0.5);
        assert_eq!(large.epc_ratio, 8.0);
        // The 8x working set cannot live in the memtable: its reads page
        // sealed blocks in from the host; flushes wrote sealed bytes.
        assert!(
            large.host_read_kib_per_get > 0.0,
            "8x EPC cell must read sealed blocks from the host"
        );
        assert!(large.sealed_mib > 0.0);
        assert!(large.segments >= 1);
        // Restart replays only the WAL tail, not the store's history.
        assert!(
            large.wal_replayed < large.wal_total,
            "restart must replay a tail ({} records), not the full history ({})",
            large.wal_replayed,
            large.wal_total
        );
        // The below-EPC working set fits the memtable budget: it is
        // served entirely from enclave memory, no sealed tier involved.
        assert_eq!(
            small.host_read_kib_per_get, 0.0,
            "0.5x EPC cell must stay resident"
        );
        assert_eq!(small.segments, 0);
        // Restart of the resident store replays its whole (small) WAL.
        assert_eq!(small.wal_replayed, small.wal_total);
    }

    #[test]
    fn sweep_is_byte_identical_across_job_counts() {
        let workload = tiny_workload();
        let serial = report_jobs(&workload, 1);
        let parallel = report_jobs(&workload, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn json_report_shape() {
        let workload = tiny_workload();
        let report = report_jobs(&workload, 2);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"storage\""));
        assert!(json.contains("\"epc_ratio\": 8.0"));
        assert!(json.contains("\"wal_replayed\""));
        assert!(json.ends_with("}\n"));
    }
}
