//! E12: elastic cluster controller under a seeded fault schedule.
//!
//! Each cell runs the full platform loop on the virtual clock: a load
//! ramp drives bus backpressure until the attached
//! [`securecloud::cluster::ClusterController`] scales the replicated KV
//! and the schedule kills exactly the replicas those scale-ups admit,
//! stalls another, and partitions a whole group; the calm tail then
//! drains everything back to the policy floor. The cell *asserts* the
//! headline robustness invariants — zero acknowledged writes lost, no
//! quorum-epoch rollback — and records what the controller did.
//!
//! Everything runs on virtual time, so every number is deterministic:
//! equal seeds produce byte-identical decision traces at any `--jobs N`
//! (pinned by `tests/parallel_determinism.rs` and the recorded
//! `trace_fnv` digests in `BENCH_cluster.json`).

use securecloud::cluster::ScalingPolicy;
use securecloud::eventbus::bus::METRIC_BACKPRESSURED;
use securecloud::faults::{FaultInjector, FaultKind, FaultPlan};
use securecloud::replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};
use securecloud::SecureCloud;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Sizing knobs for the chaos sweep.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fault-schedule seeds; each jitters the fire times differently
    /// against the fixed controller tick grid.
    pub seeds: Vec<u64>,
    /// Load levels: acknowledged-write attempts per tick.
    pub writes_per_tick: Vec<u64>,
    /// Controller ticks per cell (one per [`SecureCloud::advance`]).
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// Leading ticks with sustained bus backpressure (the ramp the
    /// controller scales up under; the remainder is the calm tail).
    pub overload_ticks: u64,
}

impl ClusterConfig {
    /// Full-size run: four schedules at two load levels.
    #[must_use]
    pub fn full() -> Self {
        ClusterConfig {
            seeds: vec![0xE1A5_0001, 0x5EED_0002, 0xC0FF_0003, 0xFA11_0004],
            writes_per_tick: vec![4, 12],
            ticks: 44,
            tick_ms: 250,
            overload_ticks: 11,
        }
    }

    /// CI-sized run with the same shape (the schedule still lands its
    /// kills mid-scale-up; only the cell count shrinks).
    #[must_use]
    pub fn smoke() -> Self {
        ClusterConfig {
            seeds: vec![0xE1A5_0001, 0x5EED_0002],
            writes_per_tick: vec![4],
            ticks: 44,
            tick_ms: 250,
            overload_ticks: 11,
        }
    }
}

/// One (seed, load) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Fault-schedule seed.
    pub seed: u64,
    /// Write attempts per tick.
    pub writes_per_tick: u64,
    /// Writes acknowledged at quorum.
    pub acked: u64,
    /// Writes refused unacknowledged (partition window, drains).
    pub rejected: u64,
    /// Acknowledged writes unreadable at the end — asserted zero.
    pub acked_lost: u64,
    /// Quorum-epoch rollbacks observed across ticks — asserted zero.
    pub epoch_rollbacks: u64,
    /// Replicas admitted by controller scale-ups.
    pub scale_ups: u64,
    /// Replicas drained by controller scale-downs.
    pub scale_downs: u64,
    /// Replicas killed (schedule kills + controller fence-kills).
    pub replicas_killed: u64,
    /// Replicas re-admitted through attested failover.
    pub replicas_replaced: u64,
    /// Live replicas after the calm tail (back at the policy floor).
    pub final_live: u64,
    /// Final trusted epoch per shard group.
    pub epochs: Vec<u64>,
    /// Controller decision lines emitted.
    pub decisions: u64,
    /// The full decision trace — the byte-identical determinism
    /// artifact (digested as `trace_fnv` in the JSON report).
    pub decision_trace: String,
}

/// FNV-1a digest of a decision trace, recorded so two report files can
/// be compared for determinism without shipping the full traces.
#[must_use]
pub fn trace_fnv(trace: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in trace.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The seeded fault schedule: kills aimed at the very replicas the load
/// ramp's scale-ups admit (slot 3 right after n reaches 4, slot 4 right
/// after n reaches 5), a grey-failure stall, a whole-group partition,
/// and a late kill during the drain era. The jitter moves each fire
/// time by whole controller-tick windows (plus a sub-tick offset), so
/// different seeds interleave the same faults *observably* differently
/// against the controller's decisions — sub-tick movement alone would
/// be invisible to a controller that only looks at tick boundaries.
fn plan_for(seed: u64, tick_ms: u64) -> FaultPlan {
    let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let jitter = |k: u32, windows: u64| {
        let bits = mix.rotate_left(k);
        (bits % windows) * tick_ms + bits % (tick_ms - 1) + 1
    };
    FaultPlan::new()
        .at(
            2 * tick_ms + jitter(1, 3),
            FaultKind::ReplicaKill { shard: 0, slot: 3 },
        )
        .at(
            4 * tick_ms + jitter(7, 4),
            FaultKind::ReplicaStall { shard: 1, slot: 1 },
        )
        .at(
            10 * tick_ms + jitter(13, 3),
            FaultKind::ReplicaKill { shard: 0, slot: 4 },
        )
        .at(
            12 * tick_ms + jitter(19, 3),
            FaultKind::NetworkPartition {
                group: 1,
                heal_after_ms: tick_ms + jitter(23, 3),
            },
        )
        .at(
            20 * tick_ms + jitter(29, 4),
            FaultKind::ReplicaKill { shard: 1, slot: 0 },
        )
}

fn run_cell(seed: u64, writes_per_tick: u64, config: &ClusterConfig) -> ClusterPoint {
    let mut cloud = SecureCloud::new();
    let injector = Arc::new(FaultInjector::with_plan(
        seed,
        plan_for(seed, config.tick_ms),
    ));
    cloud.set_fault_injector(Arc::clone(&injector));
    let id = cloud
        .deploy_replicated_kv(ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        })
        .expect("valid replica config");
    cloud
        .attach_cluster_controller(id, ScalingPolicy::default(), 8)
        .expect("valid default policy");

    let backpressured = cloud.telemetry().counter(METRIC_BACKPRESSURED);
    let mut acked: Vec<(String, u64)> = Vec::new();
    let mut rejected = 0u64;
    let mut epoch_rollbacks = 0u64;
    let mut last_epochs: Vec<u64> = Vec::new();
    for tick in 0..config.ticks {
        for i in 0..writes_per_tick {
            let key = format!("meter/{tick}/{i}");
            match cloud
                .replicated_kv_mut(id)
                .expect("deployment exists")
                .put(key.as_bytes(), &tick.to_le_bytes())
            {
                Ok(()) => acked.push((key, tick)),
                Err(_) => rejected += 1,
            }
        }
        if tick < config.overload_ticks {
            backpressured.add(20);
        }
        cloud.advance(config.tick_ms);
        let epochs = cloud
            .replicated_kv_mut(id)
            .expect("deployment exists")
            .stats()
            .epochs;
        epoch_rollbacks += epochs
            .iter()
            .zip(&last_epochs)
            .filter(|(now, then)| now < then)
            .count() as u64;
        last_epochs = epochs;
    }

    let kv = cloud.replicated_kv_mut(id).expect("deployment exists");
    let acked_lost = acked
        .iter()
        .filter(|(key, tick)| {
            kv.get(key.as_bytes()).expect("read quorum at the end")
                != Some(tick.to_le_bytes().to_vec())
        })
        .count() as u64;
    assert_eq!(
        acked_lost, 0,
        "seed {seed:#x} load {writes_per_tick}: acknowledged writes lost"
    );
    assert_eq!(
        epoch_rollbacks, 0,
        "seed {seed:#x} load {writes_per_tick}: a quorum epoch rolled back"
    );
    let stats = kv.stats();
    let decision_trace = cloud
        .cluster_controller()
        .expect("controller attached")
        .decision_trace();
    ClusterPoint {
        seed,
        writes_per_tick,
        acked: acked.len() as u64,
        rejected,
        acked_lost,
        epoch_rollbacks,
        scale_ups: stats.scale_ups,
        scale_downs: stats.scale_downs,
        replicas_killed: stats.replicas_killed,
        replicas_replaced: stats.replicas_replaced,
        final_live: stats.live_replicas as u64,
        epochs: stats.epochs,
        decisions: decision_trace.lines().count() as u64,
        decision_trace,
    }
}

/// Runs the (seed, load) grid fanned across `jobs` worker threads. Cells
/// are independent virtual-clock simulations, so results — decision
/// traces included — are byte-identical for any job count, in seed-major
/// order.
#[must_use]
pub fn sweep_jobs(config: &ClusterConfig, jobs: usize) -> ClusterReport {
    let cells: Vec<(u64, u64)> = config
        .seeds
        .iter()
        .flat_map(|&seed| config.writes_per_tick.iter().map(move |&w| (seed, w)))
        .collect();
    let points =
        crate::pool::run_ordered(cells, jobs, |(seed, writes)| run_cell(seed, writes, config));
    ClusterReport {
        ticks: config.ticks,
        tick_ms: config.tick_ms,
        points,
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Controller ticks per cell.
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// One point per (seed, load) cell, seed-major.
    pub points: Vec<ClusterPoint>,
}

impl ClusterReport {
    /// The report as a JSON document (hand-rolled — the workspace carries
    /// no serde). Decision traces are recorded as FNV-1a digests plus
    /// line counts, which is enough to diff two runs for determinism.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"cluster\",\n");
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"tick_ms\": {},\n", self.tick_ms));
        out.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let epochs: Vec<String> = p.epochs.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"seed\": {}, \"writes_per_tick\": {}, \"acked\": {}, \
                 \"rejected\": {}, \"acked_lost\": {}, \"epoch_rollbacks\": {}, \
                 \"scale_ups\": {}, \"scale_downs\": {}, \"replicas_killed\": {}, \
                 \"replicas_replaced\": {}, \"final_live\": {}, \"epochs\": [{}], \
                 \"decisions\": {}, \"trace_fnv\": {}}}",
                p.seed,
                p.writes_per_tick,
                p.acked,
                p.rejected,
                p.acked_lost,
                p.epoch_rollbacks,
                p.scale_ups,
                p.scale_downs,
                p.replicas_killed,
                p.replicas_replaced,
                p.final_live,
                epochs.join(", "),
                p.decisions,
                trace_fnv(&p.decision_trace)
            ));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates any filesystem error.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClusterConfig {
        ClusterConfig {
            seeds: vec![0xE1A5_0001],
            writes_per_tick: vec![4],
            ticks: 44,
            tick_ms: 250,
            overload_ticks: 11,
        }
    }

    #[test]
    fn chaos_cell_scales_survives_and_converges() {
        let report = sweep_jobs(&tiny(), 1);
        let point = &report.points[0];
        // run_cell already asserted the invariants; pin the recorded
        // evidence that the schedule actually exercised the controller.
        assert_eq!(point.acked_lost, 0);
        assert_eq!(point.epoch_rollbacks, 0);
        assert!(point.scale_ups >= 2, "ramp scaled up: {point:?}");
        assert!(point.scale_downs >= 2, "calm tail drained: {point:?}");
        assert!(point.replicas_killed >= 3);
        assert_eq!(point.replicas_killed, point.replicas_replaced);
        assert_eq!(point.final_live, 6, "back at the policy floor");
        assert!(point.rejected > 0, "partition refused some writes");
        assert!(point.decision_trace.contains("scale-up shard s0"));
        assert!(point.decision_trace.contains("scale-down shard"));
    }

    #[test]
    fn report_serialises_with_trace_digests() {
        let report = sweep_jobs(&tiny(), 1);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"cluster\""));
        assert!(json.contains("\"acked_lost\": 0"));
        assert!(json.contains("\"trace_fnv\": "));
        assert!(json.ends_with("}\n"));
    }
}
