//! E7: "orchestration services detect anomalies within milliseconds"
//! (§VI) — power-quality detection latency and orchestrator reaction.

use securecloud_eventbus::service::ServiceHost;
use securecloud_smartgrid::orchestration::{
    telemetry, Orchestrator, ACTIONS_TOPIC, TELEMETRY_TOPIC,
};
use securecloud_smartgrid::quality::{run_detector, QualityDetector, QualitySpec};

/// Result of the orchestration-latency experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestrationResult {
    /// Injected power-quality faults.
    pub faults_injected: usize,
    /// Faults detected.
    pub faults_detected: usize,
    /// Mean detection latency, milliseconds.
    pub mean_latency_ms: f64,
    /// Maximum detection latency, milliseconds.
    pub max_latency_ms: f64,
    /// Ground-truth faults missed.
    pub missed: usize,
    /// Detections without a matching fault.
    pub false_positives: usize,
    /// Bus steps between anomaly telemetry and the scaling action.
    pub orchestrator_reaction_steps: usize,
}

/// Runs the power-quality detector over a trace with `faults` injected
/// sags/swells, then measures the bus-level orchestrator reaction.
#[must_use]
pub fn run(samples: usize, faults: usize, seed: u64) -> OrchestrationResult {
    let trace = QualitySpec {
        samples,
        faults,
        seed,
        ..QualitySpec::default()
    }
    .generate();
    let report = run_detector(&trace, &mut QualityDetector::new());

    // Orchestrator reaction: warm it up on the bus, inject a latency spike,
    // count delivery steps until the scale-up action appears.
    let mut host = ServiceHost::new(1_000);
    host.register(Box::new(Orchestrator::new()));
    let actions = host.bus_mut().subscribe(ACTIONS_TOPIC, None);
    for i in 0..30 {
        host.bus_mut().publish(
            TELEMETRY_TOPIC,
            Vec::new(),
            telemetry("grid-analytics", 4.0 + f64::from(i % 3) * 0.02),
        );
    }
    host.run_until_quiet(64);
    host.bus_mut().publish(
        TELEMETRY_TOPIC,
        Vec::new(),
        telemetry("grid-analytics", 400.0),
    );
    let mut steps = 0;
    while host.bus().backlog(actions) == 0 && steps < 10 {
        host.step();
        steps += 1;
    }

    OrchestrationResult {
        faults_injected: trace.faults.len(),
        faults_detected: report.latencies_ms.len(),
        mean_latency_ms: report.mean_latency_ms(),
        max_latency_ms: report.max_latency_ms(),
        missed: report.missed,
        false_positives: report.false_positives,
        orchestrator_reaction_steps: steps,
    }
}
