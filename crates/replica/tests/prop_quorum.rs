//! Property tests for the quorum invariants the replication layer sells:
//!
//! * every **acknowledged** write survives any crash of a *minority* of
//!   replicas, before and after snapshot-streaming failover;
//! * an untrusted host serving a **stale** snapshot during failover is
//!   always detected by the trusted-counter freshness check, no matter
//!   how far behind the snapshot is.

use proptest::prelude::*;
use securecloud_kvstore::{CounterService, KvError};
use securecloud_replica::cluster::{ReplicaConfig, ReplicationFactor, WriteQuorum};
use securecloud_replica::{ProvisioningService, ReplicaError, ShardGroup, ShardId};
use securecloud_sgx::enclave::{Measurement, Platform};

fn build_group(replication: u32) -> (ShardGroup, ProvisioningService) {
    let config = ReplicaConfig {
        shards: 1,
        replication: ReplicationFactor(replication),
        write_quorum: WriteQuorum::majority(ReplicationFactor(replication)),
        ..ReplicaConfig::default()
    };
    config.validate().expect("valid shape");
    let platform = Platform::new();
    let mut provisioning = ProvisioningService::new(&platform, Measurement::of_code(&config.code));
    let counters = CounterService::new();
    let group = ShardGroup::new(
        ShardId(0),
        &config,
        &platform,
        &counters,
        &mut provisioning,
        None,
        None,
    )
    .expect("bootstrap");
    (group, provisioning)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acked writes survive any minority of crashes, and failover restores
    /// full strength without losing them.
    #[test]
    fn acked_writes_survive_minority_crashes(
        replication in prop_oneof![Just(3u32), Just(5u32)],
        writes in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..8), prop::collection::vec(any::<u8>(), 0..16)),
            1..12,
        ),
        kill_seed in any::<u64>(),
    ) {
        let (mut group, mut provisioning) = build_group(replication);
        for (key, value) in &writes {
            group.put(key, value).expect("acknowledged quorum write");
        }

        // Crash a minority: any subset of size < n/2 + ... at most
        // floor((n-1)/2) replicas, chosen by the seed.
        let minority = ((replication as usize) - 1) / 2;
        let mut kills = 0;
        let mut slot = (kill_seed % u64::from(replication)) as usize;
        while kills < minority {
            if group.kill(slot, "prop minority crash").is_some() {
                kills += 1;
            }
            slot = (slot + 1) % replication as usize;
        }

        // Every acknowledged write is still readable at quorum.
        let mut expected: std::collections::HashMap<&[u8], &[u8]> = Default::default();
        for (key, value) in &writes {
            expected.insert(key.as_slice(), value.as_slice());
        }
        for (key, value) in &expected {
            prop_assert_eq!(
                group.get(key).expect("read quorum held"),
                Some(value.to_vec())
            );
        }

        // Failover re-attests replacements and catches them up.
        let replaced = group.failover(&mut provisioning).expect("survivors exist");
        prop_assert_eq!(replaced as usize, minority);
        prop_assert_eq!(group.live(), replication as usize);
        for (key, value) in &expected {
            prop_assert_eq!(group.get(key).unwrap(), Some(value.to_vec()));
        }
        // And the group accepts new writes at the bumped epoch.
        group.put(b"post-failover", b"ok").expect("healthy again");
        prop_assert_eq!(group.epoch(), 2);
    }

    /// However many writes and snapshots separate a stale snapshot from
    /// the group's present, serving it during failover is detected.
    #[test]
    fn stale_snapshots_always_detected(
        staleness in 1usize..6,
        extra_writes in 1usize..8,
    ) {
        let (mut group, mut provisioning) = build_group(3);
        group.put(b"k", b"v0").unwrap();
        let stale = group.seal_snapshot().expect("snapshot sealed");

        // The group moves on: more writes, `staleness` fresher snapshots.
        for i in 0..extra_writes {
            group.put(format!("k{i}").as_bytes(), b"newer").unwrap();
        }
        for _ in 0..staleness {
            group.seal_snapshot().expect("fresher snapshot");
        }

        group.kill(0, "prop stale-snapshot crash");
        let err = group
            .adopt_replacement(0, &mut provisioning, &stale)
            .expect_err("stale snapshot must be rejected");
        prop_assert!(
            matches!(
                err,
                ReplicaError::Store {
                    source: KvError::RollbackDetected { .. },
                    ..
                }
            ),
            "expected rollback detection, got {err}"
        );
        prop_assert!(group.is_degraded(), "rejected replacement must not join");

        // The *fresh* path still works: a current snapshot is accepted.
        let fresh = group.seal_snapshot().unwrap();
        group.adopt_replacement(0, &mut provisioning, &fresh).expect("fresh snapshot accepted");
        prop_assert_eq!(group.live(), 3);
    }

    /// Decommissioning replicas between quorum writes never loses an ack:
    /// whatever interleaving of writes, scale-ups, scale-downs, and crashes
    /// the seed produces, every write that was *acknowledged* stays
    /// readable, the drain check refuses any scale-down that would
    /// endanger the post-drain majority, and epochs only move forward.
    #[test]
    fn decommission_between_quorum_writes_never_loses_acks(
        replication in prop_oneof![Just(3u32), Just(5u32)],
        ops in prop::collection::vec(0u8..4, 4..24),
        op_seed in any::<u64>(),
    ) {
        let (mut group, mut provisioning) = build_group(replication);
        let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut last_epoch = group.epoch();
        let mut seq = 0u64;
        for (step, op) in ops.iter().enumerate() {
            match op {
                // Quorum write: track it only if acknowledged.
                0 | 1 => {
                    let key = format!("k/{seq}").into_bytes();
                    let value = format!("v/{step}").into_bytes();
                    seq += 1;
                    if group.put(&key, &value).is_ok() {
                        acked.push((key, value));
                    }
                }
                // Scale-up through the attested admission path.
                2 => {
                    let before = group.replication_factor();
                    group.expand(&mut provisioning).expect("expand admits");
                    prop_assert_eq!(group.replication_factor(), before + 1);
                }
                // Drain-before-decommission; sometimes on a degraded
                // group (crash first), so the refusal path is exercised.
                3 => {
                    // Crash first sometimes, but never a *majority* crash
                    // (the invariant only covers minority failures).
                    if op_seed.wrapping_add(step as u64).is_multiple_of(3)
                        && group.responsive() > 1
                    {
                        let slot = (op_seed >> (step % 32)) as usize
                            % group.replication_factor();
                        group.kill(slot, "prop crash before drain");
                    }
                    let n = group.replication_factor();
                    match group.decommission_last() {
                        Ok(_) => {
                            prop_assert_eq!(group.replication_factor(), n - 1);
                        }
                        Err(ReplicaError::DrainRefused { live, needed, .. }) => {
                            // Refusal must be *because* the survivors
                            // could not sustain the post-drain majority.
                            prop_assert!(live < needed);
                        }
                        Err(other) => {
                            prop_assert!(false, "unexpected decommission error: {}", other);
                        }
                    }
                    // Repair any crash so later quorum ops can proceed.
                    if group.is_degraded() {
                        group.failover(&mut provisioning).expect("survivors exist");
                    }
                }
                _ => unreachable!("op domain is 0..=3"),
            }
            // Quorum stays a majority at every size the group passes
            // through, and the trusted epoch never rolls back.
            prop_assert!(group.write_quorum() * 2 > group.replication_factor());
            prop_assert!(group.epoch() >= last_epoch, "epoch rollback");
            last_epoch = group.epoch();
        }
        // Every acknowledged write is still readable (freshest value per
        // key wins; keys here are unique so each ack is its own key).
        for (key, value) in &acked {
            prop_assert_eq!(
                group.get(key).expect("read quorum held"),
                Some(value.clone()),
                "acked write lost after scaling schedule"
            );
        }
    }
}
