//! One shard group: `n` enclave replicas, quorum writes/reads, epoch
//! discipline, and snapshot-streaming failover.
//!
//! Every replica is its own enclave with its own
//! [`MemorySim`](securecloud_sgx::mem::MemorySim), so a group's working
//! set pages independently of its siblings — the sharding story of Göttel
//! et al.'s memory-protection trade-off study: keep each working set under
//! the EPC knee and the paging cliff never fires.
//!
//! ## Quorum rules
//!
//! A write goes to **every** live replica and is acknowledged only when at
//! least [`WriteQuorum`](crate::cluster::WriteQuorum) replicas are live to
//! take it; with `w > n/2` this means every acknowledged write is on a
//! majority, so it survives any minority of replica crashes. A read
//! requires `n - w + 1` live replicas (the read quorum overlapping every
//! write quorum) and returns the freshest copy.
//!
//! ## Epochs and rollback protection
//!
//! The group's membership epoch and snapshot version both live in the
//! trusted [`CounterService`]. The epoch bumps on every failover; a
//! replica holding a stale epoch refuses writes
//! ([`ReplicaError::StaleEpoch`]). Snapshots seal the store under the
//! group key and record their version in the counter, so an untrusted
//! host serving an *old* snapshot during failover is caught by
//! [`SecureKv::restore`]'s freshness check.

use crate::cluster::ReplicaConfig;
use crate::provision::ProvisioningService;
use crate::{ReplicaError, ReplicaId, ShardId};
use securecloud_faults::FaultInjector;
use securecloud_kvstore::{
    CounterService, IncrementalSnapshot, KvError, SecureKv, Snapshot, StorageConfig, StoreKeys,
};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::enclave::{Enclave, EnclaveConfig, Platform};
use securecloud_telemetry::{Counter, Gauge, Histogram, Telemetry, TraceContext};
use std::sync::Arc;

/// What failover streams to a replacement over the trusted channel.
///
/// In-memory groups stream the whole sealed store. Tiered groups stream
/// only the sealed manifest and WAL tail ([`IncrementalSnapshot`]): the
/// sealed segments are immutable and self-authenticating against the
/// manifest's integrity roots, so a replacement can fetch them from any
/// untrusted mirror — the trusted stream shrinks from O(data) to
/// O(metadata + recent writes).
#[derive(Debug, Clone)]
pub enum SnapshotStream {
    /// A whole-store sealed snapshot (in-memory groups).
    Whole(Snapshot),
    /// Sealed manifest + WAL tail; segments travel out-of-band (tiered
    /// groups).
    Incremental(IncrementalSnapshot),
}

impl SnapshotStream {
    /// Store version the stream captures.
    #[must_use]
    pub fn version(&self) -> u64 {
        match self {
            SnapshotStream::Whole(snapshot) => snapshot.version,
            SnapshotStream::Incremental(snapshot) => snapshot.version,
        }
    }

    /// Bytes that must travel through the trusted failover channel.
    #[must_use]
    pub fn trusted_bytes(&self) -> u64 {
        match self {
            SnapshotStream::Whole(snapshot) => snapshot.sealed.len() as u64,
            SnapshotStream::Incremental(snapshot) => snapshot.trusted_bytes(),
        }
    }
}

/// One enclave-resident replica of a shard's keyspace.
#[derive(Debug)]
struct Replica {
    id: ReplicaId,
    enclave: Enclave,
    kv: SecureKv,
    group_key: [u8; 16],
    epoch: u64,
    /// A stalled replica is resident but degraded: it takes no writes,
    /// serves no reads, and does not count toward any quorum. Its version
    /// falls behind (visible on the replication-lag gauge) until a
    /// controller kills and replaces it. There is deliberately no
    /// "unstall" path: epochs move on without it, so a silently
    /// resurrected stalled replica is fenced by the stale-epoch check.
    stalled: bool,
}

impl Replica {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ReplicaError> {
        let kv = &mut self.kv;
        self.enclave
            .ecall(|mem| {
                kv.put(mem, key, value);
            })
            .map_err(|source| ReplicaError::Sgx {
                replica: self.id,
                source,
            })
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ReplicaError> {
        let kv = &mut self.kv;
        self.enclave
            .ecall(|mem| kv.get(mem, key))
            .map_err(|source| ReplicaError::Sgx {
                replica: self.id,
                source,
            })
    }

    /// Performs the read without copying the value out: charges exactly the
    /// same simulated memory accesses as [`Replica::get`], for quorum reads
    /// that only need this replica's vote, not another copy of its value.
    fn touch(&mut self, key: &[u8]) -> Result<(), ReplicaError> {
        let kv = &mut self.kv;
        self.enclave
            .ecall(|mem| {
                kv.get_ref(mem, key);
            })
            .map_err(|source| ReplicaError::Sgx {
                replica: self.id,
                source,
            })
    }
}

/// Per-group metric handles; standalone when no telemetry is attached.
#[derive(Debug)]
struct GroupMetrics {
    put_cycles: Histogram,
    get_cycles: Histogram,
    replication_lag: Gauge,
    snapshot_stream_bytes: Counter,
}

impl GroupMetrics {
    fn new(shard: ShardId, telemetry: Option<&Arc<Telemetry>>) -> Self {
        match telemetry {
            Some(t) => {
                let label = shard.to_string();
                let labels: &[(&str, &str)] = &[("shard", label.as_str())];
                GroupMetrics {
                    put_cycles: t.histogram_with("securecloud_replica_put_cycles", labels),
                    get_cycles: t.histogram_with("securecloud_replica_get_cycles", labels),
                    replication_lag: t.gauge_with("securecloud_replica_replication_lag", labels),
                    snapshot_stream_bytes: t
                        .counter_with("securecloud_replica_snapshot_stream_bytes_total", labels),
                }
            }
            None => GroupMetrics {
                put_cycles: Histogram::new(),
                get_cycles: Histogram::new(),
                replication_lag: Gauge::new(),
                snapshot_stream_bytes: Counter::new(),
            },
        }
    }
}

/// A quorum-replicated shard group over enclave-resident stores.
#[derive(Debug)]
pub struct ShardGroup {
    shard: ShardId,
    slots: Vec<Option<Replica>>,
    write_quorum: usize,
    counters: CounterService,
    epoch_counter: String,
    version_counter: String,
    platform: Platform,
    code: Vec<u8>,
    geometry: MemoryGeometry,
    costs: CostModel,
    /// Sealed-tier configuration; `Some` makes every replica tiered.
    storage: Option<StorageConfig>,
    /// Counter namespace the replicas' storage engines share — one floor
    /// per shard, since replicas apply identical acknowledged histories.
    storage_counter_base: String,
    /// Cumulative bytes streamed over the trusted failover channel.
    streamed_snapshot_bytes: u64,
    /// Cycles spent by replicas that have since been killed, so
    /// [`ShardGroup::cycles`] stays monotone across failovers.
    retired_cycles: u64,
    /// EPC faults charged by replicas that have since been killed.
    retired_epc_faults: u64,
    incarnations: u32,
    /// While `true` the group is cut off from its clients: quorum
    /// operations are refused outright, so writes fail *unacknowledged*
    /// and nothing acknowledged can be lost to the partition.
    partitioned: bool,
    telemetry: Option<Arc<Telemetry>>,
    injector: Option<Arc<FaultInjector>>,
    metrics: GroupMetrics,
}

impl ShardGroup {
    /// Builds the group: launches `replication_factor` enclaves and admits
    /// each through the provisioning service (attestation-gated).
    ///
    /// Most deployments go through
    /// [`ReplicatedKv::deploy`](crate::cluster::ReplicatedKv::deploy); a
    /// bare group is useful for tests and single-shard setups.
    ///
    /// # Errors
    ///
    /// Admission errors ([`ReplicaError::AdmissionDenied`] /
    /// [`ReplicaError::Channel`]) or enclave-launch failures
    /// ([`ReplicaError::Sgx`]).
    pub fn new(
        shard: ShardId,
        config: &ReplicaConfig,
        platform: &Platform,
        counters: &CounterService,
        provisioning: &mut ProvisioningService,
        telemetry: Option<&Arc<Telemetry>>,
        injector: Option<&Arc<FaultInjector>>,
    ) -> Result<Self, ReplicaError> {
        let n = config.replication.0 as usize;
        let mut group = ShardGroup {
            shard,
            slots: Vec::new(),
            write_quorum: config.write_quorum.0 as usize,
            counters: counters.clone(),
            epoch_counter: format!("replica/{shard}/epoch"),
            version_counter: format!("replica/{shard}/version"),
            platform: platform.clone(),
            code: config.code.clone(),
            geometry: config.geometry,
            costs: config.costs.clone(),
            storage: config.storage.clone(),
            storage_counter_base: format!("replica/{shard}/storage"),
            streamed_snapshot_bytes: 0,
            retired_cycles: 0,
            retired_epc_faults: 0,
            incarnations: 0,
            partitioned: false,
            telemetry: telemetry.cloned(),
            injector: injector.cloned(),
            metrics: GroupMetrics::new(shard, telemetry),
        };
        // Epoch 1: the founding membership.
        group.counters.increment(&group.epoch_counter);
        for slot in 0..n {
            let replica = group.launch_admitted(slot as u32, provisioning)?;
            group.slots.push(Some(replica));
        }
        Ok(group)
    }

    /// The shard this group serves.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The group's current trusted epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.counters.read(&self.epoch_counter)
    }

    /// Configured replication factor.
    #[must_use]
    pub fn replication_factor(&self) -> usize {
        self.slots.len()
    }

    /// Live replicas in the group (resident, including stalled ones).
    #[must_use]
    pub fn live(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Replicas that count toward quorums: live and not stalled.
    #[must_use]
    pub fn responsive(&self) -> usize {
        self.slots.iter().flatten().filter(|r| !r.stalled).count()
    }

    /// Ids of every resident replica in slot order, stalled ones included
    /// (they still occupy a slot and placement capacity until killed).
    #[must_use]
    pub fn live_replica_ids(&self) -> Vec<ReplicaId> {
        self.slots.iter().flatten().map(|r| r.id).collect()
    }

    /// Ids of the currently stalled replicas, in slot order.
    #[must_use]
    pub fn stalled_replicas(&self) -> Vec<ReplicaId> {
        self.slots
            .iter()
            .flatten()
            .filter(|r| r.stalled)
            .map(|r| r.id)
            .collect()
    }

    /// The current write quorum (maintained as the smallest majority of
    /// the group size across scale-up/scale-down).
    #[must_use]
    pub fn write_quorum(&self) -> usize {
        self.write_quorum
    }

    /// Whether the group is currently partitioned from its clients.
    #[must_use]
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Whether any slot is vacant (a replica was killed and not replaced).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.live() < self.slots.len()
    }

    /// Store versions of the live replicas, by slot order.
    #[must_use]
    pub fn replica_versions(&self) -> Vec<u64> {
        self.slots
            .iter()
            .flatten()
            .map(|r| r.kv.version())
            .collect()
    }

    /// Total simulated cycles charged by this group's replicas, including
    /// replicas retired by failover (monotone).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.retired_cycles
            + self
                .slots
                .iter()
                .flatten()
                .map(|r| r.enclave.memory_view().cycles())
                .sum::<u64>()
    }

    /// Total EPC faults charged by this group's replicas, including
    /// replicas retired by failover (monotone). The paging indicator for
    /// the sharding sweep: ~0 once each shard's slice fits the EPC.
    #[must_use]
    pub fn epc_faults(&self) -> u64 {
        self.retired_epc_faults
            + self
                .slots
                .iter()
                .flatten()
                .map(|r| r.enclave.memory_view().stats().epc_faults)
                .sum::<u64>()
    }

    /// Quorum write: every live replica takes the write; acknowledged only
    /// if at least the write quorum is live.
    ///
    /// # Errors
    ///
    /// * [`ReplicaError::QuorumLost`] — fewer live replicas than the write
    ///   quorum; the write is not applied anywhere.
    /// * [`ReplicaError::StaleEpoch`] — a replica missed a membership
    ///   change (defensive; the group keeps epochs in lockstep).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ReplicaError> {
        self.put_inner(key, value, TraceContext::none())
    }

    /// [`ShardGroup::put`] under a causal parent: the quorum write becomes
    /// a `quorum_write` span with one `replica_put` child span per live
    /// participating replica, so a trace shows exactly which replicas the
    /// write fanned out to. With an absent context (or no telemetry) this
    /// is byte-identical to the untraced path.
    ///
    /// # Errors
    ///
    /// Same as [`ShardGroup::put`].
    pub fn put_traced(
        &mut self,
        key: &[u8],
        value: &[u8],
        parent: TraceContext,
    ) -> Result<(), ReplicaError> {
        self.put_inner(key, value, parent)
    }

    fn put_inner(
        &mut self,
        key: &[u8],
        value: &[u8],
        parent: TraceContext,
    ) -> Result<(), ReplicaError> {
        let tracer = match &self.telemetry {
            Some(t) if !parent.is_none() => Some(Arc::clone(t)),
            None | Some(_) => None,
        };
        let quorum_ctx = tracer
            .as_ref()
            .map_or_else(TraceContext::none, |t| t.mint_child(parent));
        let _span = tracer.as_ref().map(|t| {
            t.span_ctx(
                "replica",
                "quorum_write",
                vec![("shard", self.shard.to_string())],
                quorum_ctx,
            )
        });
        if self.partitioned {
            return Err(ReplicaError::Partitioned { shard: self.shard });
        }
        let responsive = self.responsive();
        if responsive < self.write_quorum {
            return Err(ReplicaError::QuorumLost {
                shard: self.shard,
                needed: self.write_quorum,
                live: responsive,
            });
        }
        let epoch = self.epoch();
        let before = self.cycles();
        for replica in self.slots.iter_mut().flatten().filter(|r| !r.stalled) {
            if replica.epoch != epoch {
                return Err(ReplicaError::StaleEpoch {
                    replica: replica.id,
                    have: replica.epoch,
                    want: epoch,
                });
            }
            let _replica_span = tracer.as_ref().map(|t| {
                t.span_ctx(
                    "replica",
                    "replica_put",
                    vec![("replica", replica.id.to_string())],
                    t.mint_child(quorum_ctx),
                )
            });
            replica.put(key, value)?;
        }
        self.metrics.put_cycles.observe(self.cycles() - before);
        self.update_replication_lag();
        Ok(())
    }

    /// Quorum read: requires the read quorum (`n - w + 1`) live so it
    /// overlaps every write quorum, and returns the freshest copy.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::QuorumLost`] — fewer live replicas than the read
    /// quorum.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ReplicaError> {
        if self.partitioned {
            return Err(ReplicaError::Partitioned { shard: self.shard });
        }
        let read_quorum = self.slots.len() - self.write_quorum + 1;
        let responsive = self.responsive();
        if responsive < read_quorum {
            return Err(ReplicaError::QuorumLost {
                shard: self.shard,
                needed: read_quorum,
                live: responsive,
            });
        }
        let before = self.cycles();
        let mut freshest: Option<(u64, Option<Vec<u8>>)> = None;
        for replica in self
            .slots
            .iter_mut()
            .flatten()
            .filter(|r| !r.stalled)
            .take(read_quorum)
        {
            let version = replica.kv.version();
            if freshest.as_ref().is_none_or(|(v, _)| version > *v) {
                let value = replica.get(key)?;
                freshest = Some((version, value));
            } else {
                // This replica cannot win the freshness race; read it for
                // the quorum (same simulated cost) without copying its value.
                replica.touch(key)?;
            }
        }
        self.metrics.get_cycles.observe(self.cycles() - before);
        Ok(freshest.expect("read quorum is at least one replica").1)
    }

    /// Kills the replica in `slot`: its enclave aborts and the slot goes
    /// vacant. Returns the killed replica's id, or `None` if the slot is
    /// already vacant or out of range.
    pub fn kill(&mut self, slot: usize, reason: &str) -> Option<ReplicaId> {
        let mut replica = self.slots.get_mut(slot)?.take()?;
        replica.enclave.abort(reason);
        self.retired_cycles += replica.enclave.memory_view().cycles();
        self.retired_epc_faults += replica.enclave.memory_view().stats().epc_faults;
        self.record(format!("replica {} killed: {reason}", replica.id));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "replica_killed",
                vec![("replica", replica.id.to_string())],
            );
        }
        self.update_replication_lag();
        Some(replica.id)
    }

    /// Stalls the replica in `slot`: it stays resident but stops taking
    /// writes, serving reads, or counting toward quorums. Returns the
    /// stalled replica's id, or `None` if the slot is vacant, out of
    /// range, or already stalled.
    pub fn stall(&mut self, slot: usize) -> Option<ReplicaId> {
        let replica = self.slots.get_mut(slot)?.as_mut()?;
        if replica.stalled {
            return None;
        }
        replica.stalled = true;
        let id = replica.id;
        self.record(format!(
            "replica {id} stalled: degraded, fenced out of quorums"
        ));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "replica_stalled",
                vec![("replica", id.to_string())],
            );
        }
        Some(id)
    }

    /// Partitions the group from its clients: [`ShardGroup::put`] and
    /// [`ShardGroup::get`] refuse with [`ReplicaError::Partitioned`] until
    /// [`ShardGroup::heal_partition`]. Returns `false` if already
    /// partitioned. The epoch is untouched — membership did not change,
    /// and epochs only ever move through the trusted counter.
    pub fn partition(&mut self) -> bool {
        if self.partitioned {
            return false;
        }
        self.partitioned = true;
        self.record(format!("shard {} partitioned from clients", self.shard));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "partitioned",
                vec![("shard", self.shard.to_string())],
            );
        }
        true
    }

    /// Heals a partition; returns `false` if the group was not partitioned.
    pub fn heal_partition(&mut self) -> bool {
        if !self.partitioned {
            return false;
        }
        self.partitioned = false;
        self.record(format!("shard {} partition healed", self.shard));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "partition_healed",
                vec![("shard", self.shard.to_string())],
            );
        }
        true
    }

    /// Scale-up: appends one slot, bumps the trusted epoch (a membership
    /// change), and admits a re-attested newcomer caught up from a sealed
    /// snapshot of the freshest survivor. The write quorum is re-derived
    /// as the smallest majority of the new size, so `w > n/2` holds at
    /// every size.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NoSurvivors`] when no replica can seal a snapshot,
    /// or admission/restore errors from [`ShardGroup::adopt_replacement`]
    /// (the new slot then stays vacant for a later failover to repair).
    pub fn expand(
        &mut self,
        provisioning: &mut ProvisioningService,
    ) -> Result<ReplicaId, ReplicaError> {
        // Membership change: bump the trusted epoch before the newcomer
        // joins, exactly as failover does.
        let epoch = self.counters.increment(&self.epoch_counter);
        let snapshot = self.snapshot_from_survivor()?;
        let slot = self.slots.len();
        self.slots.push(None);
        let id = self.adopt_replacement(slot, provisioning, &snapshot)?;
        self.write_quorum = self.slots.len() / 2 + 1;
        for replica in self.slots.iter_mut().flatten().filter(|r| !r.stalled) {
            replica.epoch = epoch;
        }
        self.record(format!(
            "shard {} scale-up epoch {epoch}: replica {id} admitted, n={} w={}",
            self.shard,
            self.slots.len(),
            self.write_quorum
        ));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "scale_up",
                vec![
                    ("shard", self.shard.to_string()),
                    ("epoch", epoch.to_string()),
                    ("replicas", self.slots.len().to_string()),
                ],
            );
        }
        self.update_replication_lag();
        Ok(id)
    }

    /// Scale-down with drain: removes the highest slot. Because every
    /// acknowledged write was applied to *every* responsive replica, each
    /// remaining responsive replica already holds the full acknowledged
    /// history — the "drain" needs no data movement, only the refusal
    /// check below. Bumps the trusted epoch (membership change), so the
    /// drained replica is fenced out even if the host resurrects it, and
    /// re-derives the write quorum as the smallest majority of the new
    /// size. Returns the drained replica's id (`None` if the slot was
    /// already vacant).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::DrainRefused`] when removal would leave fewer
    /// responsive replicas than the post-drain majority quorum (the group
    /// keeps serving instead of scaling into unavailability).
    pub fn decommission_last(&mut self) -> Result<Option<ReplicaId>, ReplicaError> {
        let new_n = self.slots.len().saturating_sub(1);
        let new_w = new_n / 2 + 1;
        let remaining = self.slots[..new_n]
            .iter()
            .flatten()
            .filter(|r| !r.stalled)
            .count();
        if new_n == 0 || remaining < new_w {
            return Err(ReplicaError::DrainRefused {
                shard: self.shard,
                live: remaining,
                needed: new_w,
            });
        }
        let removed = self
            .slots
            .pop()
            .expect("decommission checked the group is non-empty");
        // Membership change: the epoch fences the drained replica out.
        let epoch = self.counters.increment(&self.epoch_counter);
        self.write_quorum = new_w;
        let id = removed.map(|mut replica| {
            replica.enclave.abort("decommissioned (drained)");
            self.retired_cycles += replica.enclave.memory_view().cycles();
            self.retired_epc_faults += replica.enclave.memory_view().stats().epc_faults;
            replica.id
        });
        for replica in self.slots.iter_mut().flatten().filter(|r| !r.stalled) {
            replica.epoch = epoch;
        }
        match id {
            Some(id) => self.record(format!(
                "shard {} scale-down epoch {epoch}: replica {id} drained and \
                 decommissioned, n={} w={}",
                self.shard,
                self.slots.len(),
                self.write_quorum
            )),
            None => self.record(format!(
                "shard {} scale-down epoch {epoch}: vacant slot retired, n={} w={}",
                self.shard,
                self.slots.len(),
                self.write_quorum
            )),
        }
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "scale_down",
                vec![
                    ("shard", self.shard.to_string()),
                    ("epoch", epoch.to_string()),
                    ("replicas", self.slots.len().to_string()),
                ],
            );
        }
        self.update_replication_lag();
        Ok(id)
    }

    /// Repairs every vacant slot: bumps the trusted epoch, streams a
    /// sealed snapshot from a surviving replica, and admits a re-attested
    /// replacement per vacancy. Returns the number of replicas replaced.
    ///
    /// # Errors
    ///
    /// * [`ReplicaError::NoSurvivors`] — every replica is gone; only
    ///   sealed state (outside this group) could recover the shard.
    /// * Admission/restore errors from [`ShardGroup::adopt_replacement`].
    pub fn failover(
        &mut self,
        provisioning: &mut ProvisioningService,
    ) -> Result<u32, ReplicaError> {
        let vacant: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if vacant.is_empty() {
            return Ok(0);
        }
        // Membership change: bump the trusted epoch before anyone rejoins.
        let epoch = self.counters.increment(&self.epoch_counter);
        let snapshot = self.snapshot_from_survivor()?;
        let kind = match &snapshot {
            SnapshotStream::Whole(_) => "whole snapshot",
            SnapshotStream::Incremental(_) => "incremental manifest",
        };
        self.record(format!(
            "shard {} failover epoch {epoch}: {kind} v{} ({} trusted bytes) streamed to {} replacement(s)",
            self.shard,
            snapshot.version(),
            snapshot.trusted_bytes(),
            vacant.len()
        ));
        let mut replaced = 0;
        for slot in vacant {
            self.adopt_replacement(slot, provisioning, &snapshot)?;
            replaced += 1;
        }
        // Stalled replicas are deliberately left on the old epoch: they
        // take no writes anyway, and the stale-epoch check fences them if
        // anything ever tries to resurrect one without re-admission.
        for replica in self.slots.iter_mut().flatten().filter(|r| !r.stalled) {
            replica.epoch = epoch;
        }
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "failover",
                vec![
                    ("shard", self.shard.to_string()),
                    ("epoch", epoch.to_string()),
                    ("replaced", replaced.to_string()),
                ],
            );
        }
        self.update_replication_lag();
        Ok(replaced)
    }

    /// The failover install step, split out so the stream can come from
    /// the *untrusted host*: launches and admits (re-attests) a fresh
    /// enclave for `slot`, then restores the stream inside it with the
    /// trusted-counter freshness check. A stale-but-validly-sealed
    /// whole snapshot fails with [`KvError::RollbackDetected`], a stale
    /// incremental manifest with
    /// [`StorageError::Rollback`](securecloud_kvstore::StorageError::Rollback)
    /// — both wrapped in [`ReplicaError::Store`] — and the slot stays
    /// vacant.
    ///
    /// # Errors
    ///
    /// Admission ([`ReplicaError::AdmissionDenied`] /
    /// [`ReplicaError::Channel`]), enclave ([`ReplicaError::Sgx`]), or
    /// restore ([`ReplicaError::Store`]) failures.
    ///
    /// [`KvError::RollbackDetected`]: securecloud_kvstore::KvError::RollbackDetected
    pub fn adopt_replacement(
        &mut self,
        slot: usize,
        provisioning: &mut ProvisioningService,
        stream: &SnapshotStream,
    ) -> Result<ReplicaId, ReplicaError> {
        let mut replica = self.launch_admitted(slot as u32, provisioning)?;
        let counters = self.counters.clone();
        let key = replica.group_key;
        let id = replica.id;
        let kv = match stream {
            SnapshotStream::Whole(snapshot) => {
                let counter_name = self.version_counter.clone();
                replica.enclave.ecall(|mem| {
                    SecureKv::restore(mem, &key, &snapshot.sealed, &counters, &counter_name)
                })
            }
            SnapshotStream::Incremental(snapshot) => {
                let config = self.storage.clone().ok_or_else(|| {
                    ReplicaError::InvalidConfig(format!(
                        "shard {}: incremental stream offered to a group without \
                         a storage tier",
                        self.shard
                    ))
                })?;
                let base = self.storage_counter_base.clone();
                let snapshot = snapshot.clone();
                replica.enclave.ecall(move |mem| {
                    SecureKv::restore_incremental(
                        mem,
                        config,
                        StoreKeys::new(key),
                        counters,
                        base,
                        snapshot,
                    )
                })
            }
        }
        .map_err(|source| ReplicaError::Sgx {
            replica: id,
            source,
        })?
        .map_err(|source| ReplicaError::Store {
            replica: id,
            source,
        })?;
        replica.kv = kv;
        self.record(format!(
            "replica {id} re-attested and admitted at epoch {}",
            replica.epoch
        ));
        let (shard, slots) = (self.shard, self.slots.len());
        let entry = self.slots.get_mut(slot).ok_or_else(|| {
            ReplicaError::InvalidConfig(format!(
                "shard {shard}: replacement slot {slot} out of range ({slots} slots)"
            ))
        })?;
        *entry = Some(replica);
        let bytes = stream.trusted_bytes();
        self.streamed_snapshot_bytes += bytes;
        self.metrics.snapshot_stream_bytes.add(bytes);
        Ok(id)
    }

    /// Seals a failover stream of the shard from a surviving replica (the
    /// same artefact failover hands to replacements; also useful as an
    /// off-group backup). Records the captured version in the trusted
    /// counter, fencing any older copy the host may keep around.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NoSurvivors`] when no replica is live, or
    /// [`ReplicaError::Sgx`] when the survivor's enclave call fails.
    pub fn seal_snapshot(&mut self) -> Result<SnapshotStream, ReplicaError> {
        self.snapshot_from_survivor()
    }

    /// Cumulative bytes this group has pushed through the *trusted*
    /// failover channel. Tiered groups stream incremental manifests, so
    /// this grows by metadata + WAL tail per replacement instead of the
    /// whole store.
    #[must_use]
    pub fn streamed_snapshot_bytes(&self) -> u64 {
        self.streamed_snapshot_bytes
    }

    /// Seals a failover stream from the *freshest* surviving replica
    /// (highest store version, responsive preferred on ties). Every
    /// responsive replica holds all acknowledged writes, so the
    /// max-version survivor always does — a stalled replica can only be
    /// behind, never ahead, and is therefore never chosen over a fresh
    /// one. Tiered replicas export an incremental manifest; in-memory
    /// replicas seal the whole store.
    fn snapshot_from_survivor(&mut self) -> Result<SnapshotStream, ReplicaError> {
        let counters = self.counters.clone();
        let counter_name = self.version_counter.clone();
        let survivor = self
            .slots
            .iter_mut()
            .flatten()
            .max_by_key(|r| (r.kv.version(), !r.stalled))
            .ok_or(ReplicaError::NoSurvivors { shard: self.shard })?;
        let key = survivor.group_key;
        let id = survivor.id;
        let kv = &mut survivor.kv;
        if kv.is_tiered() {
            survivor
                .enclave
                .ecall(|_mem| SnapshotStream::Incremental(kv.incremental_snapshot()))
                .map_err(|source| ReplicaError::Sgx {
                    replica: id,
                    source,
                })
        } else {
            survivor
                .enclave
                .ecall(|_mem| SnapshotStream::Whole(kv.snapshot(&key, &counters, &counter_name)))
                .map_err(|source| ReplicaError::Sgx {
                    replica: id,
                    source,
                })
        }
    }

    fn launch_admitted(
        &mut self,
        slot: u32,
        provisioning: &mut ProvisioningService,
    ) -> Result<Replica, ReplicaError> {
        let id = ReplicaId {
            shard: self.shard,
            slot,
        };
        let name = format!("{id}-i{}", self.incarnations);
        self.incarnations += 1;
        let mut enclave = self
            .platform
            .launch(EnclaveConfig {
                name,
                code: self.code.clone(),
                geometry: self.geometry,
                costs: self.costs.clone(),
                debug: false,
            })
            .map_err(|source| ReplicaError::Sgx {
                replica: id,
                source,
            })?;
        if let Some(t) = &self.telemetry {
            enclave.set_telemetry(t);
        }
        let admission = provisioning.admit(self.shard, &enclave, self.epoch())?;
        // Tiered groups derive each replica's storage keys from the group
        // key, and share one counter namespace: replicas apply identical
        // acknowledged histories, and the shared segment-id counter keeps
        // every sealed segment's nonce domain unique across the group.
        let kv = match &self.storage {
            Some(config) => SecureKv::tiered(
                config.clone(),
                StoreKeys::new(admission.group_key),
                self.counters.clone(),
                self.storage_counter_base.clone(),
            ),
            None => SecureKv::new(),
        };
        Ok(Replica {
            id,
            enclave,
            kv,
            group_key: admission.group_key,
            epoch: admission.epoch,
            stalled: false,
        })
    }

    /// Flips one seeded-random bit in one sealed block on `slot`'s host
    /// disk (the [`FaultKind::StorageCorruptBlock`] payload). Returns the
    /// `(segment, block)` hit, or `None` when the slot is vacant, the
    /// group has no storage tier, or the replica holds no sealed blocks
    /// yet.
    ///
    /// [`FaultKind::StorageCorruptBlock`]: securecloud_faults::FaultKind::StorageCorruptBlock
    pub fn corrupt_storage_block(&mut self, slot: usize) -> Option<(u64, u32)> {
        let pick = self
            .injector
            .as_ref()
            .map_or(0x9E37_79B9_7F4A_7C15, |i| i.draw_below(u64::MAX));
        let replica = self.slots.get_mut(slot)?.as_mut()?;
        let id = replica.id;
        let hit = replica.kv.storage_mut()?.corrupt_block(pick)?;
        self.record(format!(
            "replica {id} host storage corrupted: segment {} block {}",
            hit.0, hit.1
        ));
        if let Some(t) = &self.telemetry {
            t.event(
                "replica",
                "storage_corrupted",
                vec![("replica", id.to_string()), ("segment", hit.0.to_string())],
            );
        }
        Some(hit)
    }

    /// Integrity-scrubs `slot`'s sealed tier: every segment is re-verified
    /// against its Merkle root and failing segments are quarantined
    /// (dropped from the manifest so no read ever trusts them again).
    /// Returns the quarantined segment ids — empty for a vacant slot, an
    /// untiered group, or a clean disk.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Sgx`] when the enclave call fails, or
    /// [`ReplicaError::Store`] when re-committing the manifest fails.
    pub fn scrub_storage(&mut self, slot: usize) -> Result<Vec<u64>, ReplicaError> {
        let Some(replica) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(Vec::new());
        };
        let id = replica.id;
        let kv = &mut replica.kv;
        let quarantined = replica
            .enclave
            .ecall(|mem| match kv.storage_mut() {
                Some(engine) => engine.scrub(mem).map_err(KvError::Storage),
                None => Ok(Vec::new()),
            })
            .map_err(|source| ReplicaError::Sgx {
                replica: id,
                source,
            })?
            .map_err(|source| ReplicaError::Store {
                replica: id,
                source,
            })?;
        if !quarantined.is_empty() {
            self.record(format!(
                "replica {id} scrub quarantined segment(s) {quarantined:?}"
            ));
            if let Some(t) = &self.telemetry {
                t.event(
                    "replica",
                    "storage_quarantined",
                    vec![
                        ("replica", id.to_string()),
                        ("segments", quarantined.len().to_string()),
                    ],
                );
            }
        }
        Ok(quarantined)
    }

    fn update_replication_lag(&self) {
        let versions = self.replica_versions();
        let lag = match (versions.iter().max(), versions.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        };
        self.metrics.replication_lag.set(lag as i64);
    }

    fn record(&self, line: String) {
        if let Some(injector) = &self.injector {
            injector.record(line);
        }
    }

    #[cfg(test)]
    fn force_epoch(&mut self, slot: usize, epoch: u64) {
        if let Some(replica) = self.slots.get_mut(slot).and_then(Option::as_mut) {
            replica.epoch = epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ReplicaConfig, ReplicationFactor, WriteQuorum};
    use crate::provision::ProvisioningService;
    use securecloud_kvstore::KvError;
    use securecloud_sgx::enclave::Measurement;

    fn small_config() -> ReplicaConfig {
        ReplicaConfig {
            shards: 1,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            ..ReplicaConfig::default()
        }
    }

    fn group() -> (ShardGroup, ProvisioningService, CounterService) {
        let platform = Platform::new();
        let config = small_config();
        let mut provisioning =
            ProvisioningService::new(&platform, Measurement::of_code(&config.code));
        let counters = CounterService::new();
        let group = ShardGroup::new(
            ShardId(0),
            &config,
            &platform,
            &counters,
            &mut provisioning,
            None,
            None,
        )
        .unwrap();
        (group, provisioning, counters)
    }

    #[test]
    fn quorum_write_read_roundtrip() {
        let (mut g, _prov, _counters) = group();
        assert_eq!(g.live(), 3);
        assert_eq!(g.epoch(), 1);
        g.put(b"k", b"v1").unwrap();
        g.put(b"k", b"v2").unwrap();
        assert_eq!(g.get(b"k").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(g.get(b"missing").unwrap(), None);
        // All replicas applied both writes: identical versions, zero lag.
        let versions = g.replica_versions();
        assert!(versions.windows(2).all(|w| w[0] == w[1]), "{versions:?}");
    }

    #[test]
    fn writes_survive_minority_crash_and_fail_past_quorum() {
        let (mut g, _prov, _counters) = group();
        g.put(b"acked", b"before crash").unwrap();
        assert!(g.kill(1, "test kill").is_some());
        assert!(g.kill(1, "double kill is a no-op").is_none());
        // 2 of 3 live: writes and reads still meet quorum.
        g.put(b"acked2", b"after crash").unwrap();
        assert_eq!(g.get(b"acked").unwrap(), Some(b"before crash".to_vec()));
        // Losing the majority loses the write quorum.
        g.kill(0, "second kill");
        let err = g.put(b"x", b"y").unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::QuorumLost {
                    needed: 2,
                    live: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn failover_readmits_and_catches_up() {
        let (mut g, mut prov, _counters) = group();
        for i in 0..10u32 {
            g.put(&i.to_be_bytes(), b"payload").unwrap();
        }
        g.kill(2, "chaos");
        g.put(b"while degraded", b"still acked").unwrap();
        assert!(g.is_degraded());
        let replaced = g.failover(&mut prov).unwrap();
        assert_eq!(replaced, 1);
        assert_eq!(g.live(), 3);
        assert_eq!(g.epoch(), 2, "failover bumps the trusted epoch");
        assert_eq!(prov.admitted(), 4, "replacement was re-attested");
        // The replacement holds every acknowledged write.
        assert_eq!(
            g.get(b"while degraded").unwrap(),
            Some(b"still acked".to_vec())
        );
        g.put(b"after failover", b"ok").unwrap();
        assert!(g.failover(&mut prov).unwrap() == 0, "nothing vacant");
    }

    #[test]
    fn stale_snapshot_during_failover_is_detected() {
        let (mut g, mut prov, _counters) = group();
        g.put(b"balance", b"100").unwrap();
        // The untrusted host keeps an old snapshot around...
        let stale = g.snapshot_from_survivor().unwrap();
        g.put(b"balance", b"10").unwrap();
        // ...the group moves on (a fresh snapshot bumps the counter)...
        let _fresh = g.snapshot_from_survivor().unwrap();
        g.kill(0, "chaos");
        g.counters.increment("replica/s0/epoch");
        // ...and serves the stale one during failover: detected.
        let err = g.adopt_replacement(0, &mut prov, &stale).unwrap_err();
        match err {
            ReplicaError::Store {
                replica,
                source: KvError::RollbackDetected { .. },
            } => assert_eq!(replica.slot, 0),
            other => panic!("expected rollback detection, got {other}"),
        }
        assert!(g.is_degraded(), "rejected replacement must not join");
    }

    #[test]
    fn stale_epoch_replica_refuses_writes() {
        let (mut g, _prov, _counters) = group();
        g.put(b"a", b"1").unwrap();
        g.force_epoch(1, 0);
        let err = g.put(b"b", b"2").unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::StaleEpoch {
                    have: 0,
                    want: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn stalled_replica_is_fenced_out_of_quorums() {
        let (mut g, _prov, _counters) = group();
        g.put(b"before", b"stall").unwrap();
        assert_eq!(g.stall(1).map(|id| id.slot), Some(1));
        assert!(g.stall(1).is_none(), "double stall is a no-op");
        assert_eq!(g.live(), 3, "stalled replica stays resident");
        assert_eq!(g.responsive(), 2, "but no longer counts toward quorum");
        // Writes still ack on the responsive majority and skip the
        // stalled replica, whose version falls behind.
        g.put(b"during", b"stall").unwrap();
        g.put(b"during2", b"stall").unwrap();
        let versions = g.replica_versions();
        let (max, min) = (
            versions.iter().max().unwrap(),
            versions.iter().min().unwrap(),
        );
        assert!(max > min, "stalled replica lags: {versions:?}");
        assert_eq!(g.get(b"during").unwrap(), Some(b"stall".to_vec()));
        // One more stall drops the group below the write quorum.
        g.stall(0);
        let err = g.put(b"x", b"y").unwrap_err();
        assert!(
            matches!(err, ReplicaError::QuorumLost { live: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn failover_snapshots_from_the_freshest_survivor_not_a_stalled_one() {
        let (mut g, mut prov, _counters) = group();
        g.put(b"k", b"old").unwrap();
        // Slot 0 (the would-be "first survivor") stalls and misses writes.
        g.stall(0);
        g.put(b"k", b"new").unwrap();
        // Crash a fresh replica; the replacement must catch up from the
        // other *fresh* one, not from the stale stalled slot 0.
        g.kill(2, "chaos");
        g.failover(&mut prov).unwrap();
        assert_eq!(g.get(b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn partition_refuses_quorum_ops_until_healed() {
        let (mut g, _prov, _counters) = group();
        g.put(b"acked", b"pre-partition").unwrap();
        let epoch_before = g.epoch();
        assert!(g.partition());
        assert!(!g.partition(), "double partition is a no-op");
        assert!(g.is_partitioned());
        let put_err = g.put(b"lost?", b"never acked").unwrap_err();
        assert!(
            matches!(put_err, ReplicaError::Partitioned { .. }),
            "{put_err}"
        );
        let get_err = g.get(b"acked").unwrap_err();
        assert!(
            matches!(get_err, ReplicaError::Partitioned { .. }),
            "{get_err}"
        );
        assert!(g.heal_partition());
        assert!(!g.heal_partition(), "double heal is a no-op");
        assert_eq!(g.epoch(), epoch_before, "partitions never move the epoch");
        assert_eq!(g.get(b"acked").unwrap(), Some(b"pre-partition".to_vec()));
        assert_eq!(
            g.get(b"lost?").unwrap(),
            None,
            "refused write left no trace"
        );
    }

    #[test]
    fn expand_and_decommission_keep_majority_quorums_and_acked_writes() {
        let (mut g, mut prov, _counters) = group();
        g.put(b"acked", b"v1").unwrap();
        // Scale up 3 -> 4: quorum becomes the majority of 4.
        let id = g.expand(&mut prov).unwrap();
        assert_eq!(id.slot, 3);
        assert_eq!(g.replication_factor(), 4);
        assert_eq!(g.write_quorum(), 3);
        assert_eq!(g.epoch(), 2, "scale-up is a membership change");
        assert_eq!(g.get(b"acked").unwrap(), Some(b"v1".to_vec()));
        g.put(b"acked", b"v2").unwrap();
        // Scale down 4 -> 3: drained without data movement, still readable.
        let drained = g.decommission_last().unwrap();
        assert_eq!(drained.map(|id| id.slot), Some(3));
        assert_eq!(g.replication_factor(), 3);
        assert_eq!(g.write_quorum(), 2);
        assert_eq!(g.epoch(), 3);
        assert_eq!(g.get(b"acked").unwrap(), Some(b"v2".to_vec()));
        // A scale-down that would break the post-drain quorum is refused.
        g.kill(0, "chaos");
        let err = g.decommission_last().unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::DrainRefused {
                    live: 1,
                    needed: 2,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(g.replication_factor(), 3, "refused drain changes nothing");
        assert_eq!(g.get(b"acked").unwrap(), Some(b"v2".to_vec()));
    }

    fn tiered_config() -> ReplicaConfig {
        ReplicaConfig {
            storage: Some(StorageConfig {
                block_bytes: 256,
                flush_bytes: 1024,
                cache_blocks: 2,
                compact_at_segments: 4,
            }),
            ..small_config()
        }
    }

    fn tiered_group() -> (ShardGroup, ProvisioningService, CounterService) {
        let platform = Platform::new();
        let config = tiered_config();
        let mut provisioning =
            ProvisioningService::new(&platform, Measurement::of_code(&config.code));
        let counters = CounterService::new();
        let group = ShardGroup::new(
            ShardId(0),
            &config,
            &platform,
            &counters,
            &mut provisioning,
            None,
            None,
        )
        .unwrap();
        (group, provisioning, counters)
    }

    #[test]
    fn tiered_failover_streams_incremental_manifest() {
        let (mut g, mut prov, _counters) = tiered_group();
        for i in 0..60u32 {
            g.put(format!("key{i:04}").as_bytes(), &[7u8; 50]).unwrap();
        }
        let data_bytes: u64 = 60 * (7 + 50);
        g.kill(1, "chaos");
        g.put(b"while degraded", b"still acked").unwrap();
        assert_eq!(g.failover(&mut prov).unwrap(), 1);
        // The replacement caught up through manifest + WAL tail only.
        let streamed = g.streamed_snapshot_bytes();
        assert!(streamed > 0, "trusted stream is accounted");
        assert!(
            streamed < data_bytes,
            "incremental stream ({streamed} B) must be smaller than the \
             store's data ({data_bytes} B)"
        );
        assert_eq!(
            g.get(b"while degraded").unwrap(),
            Some(b"still acked".to_vec())
        );
        assert_eq!(g.get(b"key0000").unwrap(), Some(vec![7u8; 50]));
        // The group keeps taking and serving writes after the failover.
        g.put(b"after", b"ok").unwrap();
        assert_eq!(g.get(b"after").unwrap(), Some(b"ok".to_vec()));
    }

    #[test]
    fn tiered_stale_incremental_stream_is_rejected() {
        let (mut g, mut prov, _counters) = tiered_group();
        for i in 0..40u32 {
            g.put(format!("key{i:04}").as_bytes(), &[1u8; 50]).unwrap();
        }
        let stale = g.seal_snapshot().unwrap();
        assert!(matches!(stale, SnapshotStream::Incremental(_)));
        g.put(b"newer", b"write").unwrap();
        let _fresh = g.seal_snapshot().unwrap();
        g.kill(0, "chaos");
        g.counters.increment("replica/s0/epoch");
        let err = g.adopt_replacement(0, &mut prov, &stale).unwrap_err();
        match err {
            ReplicaError::Store {
                source: KvError::Storage(securecloud_kvstore::StorageError::Rollback { .. }),
                ..
            } => {}
            other => panic!("expected storage rollback detection, got {other}"),
        }
        assert!(g.is_degraded(), "rejected replacement must not join");
    }

    #[test]
    fn tiered_corrupt_block_is_quarantined_and_failover_recovers() {
        let (mut g, mut prov, _counters) = tiered_group();
        for i in 0..60u32 {
            g.put(format!("key{i:04}").as_bytes(), &[3u8; 50]).unwrap();
        }
        // Flip a bit in slot 2's sealed host storage.
        let hit = g.corrupt_storage_block(2).expect("blocks exist to corrupt");
        // The scrub detects it via the integrity tree and quarantines.
        let quarantined = g.scrub_storage(2).unwrap();
        assert_eq!(quarantined, vec![hit.0], "the hit segment is quarantined");
        // A clean replica scrubs clean.
        assert!(g.scrub_storage(0).unwrap().is_empty());
        // Kill the damaged replica and fail over: every acknowledged write
        // is still served (survivors hold the full history).
        g.kill(2, "storage corruption");
        g.failover(&mut prov).unwrap();
        for i in 0..60u32 {
            assert_eq!(
                g.get(format!("key{i:04}").as_bytes()).unwrap(),
                Some(vec![3u8; 50]),
                "key{i:04}"
            );
        }
    }

    #[test]
    fn cycles_are_monotone_across_kill_and_failover() {
        let (mut g, mut prov, _counters) = group();
        g.put(b"k", b"v").unwrap();
        let before_kill = g.cycles();
        g.kill(0, "chaos");
        assert!(g.cycles() >= before_kill, "retired cycles must be kept");
        g.failover(&mut prov).unwrap();
        assert!(g.cycles() > before_kill, "failover work is charged");
    }
}
