//! Consistent-hash key routing.
//!
//! Keys are routed to shard groups through a consistent-hash ring with a
//! configurable number of virtual nodes per shard. The hash is a fixed
//! FNV-1a (no per-process seed), so routing is deterministic across runs —
//! the property the equal-seed trace tests and the repro benchmarks rely
//! on. Consistent hashing keeps resharding cheap: growing from `n` to
//! `n + 1` shards remaps roughly `1/(n+1)` of the keyspace instead of
//! reshuffling everything.

use crate::ShardId;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// SplitMix64-style finalizer. FNV-1a alone has weak avalanche on the
/// short inputs used here (sequential keys and ring-point indices land in
/// clusters); mixing the output spreads positions uniformly around the
/// ring.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping keys to shard groups.
///
/// ```
/// use securecloud_replica::shard::ShardMap;
///
/// let map = ShardMap::new(4, 16);
/// let shard = map.shard_for(b"meter/0042/total_kwh");
/// assert!(shard.0 < 4);
/// // Routing is a pure function of the key.
/// assert_eq!(shard, map.shard_for(b"meter/0042/total_kwh"));
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Ring points sorted by position: `(position, shard)`.
    points: Vec<(u64, ShardId)>,
    shards: u32,
    virtual_nodes: u32,
}

impl ShardMap {
    /// Builds a ring with `virtual_nodes` points per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `virtual_nodes` is zero.
    #[must_use]
    pub fn new(shards: u32, virtual_nodes: u32) -> Self {
        assert!(shards > 0, "ShardMap needs at least one shard");
        assert!(
            virtual_nodes > 0,
            "ShardMap needs at least one virtual node"
        );
        let mut points = Vec::with_capacity((shards * virtual_nodes) as usize);
        for shard in 0..shards {
            for vnode in 0..virtual_nodes {
                let mut state = fnv1a(FNV_OFFSET, b"securecloud-shard-ring-v1");
                state = fnv1a(state, &shard.to_le_bytes());
                state = fnv1a(state, &vnode.to_le_bytes());
                points.push((mix(state), ShardId(shard)));
            }
        }
        points.sort_unstable();
        ShardMap {
            points,
            shards,
            virtual_nodes,
        }
    }

    /// Number of shards in the ring.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Virtual nodes per shard.
    #[must_use]
    pub fn virtual_nodes(&self) -> u32 {
        self.virtual_nodes
    }

    /// The shard responsible for `key`: the first ring point at or after
    /// the key's hash, wrapping around at the top of the ring.
    #[must_use]
    pub fn shard_for(&self, key: &[u8]) -> ShardId {
        let hash = mix(fnv1a(FNV_OFFSET, key));
        let idx = self.points.partition_point(|&(pos, _)| pos < hash);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// Counts how many of `keys` land on each shard (balance diagnostics).
    #[must_use]
    pub fn distribution<'a>(&self, keys: impl IntoIterator<Item = &'a [u8]>) -> Vec<u64> {
        let mut counts = vec![0u64; self.shards as usize];
        for key in keys {
            counts[self.shard_for(key).0 as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("meter/{i:06}").into_bytes())
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let a = ShardMap::new(4, 16);
        let b = ShardMap::new(4, 16);
        for key in keys(500) {
            let shard = a.shard_for(&key);
            assert_eq!(shard, b.shard_for(&key));
            assert!(shard.0 < 4);
        }
    }

    #[test]
    fn every_shard_gets_a_fair_slice() {
        let map = ShardMap::new(8, 32);
        let keys = keys(8_000);
        let counts = map.distribution(keys.iter().map(Vec::as_slice));
        assert_eq!(counts.iter().sum::<u64>(), 8_000);
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance would be 1000/shard; virtual nodes keep the
            // skew well under 3x.
            assert!(count > 300, "shard {shard} starved: {counts:?}");
            assert!(count < 3_000, "shard {shard} overloaded: {counts:?}");
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let before = ShardMap::new(4, 32);
        let after = ShardMap::new(5, 32);
        let keys = keys(4_000);
        let moved = keys
            .iter()
            .filter(|k| before.shard_for(k) != after.shard_for(k))
            .count();
        // Ideal is 1/5 = 800; allow generous slack but far from a reshuffle
        // (a modulo-hash scheme would move ~80% here).
        assert!(moved > 0, "adding a shard must take over some keys");
        assert!(
            moved < 1_800,
            "consistent hashing should move ~1/5 of keys, moved {moved}/4000"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0, 16);
    }
}
