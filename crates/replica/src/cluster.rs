//! The cluster handle: shard routing + quorum groups + failover policy.
//!
//! [`ReplicatedKv`] is what deployments interact with: it owns one
//! [`ShardGroup`] per shard, routes keys through the consistent-hash
//! [`ShardMap`], gates membership behind one [`ProvisioningService`], and
//! translates fault-injector events into recovery actions:
//! [`FaultKind::ReplicaKill`] becomes kill + re-attested failover,
//! [`FaultKind::ReplicaStall`] fences a replica out of quorums (grey
//! failure), and [`FaultKind::NetworkPartition`] cuts a shard group off
//! from its clients until the heal deadline passes on the virtual clock
//! ([`ReplicatedKv::advance_to`]). Events whose target no longer exists
//! report as [`FaultApplication::Unroutable`] so the platform can count
//! them instead of panicking or dropping them silently.

use crate::group::ShardGroup;
use crate::provision::ProvisioningService;
use crate::shard::ShardMap;
use crate::{ReplicaError, ReplicaId, ShardId};
use securecloud_faults::{FaultInjector, FaultKind};
use securecloud_kvstore::{CounterService, StorageConfig};
use securecloud_sgx::costs::{CostModel, MemoryGeometry};
use securecloud_sgx::enclave::{Measurement, Platform};
use securecloud_telemetry::{Counter, OwnedSpan, Telemetry, TraceContext};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The code every shard replica runs (its measurement is what the
/// provisioning service allowlists by default).
pub const DEFAULT_SHARD_CODE: &[u8] = b"securecloud replica kv shard v1";

/// How many replicas each shard group runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReplicationFactor(pub u32);

/// How many replicas must be live for a write to be acknowledged.
///
/// Writes go to *every* live replica; the quorum is the liveness floor
/// under which writes are refused. Keeping `w > n/2` guarantees every
/// acknowledged write survives any minority of replica crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WriteQuorum(pub u32);

impl WriteQuorum {
    /// The smallest majority quorum for `replication` replicas.
    #[must_use]
    pub fn majority(replication: ReplicationFactor) -> Self {
        WriteQuorum(replication.0 / 2 + 1)
    }
}

/// Deployment shape of a replicated store.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Number of shard groups (consistent-hash ring partitions).
    pub shards: u32,
    /// Replicas per shard group.
    pub replication: ReplicationFactor,
    /// Liveness floor for acknowledging writes.
    pub write_quorum: WriteQuorum,
    /// Virtual nodes per shard on the hash ring.
    pub virtual_nodes: u32,
    /// The enclave code every replica runs (measured for attestation).
    pub code: Vec<u8>,
    /// Memory geometry of each replica enclave.
    pub geometry: MemoryGeometry,
    /// Cycle-cost model of each replica enclave.
    pub costs: CostModel,
    /// Sealed storage tier per replica (`Some` makes every replica a
    /// tiered store: in-EPC memtable over sealed host segments, with
    /// incremental-manifest failover instead of whole-store streaming).
    pub storage: Option<StorageConfig>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            shards: 4,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            virtual_nodes: 16,
            code: DEFAULT_SHARD_CODE.to_vec(),
            geometry: MemoryGeometry::sgx_v1(),
            costs: CostModel::sgx_v1(),
            storage: None,
        }
    }
}

impl ReplicaConfig {
    /// Checks the deployment shape.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::InvalidConfig`] when a dimension is zero, the write
    /// quorum exceeds the replication factor, or the quorum is not a
    /// majority (`2w <= n` would let an acknowledged write die with a
    /// minority of crashes).
    pub fn validate(&self) -> Result<(), ReplicaError> {
        if self.shards == 0 {
            return Err(ReplicaError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.virtual_nodes == 0 {
            return Err(ReplicaError::InvalidConfig(
                "virtual_nodes must be >= 1".into(),
            ));
        }
        let n = self.replication.0;
        let w = self.write_quorum.0;
        if n == 0 {
            return Err(ReplicaError::InvalidConfig(
                "replication factor must be >= 1".into(),
            ));
        }
        if w == 0 || w > n {
            return Err(ReplicaError::InvalidConfig(format!(
                "write quorum {w} must be in 1..={n}"
            )));
        }
        if 2 * w <= n {
            return Err(ReplicaError::InvalidConfig(format!(
                "write quorum {w} of {n} is not a majority; acknowledged \
                 writes could be lost to a minority of crashes"
            )));
        }
        if self.code.is_empty() {
            return Err(ReplicaError::InvalidConfig(
                "shard code must not be empty".into(),
            ));
        }
        Ok(())
    }
}

/// How a deployment handled one fault-injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultApplication {
    /// The event addressed this deployment and was applied.
    Applied,
    /// The event addressed the replica subsystem but its target no longer
    /// exists here (shard out of range, or a vacant/already-stalled slot)
    /// — a counted no-op, never a panic or a silent drop.
    Unroutable,
    /// The event addresses another subsystem entirely.
    Ignored,
}

/// Cluster-wide operation counters (standalone when no telemetry).
#[derive(Debug)]
struct ClusterMetrics {
    puts: Counter,
    gets: Counter,
    quorum_failures: Counter,
    replicas_killed: Counter,
    failovers: Counter,
    stalls: Counter,
    partitions: Counter,
    scale_ups: Counter,
    scale_downs: Counter,
    storage_corruptions: Counter,
}

impl ClusterMetrics {
    fn new(telemetry: Option<&Arc<Telemetry>>) -> Self {
        match telemetry {
            Some(t) => ClusterMetrics {
                puts: t.counter("securecloud_replica_puts_total"),
                gets: t.counter("securecloud_replica_gets_total"),
                quorum_failures: t.counter("securecloud_replica_quorum_failures_total"),
                replicas_killed: t.counter("securecloud_replica_killed_total"),
                failovers: t.counter("securecloud_replica_failovers_total"),
                stalls: t.counter("securecloud_replica_stalled_total"),
                partitions: t.counter("securecloud_replica_partitions_total"),
                scale_ups: t.counter("securecloud_replica_scale_ups_total"),
                scale_downs: t.counter("securecloud_replica_scale_downs_total"),
                storage_corruptions: t.counter("securecloud_replica_storage_corruptions_total"),
            },
            None => ClusterMetrics {
                puts: Counter::new(),
                gets: Counter::new(),
                quorum_failures: Counter::new(),
                replicas_killed: Counter::new(),
                failovers: Counter::new(),
                stalls: Counter::new(),
                partitions: Counter::new(),
                scale_ups: Counter::new(),
                scale_downs: Counter::new(),
                storage_corruptions: Counter::new(),
            },
        }
    }
}

/// A point-in-time view of a replicated deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct ReplicaStats {
    /// Shard groups in the deployment.
    pub shards: u32,
    /// Configured replicas per shard.
    pub replication_factor: u32,
    /// Configured write quorum.
    pub write_quorum: u32,
    /// Replicas currently live across all shards.
    pub live_replicas: usize,
    /// Replica slots across all shards (`shards * replication_factor`).
    pub total_replicas: usize,
    /// Acknowledged quorum writes.
    pub puts: u64,
    /// Served quorum reads.
    pub gets: u64,
    /// Operations refused for lack of quorum.
    pub quorum_failures: u64,
    /// Replicas killed (by fault injection or direct calls).
    pub replicas_killed: u64,
    /// Replicas re-admitted through failover.
    pub replicas_replaced: u64,
    /// Replicas currently stalled (resident but fenced out of quorums).
    pub replicas_stalled: usize,
    /// Scale-up operations performed (one admitted replica each).
    pub scale_ups: u64,
    /// Scale-down operations performed (one drained replica each).
    pub scale_downs: u64,
    /// Host-storage corruptions detected (integrity-tree hits from
    /// [`FaultKind::StorageCorruptBlock`] events).
    pub storage_corruptions: u64,
    /// Cumulative bytes streamed over the trusted failover channel across
    /// all shards (incremental manifests keep this far below data size
    /// for tiered deployments).
    pub snapshot_stream_bytes: u64,
    /// Current trusted epoch of each shard group, by shard index.
    pub epochs: Vec<u64>,
}

/// A sharded, quorum-replicated secure KV store.
///
/// ```
/// use securecloud_kvstore::CounterService;
/// use securecloud_replica::{ReplicaConfig, ReplicatedKv};
/// use securecloud_sgx::enclave::Platform;
///
/// let platform = Platform::new();
/// let counters = CounterService::new();
/// let mut kv = ReplicatedKv::deploy(ReplicaConfig::default(), &platform, &counters).unwrap();
/// kv.put(b"meter/0042", b"17.3 kWh").unwrap();
/// assert_eq!(kv.get(b"meter/0042").unwrap(), Some(b"17.3 kWh".to_vec()));
/// ```
#[derive(Debug)]
pub struct ReplicatedKv {
    map: ShardMap,
    groups: Vec<ShardGroup>,
    provisioning: ProvisioningService,
    write_quorum: u32,
    /// Virtual-time heal deadline per partitioned shard index; drained by
    /// [`ReplicatedKv::advance_to`]. `BTreeMap` keeps heal order (and the
    /// resulting trace) deterministic.
    partition_heals: BTreeMap<u32, u64>,
    telemetry: Option<Arc<Telemetry>>,
    metrics: ClusterMetrics,
}

impl ReplicatedKv {
    /// Deploys the store without telemetry or fault-injection wiring.
    ///
    /// # Errors
    ///
    /// Configuration ([`ReplicaError::InvalidConfig`]) or admission errors
    /// while bootstrapping the shard groups.
    pub fn deploy(
        config: ReplicaConfig,
        platform: &Platform,
        counters: &CounterService,
    ) -> Result<Self, ReplicaError> {
        Self::deploy_with(config, platform, counters, None, None)
    }

    /// Deploys the store, instrumenting with `telemetry` and recording
    /// membership events through `injector`'s deterministic trace.
    ///
    /// # Errors
    ///
    /// Configuration ([`ReplicaError::InvalidConfig`]) or admission errors
    /// while bootstrapping the shard groups.
    pub fn deploy_with(
        config: ReplicaConfig,
        platform: &Platform,
        counters: &CounterService,
        telemetry: Option<&Arc<Telemetry>>,
        injector: Option<&Arc<FaultInjector>>,
    ) -> Result<Self, ReplicaError> {
        config.validate()?;
        let mut provisioning =
            ProvisioningService::new(platform, Measurement::of_code(&config.code));
        if let Some(t) = telemetry {
            provisioning.set_telemetry(t);
        }
        let mut groups = Vec::with_capacity(config.shards as usize);
        for shard in 0..config.shards {
            groups.push(ShardGroup::new(
                ShardId(shard),
                &config,
                platform,
                counters,
                &mut provisioning,
                telemetry,
                injector,
            )?);
        }
        Ok(ReplicatedKv {
            map: ShardMap::new(config.shards, config.virtual_nodes),
            groups,
            provisioning,
            write_quorum: config.write_quorum.0,
            partition_heals: BTreeMap::new(),
            telemetry: telemetry.cloned(),
            metrics: ClusterMetrics::new(telemetry),
        })
    }

    /// The shard `key` routes to.
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> ShardId {
        self.map.shard_for(key)
    }

    /// The consistent-hash ring in use.
    #[must_use]
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard group serving `shard`, if it exists.
    #[must_use]
    pub fn group(&self, shard: ShardId) -> Option<&ShardGroup> {
        self.groups.get(shard.0 as usize)
    }

    /// Replicas currently live across every shard.
    #[must_use]
    pub fn live_replicas(&self) -> usize {
        self.groups.iter().map(ShardGroup::live).sum()
    }

    /// Total simulated cycles charged across every replica that ever ran
    /// (monotone across kills and failovers).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.groups.iter().map(ShardGroup::cycles).sum()
    }

    /// Quorum write to the shard owning `key`.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::QuorumLost`] when the owning shard has fewer live
    /// replicas than the write quorum (the write is applied nowhere), plus
    /// the per-replica error cases of [`ShardGroup::put`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ReplicaError> {
        let shard = self.map.shard_for(key);
        let _span = self.telemetry.as_ref().map(|t| {
            OwnedSpan::open_with(
                t.clone(),
                "replica",
                "quorum_put",
                vec![("shard", shard.to_string())],
            )
        });
        let result = self
            .groups
            .get_mut(shard.0 as usize)
            .ok_or(ReplicaError::UnknownShard(shard))?
            .put(key, value);
        match &result {
            Ok(()) => self.metrics.puts.inc(),
            Err(ReplicaError::QuorumLost { .. }) => self.metrics.quorum_failures.inc(),
            Err(_) => {}
        }
        result
    }

    /// [`ReplicatedKv::put`] under a causal parent context: the routing
    /// span and the shard group's quorum/replica spans all join the
    /// parent's trace. With an absent parent this is exactly
    /// [`ReplicatedKv::put`].
    ///
    /// # Errors
    ///
    /// Same as [`ReplicatedKv::put`].
    pub fn put_traced(
        &mut self,
        key: &[u8],
        value: &[u8],
        parent: TraceContext,
    ) -> Result<(), ReplicaError> {
        let shard = self.map.shard_for(key);
        let ctx = match &self.telemetry {
            Some(t) if !parent.is_none() => t.mint_child(parent),
            None | Some(_) => TraceContext::none(),
        };
        let _span = self.telemetry.as_ref().map(|t| {
            OwnedSpan::open_ctx(
                t.clone(),
                "replica",
                "quorum_put",
                vec![("shard", shard.to_string())],
                ctx,
            )
        });
        let result = self
            .groups
            .get_mut(shard.0 as usize)
            .ok_or(ReplicaError::UnknownShard(shard))?
            .put_traced(key, value, ctx);
        match &result {
            Ok(()) => self.metrics.puts.inc(),
            Err(ReplicaError::QuorumLost { .. }) => self.metrics.quorum_failures.inc(),
            Err(_) => {}
        }
        result
    }

    /// Quorum read from the shard owning `key`, returning the freshest
    /// copy among the read quorum.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::QuorumLost`] when the owning shard has fewer live
    /// replicas than the read quorum, plus the per-replica error cases of
    /// [`ShardGroup::get`].
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ReplicaError> {
        let shard = self.map.shard_for(key);
        let _span = self.telemetry.as_ref().map(|t| {
            OwnedSpan::open_with(
                t.clone(),
                "replica",
                "quorum_get",
                vec![("shard", shard.to_string())],
            )
        });
        let result = self
            .groups
            .get_mut(shard.0 as usize)
            .ok_or(ReplicaError::UnknownShard(shard))?
            .get(key);
        match &result {
            Ok(_) => self.metrics.gets.inc(),
            Err(ReplicaError::QuorumLost { .. }) => self.metrics.quorum_failures.inc(),
            Err(_) => {}
        }
        result
    }

    /// Kills one replica (its enclave aborts, the slot goes vacant) without
    /// repairing the group. Returns the killed replica's id, or `None` when
    /// the shard/slot does not address a live replica.
    pub fn kill_replica(&mut self, shard: ShardId, slot: u32) -> Option<ReplicaId> {
        let group = self.groups.get_mut(shard.0 as usize)?;
        let killed = group.kill(slot as usize, "fault injection")?;
        self.metrics.replicas_killed.inc();
        Some(killed)
    }

    /// Repairs every degraded shard group: re-attests replacements and
    /// streams them snapshots. Returns how many replicas were replaced.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NoSurvivors`] when a shard lost every replica, or
    /// admission/restore errors from the replacement path.
    pub fn fail_over(&mut self) -> Result<u32, ReplicaError> {
        let mut replaced = 0;
        for group in &mut self.groups {
            if group.is_degraded() {
                let n = group.failover(&mut self.provisioning)?;
                self.metrics.failovers.add(u64::from(n));
                replaced += n;
            }
        }
        Ok(replaced)
    }

    /// Adds one attested replica to `shard`'s group, re-deriving the write
    /// quorum as the smallest majority of the new size.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::UnknownShard`] when `shard` is outside this
    /// deployment, [`ReplicaError::NoSurvivors`] when no responsive replica
    /// remains to snapshot from, or admission/restore errors from the
    /// provisioning path.
    pub fn scale_up(&mut self, shard: ShardId) -> Result<ReplicaId, ReplicaError> {
        let group = self
            .groups
            .get_mut(shard.0 as usize)
            .ok_or(ReplicaError::UnknownShard(shard))?;
        let admitted = group.expand(&mut self.provisioning)?;
        self.metrics.scale_ups.inc();
        Ok(admitted)
    }

    /// Drains and decommissions the last replica slot of `shard`'s group,
    /// shrinking the write quorum to the majority of the new size. Returns
    /// the drained replica's id (`None` when the retired slot was vacant).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::UnknownShard`] when `shard` is outside this
    /// deployment, or [`ReplicaError::DrainRefused`] when removing the slot
    /// would leave fewer responsive replicas than the post-drain majority —
    /// the group is left untouched, so no acknowledged write is put at risk.
    pub fn scale_down(&mut self, shard: ShardId) -> Result<Option<ReplicaId>, ReplicaError> {
        let group = self
            .groups
            .get_mut(shard.0 as usize)
            .ok_or(ReplicaError::UnknownShard(shard))?;
        let drained = group.decommission_last()?;
        self.metrics.scale_downs.inc();
        Ok(drained)
    }

    /// Stalls one replica (grey failure): it stays resident but is fenced
    /// out of every quorum until a kill + failover replaces it. Returns the
    /// stalled replica's id, or `None` when the shard/slot does not address
    /// a responsive replica.
    pub fn stall_replica(&mut self, shard: ShardId, slot: u32) -> Option<ReplicaId> {
        let group = self.groups.get_mut(shard.0 as usize)?;
        let stalled = group.stall(slot as usize)?;
        self.metrics.stalls.inc();
        Some(stalled)
    }

    /// Partitions `shard`'s group from its clients until the virtual clock
    /// reaches `heal_at_ms` (see [`ReplicatedKv::advance_to`]). Overlapping
    /// partitions extend the existing heal deadline; returns `false` when
    /// the shard does not exist.
    pub fn partition_shard(&mut self, shard: ShardId, heal_at_ms: u64) -> bool {
        let Some(group) = self.groups.get_mut(shard.0 as usize) else {
            return false;
        };
        if group.partition() {
            self.metrics.partitions.inc();
        }
        let heal = self.partition_heals.entry(shard.0).or_insert(0);
        *heal = (*heal).max(heal_at_ms);
        true
    }

    /// Advances the deployment's virtual clock, healing every partition
    /// whose deadline has passed. Returns how many shards healed.
    pub fn advance_to(&mut self, now_ms: u64) -> u32 {
        let due: Vec<u32> = self
            .partition_heals
            .iter()
            .filter(|&(_, &deadline)| deadline <= now_ms)
            .map(|(&shard, _)| shard)
            .collect();
        let mut healed = 0;
        for shard in due {
            self.partition_heals.remove(&shard);
            if let Some(group) = self.groups.get_mut(shard as usize) {
                if group.heal_partition() {
                    healed += 1;
                }
            }
        }
        healed
    }

    /// Applies a fault-injection event to the deployment at virtual time
    /// `now_ms`.
    ///
    /// * [`FaultKind::ReplicaKill`] — the replica is killed and the group
    ///   immediately fails over to a re-attested replacement;
    /// * [`FaultKind::ReplicaStall`] — the replica is fenced out of quorums
    ///   but stays resident (grey failure);
    /// * [`FaultKind::NetworkPartition`] — the shard group refuses client
    ///   quorum operations until `now_ms + heal_after_ms` on the virtual
    ///   clock;
    /// * [`FaultKind::StorageCorruptBlock`] — a seeded bit flips in one
    ///   sealed block on the replica's untrusted host disk; the integrity
    ///   scrub detects it, quarantines the segment, and the replica is
    ///   killed and failed over (survivors hold every acknowledged write).
    ///
    /// Replica-family events whose target no longer exists (shard out of
    /// range, vacant or already-stalled slot) report
    /// [`FaultApplication::Unroutable`] — a counted no-op. Events for other
    /// subsystems report [`FaultApplication::Ignored`].
    ///
    /// # Errors
    ///
    /// Failover errors from [`ReplicatedKv::fail_over`] after a kill.
    pub fn apply_fault(
        &mut self,
        fault: &FaultKind,
        now_ms: u64,
    ) -> Result<FaultApplication, ReplicaError> {
        match fault {
            FaultKind::ReplicaKill { shard, slot } => {
                if self.kill_replica(ShardId(*shard), *slot).is_none() {
                    return Ok(FaultApplication::Unroutable);
                }
                self.fail_over()?;
                Ok(FaultApplication::Applied)
            }
            FaultKind::ReplicaStall { shard, slot } => {
                match self.stall_replica(ShardId(*shard), *slot) {
                    Some(_) => Ok(FaultApplication::Applied),
                    None => Ok(FaultApplication::Unroutable),
                }
            }
            FaultKind::NetworkPartition {
                group,
                heal_after_ms,
            } => {
                let heal_at = now_ms.saturating_add(*heal_after_ms);
                if self.partition_shard(ShardId(*group), heal_at) {
                    Ok(FaultApplication::Applied)
                } else {
                    Ok(FaultApplication::Unroutable)
                }
            }
            FaultKind::StorageCorruptBlock { shard, slot } => {
                let Some(group) = self.groups.get_mut(*shard as usize) else {
                    return Ok(FaultApplication::Unroutable);
                };
                // No sealed blocks to hit (vacant slot, untiered group, or
                // nothing flushed yet): a counted no-op.
                if group.corrupt_storage_block(*slot as usize).is_none() {
                    return Ok(FaultApplication::Unroutable);
                }
                // The scrub detects the flipped bit via the integrity tree
                // and quarantines the segment; the damaged replica is then
                // retired and a replacement caught up from a survivor.
                let quarantined = group.scrub_storage(*slot as usize)?;
                self.metrics
                    .storage_corruptions
                    .add(quarantined.len().max(1) as u64);
                self.kill_replica(ShardId(*shard), *slot);
                self.fail_over()?;
                Ok(FaultApplication::Applied)
            }
            _ => Ok(FaultApplication::Ignored),
        }
    }

    /// Point-in-time deployment statistics.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            shards: self.map.shards(),
            replication_factor: self
                .groups
                .first()
                .map_or(0, |g| g.replication_factor() as u32),
            write_quorum: self.write_quorum,
            live_replicas: self.live_replicas(),
            total_replicas: self.groups.iter().map(ShardGroup::replication_factor).sum(),
            puts: self.metrics.puts.value(),
            gets: self.metrics.gets.value(),
            quorum_failures: self.metrics.quorum_failures.value(),
            replicas_killed: self.metrics.replicas_killed.value(),
            replicas_replaced: self.metrics.failovers.value(),
            replicas_stalled: self.groups.iter().map(|g| g.stalled_replicas().len()).sum(),
            scale_ups: self.metrics.scale_ups.value(),
            scale_downs: self.metrics.scale_downs.value(),
            storage_corruptions: self.metrics.storage_corruptions.value(),
            snapshot_stream_bytes: self
                .groups
                .iter()
                .map(ShardGroup::streamed_snapshot_bytes)
                .sum(),
            epochs: self.groups.iter().map(ShardGroup::epoch).collect(),
        }
    }

    /// The provisioning service guarding this deployment's membership.
    #[must_use]
    pub fn provisioning(&self) -> &ProvisioningService {
        &self.provisioning
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ReplicaConfig {
        ReplicaConfig {
            shards: 2,
            replication: ReplicationFactor(3),
            write_quorum: WriteQuorum(2),
            virtual_nodes: 8,
            ..ReplicaConfig::default()
        }
    }

    fn deploy() -> ReplicatedKv {
        ReplicatedKv::deploy(tiny_config(), &Platform::new(), &CounterService::new()).unwrap()
    }

    #[test]
    fn traced_quorum_write_has_rf_replica_spans_under_one_parent() {
        use securecloud_telemetry::Phase;
        let telemetry = Arc::new(Telemetry::new());
        telemetry.set_trace_seed(42);
        let mut kv = ReplicatedKv::deploy_with(
            tiny_config(),
            &Platform::new(),
            &CounterService::new(),
            Some(&telemetry),
            None,
        )
        .unwrap();
        let root = telemetry.mint_root();
        kv.put_traced(b"k", b"v", root).unwrap();
        let events = telemetry.trace_events();
        let quorum: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::Begin && e.name == "quorum_write")
            .collect();
        assert_eq!(quorum.len(), 1, "one quorum_write span");
        assert_eq!(quorum[0].trace_id, root.trace_id);
        let fanout: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::Begin && e.name == "replica_put")
            .collect();
        assert_eq!(fanout.len(), 3, "exactly rf replica spans");
        assert!(fanout.iter().all(|e| e.parent_span_id == quorum[0].span_id));
        assert!(fanout.iter().all(|e| e.trace_id == root.trace_id));
        // An untraced put emits no causal fan-out spans.
        kv.put(b"k2", b"v2").unwrap();
        let events = telemetry.trace_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.phase == Phase::Begin && e.name == "replica_put")
                .count(),
            3,
            "untraced puts stay untraced"
        );
    }

    #[test]
    fn majority_quorum_helper() {
        assert_eq!(WriteQuorum::majority(ReplicationFactor(3)), WriteQuorum(2));
        assert_eq!(WriteQuorum::majority(ReplicationFactor(4)), WriteQuorum(3));
        assert_eq!(WriteQuorum::majority(ReplicationFactor(5)), WriteQuorum(3));
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let reject = |config: ReplicaConfig| {
            assert!(matches!(
                config.validate(),
                Err(ReplicaError::InvalidConfig(_))
            ));
        };
        reject(ReplicaConfig {
            shards: 0,
            ..ReplicaConfig::default()
        });
        reject(ReplicaConfig {
            virtual_nodes: 0,
            ..ReplicaConfig::default()
        });
        reject(ReplicaConfig {
            write_quorum: WriteQuorum(4),
            ..ReplicaConfig::default()
        });
        reject(ReplicaConfig {
            // 1-of-3 is not a majority: acked writes could be lost.
            write_quorum: WriteQuorum(1),
            ..ReplicaConfig::default()
        });
        reject(ReplicaConfig {
            code: Vec::new(),
            ..ReplicaConfig::default()
        });
        assert!(ReplicaConfig::default().validate().is_ok());
    }

    #[test]
    fn routes_and_replicates_across_shards() {
        let mut kv = deploy();
        for i in 0..40u32 {
            let key = format!("meter/{i:04}");
            kv.put(key.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..40u32 {
            let key = format!("meter/{i:04}");
            assert_eq!(
                kv.get(key.as_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
        let stats = kv.stats();
        assert_eq!(stats.puts, 40);
        assert_eq!(stats.gets, 40);
        assert_eq!(stats.live_replicas, 6);
        assert_eq!(stats.epochs, vec![1, 1]);
        // Both shards saw traffic (consistent hashing spreads 40 keys).
        let spread: Vec<u64> = kv
            .map
            .distribution(
                (0..40u32)
                    .map(|i| format!("meter/{i:04}").into_bytes())
                    .collect::<Vec<_>>()
                    .iter()
                    .map(Vec::as_slice),
            )
            .into_iter()
            .collect();
        assert!(spread.iter().all(|&n| n > 0), "{spread:?}");
    }

    #[test]
    fn replica_kill_fault_triggers_attested_failover() {
        let mut kv = deploy();
        kv.put(b"acked", b"survives").unwrap();
        let admitted_before = kv.provisioning().admitted();
        let handled = kv
            .apply_fault(&FaultKind::ReplicaKill { shard: 0, slot: 1 }, 0)
            .unwrap();
        assert_eq!(handled, FaultApplication::Applied);
        assert_eq!(kv.live_replicas(), 6, "failover restored the group");
        assert_eq!(kv.provisioning().admitted(), admitted_before + 1);
        assert_eq!(kv.get(b"acked").unwrap(), Some(b"survives".to_vec()));
        let stats = kv.stats();
        assert_eq!(stats.replicas_killed, 1);
        assert_eq!(stats.replicas_replaced, 1);
        assert_eq!(stats.epochs[0], 2, "membership change bumped the epoch");
        assert_eq!(stats.epochs[1], 1, "other shard untouched");
    }

    #[test]
    fn storage_corruption_fault_is_scrubbed_and_failed_over() {
        let mut kv = ReplicatedKv::deploy(
            ReplicaConfig {
                storage: Some(StorageConfig {
                    block_bytes: 256,
                    flush_bytes: 1024,
                    cache_blocks: 2,
                    compact_at_segments: 4,
                }),
                ..tiny_config()
            },
            &Platform::new(),
            &CounterService::new(),
        )
        .unwrap();
        // Enough acknowledged writes that both shards flush sealed segments.
        for i in 0..60u32 {
            kv.put(format!("sensor/{i:03}").as_bytes(), &[0xAB; 40])
                .unwrap();
        }
        let handled = kv
            .apply_fault(&FaultKind::StorageCorruptBlock { shard: 0, slot: 1 }, 0)
            .unwrap();
        assert_eq!(handled, FaultApplication::Applied);
        let stats = kv.stats();
        assert!(stats.storage_corruptions >= 1, "scrub quarantined the flip");
        assert!(
            stats.snapshot_stream_bytes > 0,
            "failover streamed an incremental manifest"
        );
        assert_eq!(kv.live_replicas(), 6, "damaged replica was replaced");
        for i in 0..60u32 {
            assert_eq!(
                kv.get(format!("sensor/{i:03}").as_bytes()).unwrap(),
                Some(vec![0xAB; 40]),
                "acked write survived the corruption"
            );
        }
        // Untiered deployments have no sealed blocks to flip.
        let mut plain = deploy();
        let unroutable = plain
            .apply_fault(&FaultKind::StorageCorruptBlock { shard: 0, slot: 0 }, 0)
            .unwrap();
        assert_eq!(unroutable, FaultApplication::Unroutable);
    }

    #[test]
    fn foreign_faults_are_ignored_and_unroutable_targets_counted() {
        let mut kv = deploy();
        let handled = kv
            .apply_fault(
                &FaultKind::ServicePanic {
                    service: "other".into(),
                },
                0,
            )
            .unwrap();
        assert_eq!(handled, FaultApplication::Ignored);
        // Unknown shard: a counted no-op, not an error or a panic.
        let unroutable = kv
            .apply_fault(&FaultKind::ReplicaKill { shard: 9, slot: 0 }, 0)
            .unwrap();
        assert_eq!(unroutable, FaultApplication::Unroutable);
        let unroutable = kv
            .apply_fault(&FaultKind::ReplicaStall { shard: 0, slot: 7 }, 0)
            .unwrap();
        assert_eq!(unroutable, FaultApplication::Unroutable);
        let unroutable = kv
            .apply_fault(
                &FaultKind::NetworkPartition {
                    group: 9,
                    heal_after_ms: 10,
                },
                0,
            )
            .unwrap();
        assert_eq!(unroutable, FaultApplication::Unroutable);
        assert_eq!(kv.stats().replicas_killed, 0, "nothing was actually hit");
    }

    #[test]
    fn stall_fault_fences_the_replica_until_failover_replaces_it() {
        let mut kv = deploy();
        kv.put(b"acked", b"survives").unwrap();
        let handled = kv
            .apply_fault(&FaultKind::ReplicaStall { shard: 0, slot: 2 }, 0)
            .unwrap();
        assert_eq!(handled, FaultApplication::Applied);
        assert_eq!(kv.stats().replicas_stalled, 1);
        // Stalling the same slot again is unroutable: it already left quorum.
        let again = kv
            .apply_fault(&FaultKind::ReplicaStall { shard: 0, slot: 2 }, 0)
            .unwrap();
        assert_eq!(again, FaultApplication::Unroutable);
        // Kill + failover retires the stalled replica and restores health.
        kv.kill_replica(ShardId(0), 2);
        kv.fail_over().unwrap();
        assert_eq!(kv.stats().replicas_stalled, 0);
        assert_eq!(kv.get(b"acked").unwrap(), Some(b"survives".to_vec()));
    }

    #[test]
    fn partition_fault_heals_on_the_virtual_clock() {
        let mut kv = deploy();
        // Find a key owned by shard 0 so the partition is observable.
        let key = (0..64u32)
            .map(|i| format!("probe/{i:03}").into_bytes())
            .find(|k| kv.shard_of(k) == ShardId(0))
            .expect("some probe key routes to shard 0");
        kv.put(&key, b"before").unwrap();
        let epoch_before = kv.stats().epochs[0];
        let handled = kv
            .apply_fault(
                &FaultKind::NetworkPartition {
                    group: 0,
                    heal_after_ms: 500,
                },
                1_000,
            )
            .unwrap();
        assert_eq!(handled, FaultApplication::Applied);
        let err = kv.put(&key, b"during").unwrap_err();
        assert!(matches!(err, ReplicaError::Partitioned { shard } if shard == ShardId(0)));
        // Not yet due: still partitioned.
        assert_eq!(kv.advance_to(1_400), 0);
        assert!(kv.put(&key, b"during").is_err());
        // Deadline passed: partition heals, data intact, epoch untouched.
        assert_eq!(kv.advance_to(1_500), 1);
        assert_eq!(kv.get(&key).unwrap(), Some(b"before".to_vec()));
        assert_eq!(kv.stats().epochs[0], epoch_before);
    }

    #[test]
    fn scaling_bumps_epochs_and_keeps_majority_quorums() {
        let mut kv = deploy();
        kv.put(b"acked", b"survives").unwrap();
        let admitted = kv.scale_up(ShardId(0)).unwrap();
        assert_eq!(admitted.shard, ShardId(0));
        let group = kv.group(ShardId(0)).unwrap();
        assert_eq!(group.replication_factor(), 4);
        assert_eq!(group.write_quorum(), 3, "majority of 4");
        let drained = kv.scale_down(ShardId(0)).unwrap();
        assert!(drained.is_some());
        let group = kv.group(ShardId(0)).unwrap();
        assert_eq!(group.replication_factor(), 3);
        assert_eq!(group.write_quorum(), 2, "majority of 3");
        let stats = kv.stats();
        assert_eq!(stats.scale_ups, 1);
        assert_eq!(stats.scale_downs, 1);
        assert_eq!(stats.epochs[0], 3, "two membership changes");
        assert_eq!(kv.get(b"acked").unwrap(), Some(b"survives".to_vec()));
        assert!(matches!(
            kv.scale_up(ShardId(9)),
            Err(ReplicaError::UnknownShard(ShardId(9)))
        ));
    }
}
