//! Attestation-gated replica provisioning.
//!
//! This is the reproduction of ReplicaTEE's provisioning service: a
//! replica may join a shard group **only** after the service has verified
//! a quote from the platform's (simulated) quoting enclave, and the
//! group's sealing key travels exclusively over a mutually-authenticated
//! [`SecureChannel`]. The quote binds the candidate's channel public key
//! (its SHA-256 lands in the report's user data), so the service knows the
//! channel terminates *inside* the attested enclave — a man-in-the-middle
//! with a stolen quote cannot complete admission.
//!
//! Admission flow (one [`ProvisioningService::admit`] call):
//!
//! 1. the candidate enclave generates a channel identity and quotes the
//!    hash of its public key;
//! 2. candidate and service run the channel handshake, the quote riding in
//!    the candidate's authenticated attestation payload;
//! 3. the service parses the quote, verifies it against its
//!    [`AttestationService`] policy (registered platforms, measurement
//!    allowlist, no debug enclaves), and checks the channel-key binding;
//! 4. only then does the service release the group sealing key and the
//!    group's current epoch over the channel.

use crate::{ReplicaError, ShardId};
use securecloud_crypto::channel::{
    memory_pair, ChannelConfig, Identity, MemoryTransport, SecureChannel,
};
use securecloud_crypto::sha256::Sha256;
use securecloud_sgx::attest::{AttestationService, Quote};
use securecloud_sgx::enclave::{Enclave, Measurement, Platform};
use securecloud_sgx::SgxError;
use securecloud_telemetry::{Counter, Telemetry};
use std::collections::HashMap;

/// What an admitted replica walks away with: the group's sealing key and
/// the epoch it was admitted under, exactly as received over the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The shard group's sealing key (snapshots are sealed under it).
    pub group_key: [u8; 16],
    /// The group epoch at admission time.
    pub epoch: u64,
}

/// The provisioning service gating shard-group membership on attestation.
#[derive(Debug)]
pub struct ProvisioningService {
    attestation: AttestationService,
    identity: Identity,
    group_keys: HashMap<u32, [u8; 16]>,
    admitted: Counter,
    rejected: Counter,
}

impl ProvisioningService {
    /// A service trusting `platform`'s quoting enclave and admitting only
    /// enclaves measuring `allowed`.
    #[must_use]
    pub fn new(platform: &Platform, allowed: Measurement) -> Self {
        let mut attestation = AttestationService::new();
        attestation.register_platform(platform);
        attestation.allow_measurement(allowed);
        ProvisioningService {
            attestation,
            identity: Identity::generate("replica-provisioning"),
            group_keys: HashMap::new(),
            admitted: Counter::new(),
            rejected: Counter::new(),
        }
    }

    /// Adds another acceptable measurement (e.g. a new shard binary
    /// version during a rolling upgrade).
    pub fn allow_measurement(&mut self, measurement: Measurement) {
        self.attestation.allow_measurement(measurement);
    }

    /// Adopts the admission counters into a shared telemetry registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let registry = telemetry.registry();
        registry.adopt_counter(
            "securecloud_replica_admissions_total",
            &[("outcome", "admitted")],
            &self.admitted,
        );
        registry.adopt_counter(
            "securecloud_replica_admissions_total",
            &[("outcome", "rejected")],
            &self.rejected,
        );
    }

    /// Replicas admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted.value()
    }

    /// Admission attempts rejected so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.value()
    }

    /// The sealing key for `shard`, created on first use. Internal: the
    /// only way the key leaves the service is over an admission channel.
    pub(crate) fn group_key(&mut self, shard: ShardId) -> [u8; 16] {
        *self
            .group_keys
            .entry(shard.0)
            .or_insert_with(securecloud_crypto::random_array)
    }

    /// Runs the full admission flow for `candidate` joining `shard` at
    /// `epoch`. On success the candidate holds the group sealing key; on
    /// failure nothing secret was released.
    ///
    /// # Errors
    ///
    /// * [`ReplicaError::AdmissionDenied`] — the quote failed verification
    ///   (unknown platform, unlisted measurement, debug enclave, or a quote
    ///   that does not bind the channel key);
    /// * [`ReplicaError::Channel`] — the secure-channel handshake failed.
    pub fn admit(
        &mut self,
        shard: ShardId,
        candidate: &Enclave,
        epoch: u64,
    ) -> Result<Admission, ReplicaError> {
        let (candidate_end, service_end) = memory_pair();
        let candidate_identity = Identity::generate(&format!("replica-{shard}"));
        let mut binding = Sha256::new();
        binding.update(&candidate_identity.public_key());
        let quote = candidate.quote(&binding.finalize());

        // Both handshake halves block on each other, so the service side
        // runs on its own thread (the simulator's "network" is in-memory).
        let service_identity = self.identity.clone();
        let responder = std::thread::spawn(move || {
            SecureChannel::respond(service_end, &service_identity, ChannelConfig::default())
        });
        let candidate_channel = SecureChannel::initiate(
            candidate_end,
            &candidate_identity,
            ChannelConfig {
                attestation_payload: quote.to_bytes(),
                ..ChannelConfig::default()
            },
        );
        let service_channel = responder.join().unwrap_or_else(|_| {
            panic!("shard {shard}: provisioning responder thread panicked during admission")
        });
        let mut candidate_channel =
            candidate_channel.map_err(|source| ReplicaError::Channel { shard, source })?;
        let mut service_channel =
            service_channel.map_err(|source| ReplicaError::Channel { shard, source })?;

        // Service side: verify the (handshake-authenticated) quote before
        // releasing anything.
        if let Err(source) = self.verify_candidate(&service_channel) {
            self.rejected.inc();
            return Err(ReplicaError::AdmissionDenied { shard, source });
        }

        let key = self.group_key(shard);
        let mut payload = key.to_vec();
        payload.extend_from_slice(&epoch.to_le_bytes());
        service_channel
            .send(&payload)
            .map_err(|source| ReplicaError::Channel { shard, source })?;

        // Candidate side: receive the key over the channel.
        let received = candidate_channel
            .recv()
            .map_err(|source| ReplicaError::Channel { shard, source })?;
        if received.len() < 24 {
            return Err(ReplicaError::InvalidConfig(format!(
                "shard {shard}: admission payload truncated ({} bytes, need 24: \
                 16-byte group key + 8-byte epoch)",
                received.len()
            )));
        }
        let group_key: [u8; 16] = received[..16]
            .try_into()
            .unwrap_or_else(|_| panic!("shard {shard}: group-key slice is 16 bytes by check"));
        let epoch = u64::from_le_bytes(
            received[16..24]
                .try_into()
                .unwrap_or_else(|_| panic!("shard {shard}: epoch slice is 8 bytes by check")),
        );
        self.admitted.inc();
        Ok(Admission { group_key, epoch })
    }

    /// The service-side checks: quote parses, verifies under the
    /// attestation policy, and binds the channel's static key.
    fn verify_candidate(&self, channel: &SecureChannel<MemoryTransport>) -> Result<(), SgxError> {
        let quote = Quote::from_bytes(channel.peer_attestation())?;
        let report = self.attestation.verify(&quote)?;
        let mut binding = Sha256::new();
        binding.update(&channel.peer_static_key());
        if report.report_data[..32] != binding.finalize() {
            return Err(SgxError::AttestationFailed(
                "quote does not bind the channel key".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use securecloud_sgx::enclave::EnclaveConfig;

    const SHARD_CODE: &[u8] = b"replica shard code";

    fn setup() -> (Platform, ProvisioningService) {
        let platform = Platform::new();
        let allowed = Measurement::of_code(SHARD_CODE);
        let service = ProvisioningService::new(&platform, allowed);
        (platform, service)
    }

    #[test]
    fn valid_replica_admitted_with_stable_group_key() {
        let (platform, mut service) = setup();
        let a = platform
            .launch(EnclaveConfig::new("r0", SHARD_CODE))
            .unwrap();
        let b = platform
            .launch(EnclaveConfig::new("r1", SHARD_CODE))
            .unwrap();
        let first = service.admit(ShardId(0), &a, 1).unwrap();
        let second = service.admit(ShardId(0), &b, 1).unwrap();
        assert_eq!(first.group_key, second.group_key, "one key per group");
        assert_eq!(first.epoch, 1);
        let other_shard = service.admit(ShardId(1), &a, 1).unwrap();
        assert_ne!(first.group_key, other_shard.group_key);
        assert_eq!(service.admitted(), 3);
        assert_eq!(service.rejected(), 0);
    }

    #[test]
    fn unlisted_measurement_rejected() {
        let (platform, mut service) = setup();
        let rogue = platform
            .launch(EnclaveConfig::new("rogue", b"tampered shard code"))
            .unwrap();
        let err = service.admit(ShardId(0), &rogue, 1).unwrap_err();
        assert!(matches!(err, ReplicaError::AdmissionDenied { .. }), "{err}");
        assert_eq!(service.rejected(), 1);
    }

    #[test]
    fn unknown_platform_rejected() {
        let (_platform, mut service) = setup();
        let foreign = Platform::new();
        let candidate = foreign
            .launch(EnclaveConfig::new("r0", SHARD_CODE))
            .unwrap();
        let err = service.admit(ShardId(0), &candidate, 1).unwrap_err();
        assert!(matches!(err, ReplicaError::AdmissionDenied { .. }), "{err}");
    }

    #[test]
    fn debug_enclave_rejected() {
        let (platform, mut service) = setup();
        let debug = platform
            .launch(EnclaveConfig {
                debug: true,
                ..EnclaveConfig::new("dbg", SHARD_CODE)
            })
            .unwrap();
        let err = service.admit(ShardId(0), &debug, 1).unwrap_err();
        assert!(matches!(err, ReplicaError::AdmissionDenied { .. }), "{err}");
    }

    #[test]
    fn quote_must_bind_the_channel_key() {
        // A valid quote bound to the WRONG data (e.g. replayed from another
        // session) fails the binding check even though it verifies.
        let (platform, service) = setup();
        let enclave = platform
            .launch(EnclaveConfig::new("r0", SHARD_CODE))
            .unwrap();
        let (a, b) = memory_pair();
        let replayed = enclave.quote(b"someone else's channel key hash");
        let initiator_id = Identity::generate("mitm");
        let service_id = service.identity.clone();
        let responder = std::thread::spawn(move || {
            SecureChannel::respond(b, &service_id, ChannelConfig::default())
        });
        let _initiator = SecureChannel::initiate(
            a,
            &initiator_id,
            ChannelConfig {
                attestation_payload: replayed.to_bytes(),
                ..ChannelConfig::default()
            },
        )
        .unwrap();
        let service_channel = responder.join().unwrap().unwrap();
        let err = service.verify_candidate(&service_channel).unwrap_err();
        assert!(err.to_string().contains("bind"), "{err}");
    }
}
