//! # securecloud-replica
//!
//! The attested shard/replication layer over the secure KV store.
//!
//! The paper positions SecureCloud as a platform for dependable big-data
//! micro-services, but a single enclave-resident [`SecureKv`] is one crash
//! away from losing its dataset and one hot shard away from thrashing the
//! EPC (the 128 MiB knee of Figure 3). This crate distributes the store the
//! way ReplicaTEE distributes enclaves:
//!
//! * [`shard::ShardMap`] — a consistent-hash ring routing keys to shard
//!   groups, so each replica's working set stays below the paging cliff;
//! * [`provision::ProvisioningService`] — membership is *attestation
//!   gated*: a replica joins a group only after the provisioning service
//!   verifies a quote from the (simulated) quoting enclave, and the group's
//!   sealing key is installed exclusively over a mutually-authenticated
//!   [`SecureChannel`](securecloud_crypto::channel::SecureChannel);
//! * [`group::ShardGroup`] — quorum writes/reads over `n` enclave replicas
//!   (configurable [`ReplicationFactor`]/[`WriteQuorum`](cluster::WriteQuorum)) with
//!   rollback-protected epoch numbers backed by the trusted
//!   [`CounterService`](securecloud_kvstore::CounterService);
//! * failover — when a replica is killed (e.g. by a
//!   [`FaultKind::ReplicaKill`](securecloud_faults::FaultKind) event), the
//!   group re-attests a replacement, streams an encrypted snapshot to it,
//!   and resumes without losing acknowledged writes; serving a *stale*
//!   snapshot during failover is detected by the trusted counter.
//!
//! [`cluster::ReplicatedKv`] assembles all of this into one handle; the
//! `securecloud` facade deploys it via `deploy_replicated_kv(...)`.
//!
//! [`SecureKv`]: securecloud_kvstore::SecureKv

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod group;
pub mod provision;
pub mod shard;

pub use cluster::{
    FaultApplication, ReplicaConfig, ReplicaStats, ReplicatedKv, ReplicationFactor, WriteQuorum,
};
pub use group::{ShardGroup, SnapshotStream};
pub use provision::ProvisioningService;
pub use securecloud_kvstore::StorageConfig;
pub use shard::ShardMap;

use securecloud_crypto::CryptoError;
use securecloud_kvstore::KvError;
use securecloud_sgx::SgxError;
use std::error::Error as StdError;
use std::fmt;

/// A shard group's identity within a replicated store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A replica's identity: the shard it serves plus its slot in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaId {
    /// The shard group the replica belongs to.
    pub shard: ShardId,
    /// The replica's slot index within the group (`0..replication_factor`).
    pub slot: u32,
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/r{}", self.shard, self.slot)
    }
}

/// Errors surfaced by the replication layer, carrying the shard/replica
/// context that plain [`KvError`]s lack.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplicaError {
    /// A store-level failure on a specific replica (snapshot crypto,
    /// rollback detection, unknown counter).
    Store {
        /// The replica whose store operation failed.
        replica: ReplicaId,
        /// The underlying store error.
        source: KvError,
    },
    /// Too few live replicas to satisfy the configured quorum.
    QuorumLost {
        /// The shard whose quorum degraded.
        shard: ShardId,
        /// Live replicas required for the operation.
        needed: usize,
        /// Live replicas currently in the group.
        live: usize,
    },
    /// The provisioning service refused to admit a candidate replica.
    AdmissionDenied {
        /// The shard the candidate tried to join.
        shard: ShardId,
        /// The attestation failure that blocked admission.
        source: SgxError,
    },
    /// A secure-channel failure during provisioning.
    Channel {
        /// The shard whose provisioning channel failed.
        shard: ShardId,
        /// The underlying channel error.
        source: CryptoError,
    },
    /// An enclave-level failure on a specific replica.
    Sgx {
        /// The replica whose enclave call failed.
        replica: ReplicaId,
        /// The underlying SGX error.
        source: SgxError,
    },
    /// A replica observed an epoch older than the group's trusted epoch
    /// counter — it missed a membership change and must not serve writes.
    StaleEpoch {
        /// The out-of-date replica.
        replica: ReplicaId,
        /// The epoch the replica holds.
        have: u64,
        /// The group's current trusted epoch.
        want: u64,
    },
    /// No live replica remains to stream a snapshot from.
    NoSurvivors {
        /// The shard that lost every replica.
        shard: ShardId,
    },
    /// The shard group is partitioned from its clients: quorum operations
    /// are refused outright, so a write fails *unacknowledged* rather than
    /// being acknowledged on an unreachable quorum.
    Partitioned {
        /// The isolated shard.
        shard: ShardId,
    },
    /// A scale-down was refused: draining the targeted replica would drop
    /// the group below the majority quorum of its post-drain size.
    DrainRefused {
        /// The shard whose scale-down was refused.
        shard: ShardId,
        /// Responsive replicas that would remain.
        live: usize,
        /// The post-drain majority quorum they must still meet.
        needed: usize,
    },
    /// The deployment configuration is invalid.
    InvalidConfig(String),
    /// The addressed shard does not exist in this deployment.
    UnknownShard(ShardId),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Store { replica, source } => {
                write!(f, "replica {replica}: store failure: {source}")
            }
            ReplicaError::QuorumLost {
                shard,
                needed,
                live,
            } => write!(
                f,
                "shard {shard}: quorum lost ({live} live, {needed} required)"
            ),
            ReplicaError::AdmissionDenied { shard, source } => {
                write!(f, "shard {shard}: admission denied: {source}")
            }
            ReplicaError::Channel { shard, source } => {
                write!(f, "shard {shard}: provisioning channel failure: {source}")
            }
            ReplicaError::Sgx { replica, source } => {
                write!(f, "replica {replica}: enclave failure: {source}")
            }
            ReplicaError::StaleEpoch {
                replica,
                have,
                want,
            } => write!(
                f,
                "replica {replica}: stale epoch {have} (group epoch is {want})"
            ),
            ReplicaError::NoSurvivors { shard } => {
                write!(f, "shard {shard}: no surviving replica to recover from")
            }
            ReplicaError::Partitioned { shard } => {
                write!(
                    f,
                    "shard {shard}: partitioned from clients; quorum operations refused"
                )
            }
            ReplicaError::DrainRefused {
                shard,
                live,
                needed,
            } => write!(
                f,
                "shard {shard}: scale-down refused ({live} responsive would remain, \
                 post-drain quorum needs {needed})"
            ),
            ReplicaError::InvalidConfig(why) => write!(f, "invalid replica config: {why}"),
            ReplicaError::UnknownShard(shard) => write!(f, "unknown shard {shard}"),
        }
    }
}

impl StdError for ReplicaError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ReplicaError::Store { source, .. } => Some(source),
            ReplicaError::AdmissionDenied { source, .. } | ReplicaError::Sgx { source, .. } => {
                Some(source)
            }
            ReplicaError::Channel { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_carries_shard_and_replica_context() {
        let replica = ReplicaId {
            shard: ShardId(3),
            slot: 1,
        };
        let err = ReplicaError::Store {
            replica,
            source: KvError::RollbackDetected {
                snapshot_version: 4,
                counter_version: 9,
            },
        };
        let text = err.to_string();
        assert!(text.contains("s3/r1"), "missing replica context: {text}");
        assert!(text.contains("rollback"), "missing cause: {text}");
    }

    #[test]
    fn error_source_chains_to_the_underlying_layer() {
        let err = ReplicaError::AdmissionDenied {
            shard: ShardId(0),
            source: SgxError::AttestationFailed("bad quote".into()),
        };
        let source = err.source().expect("source present");
        assert!(source.to_string().contains("bad quote"));

        let quorum = ReplicaError::QuorumLost {
            shard: ShardId(1),
            needed: 2,
            live: 1,
        };
        assert!(quorum.source().is_none());
        assert!(quorum.to_string().contains("s1"));
    }
}
