//! **SecureCloud** — secure big-data processing in untrusted clouds.
//!
//! This crate is the facade over the full layered architecture of the
//! SecureCloud project (Kelbert et al., DSN 2018):
//!
//! | Layer | Crate (re-exported module) |
//! |---|---|
//! | Enclave hardware (simulated SGX) | [`sgx`] |
//! | Cryptography + wire codec | [`crypto`] |
//! | SCONE secure-container runtime | [`scone`] |
//! | Secure containers / images / registry | [`containers`] |
//! | Secure content-based routing | [`scbr`] |
//! | GenPack generational scheduler | [`genpack`] |
//! | Event bus + micro-services | [`eventbus`] |
//! | Secure KV store | [`kvstore`] |
//! | Attested shard/replication layer | [`replica`] |
//! | Secure map/reduce | [`mapreduce`] |
//! | Smart-grid use cases | [`smartgrid`] |
//!
//! [`SecureCloud`] assembles the trusted control plane (platform,
//! attestation, configuration service, registry, container engine, event
//! bus) into the deployment API the paper's Figure 1 sketches: build a
//! secure micro-service image, deploy it, and wire services over the bus.
//!
//! # Example
//!
//! ```
//! use securecloud::containers::build::SecureImageBuilder;
//! use securecloud::SecureCloud;
//!
//! let mut cloud = SecureCloud::new();
//! let built = SecureImageBuilder::new("meter-svc", "v1", b"service code")
//!     .protect_file("/data/keys", b"secret")
//!     .build()
//!     .unwrap();
//! let image = cloud.deploy_image(built);
//! let container = cloud.run_container(image).unwrap();
//! let plaintext = cloud
//!     .with_runtime(container, |rt| rt.read_file("/data/keys", 0, 16))
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(plaintext, b"secret");
//! ```

pub use securecloud_containers as containers;
pub use securecloud_crypto as crypto;
pub use securecloud_eventbus as eventbus;
pub use securecloud_faults as faults;
pub use securecloud_genpack as genpack;
pub use securecloud_kvstore as kvstore;
pub use securecloud_mapreduce as mapreduce;
pub use securecloud_replica as replica;
pub use securecloud_scbr as scbr;
pub use securecloud_scone as scone;
pub use securecloud_sgx as sgx;
pub use securecloud_smartgrid as smartgrid;
pub use securecloud_telemetry as telemetry;

use containers::build::BuiltImage;
use containers::engine::{ContainerId, Engine};
use containers::image::ImageId;
use containers::registry::Registry;
use containers::ContainerError;
use eventbus::service::{MicroService, ServiceHost};
use eventbus::TopicKeyService;
use faults::{FaultEvent, FaultInjector, FaultKind};
use kvstore::CounterService;
use parking_lot::RwLock;
use replica::{ReplicaConfig, ReplicaError, ReplicatedKv};
use scone::runtime::SconeRuntime;
use scone::scf::ConfigService;
use sgx::attest::AttestationService;
use sgx::enclave::Platform;
use std::sync::Arc;
use telemetry::Telemetry;

/// The assembled SecureCloud control plane.
///
/// Owns one SGX-capable platform, the attestation + configuration trust
/// anchors, an image registry, the container engine, the per-topic key
/// service, and the event bus connecting micro-services.
pub struct SecureCloud {
    platform: Platform,
    registry: Arc<Registry>,
    config_service: Arc<RwLock<ConfigService>>,
    engine: Engine,
    key_service: TopicKeyService,
    host: ServiceHost,
    counter_service: CounterService,
    replicated: Vec<ReplicatedKv>,
    sim_now_ms: u64,
    injector: Option<Arc<FaultInjector>>,
    telemetry: Arc<Telemetry>,
}

/// Handle to a replicated KV deployment owned by the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicatedKvId(pub usize);

impl std::fmt::Debug for SecureCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureCloud").finish_non_exhaustive()
    }
}

impl Default for SecureCloud {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureCloud {
    /// Bootstraps a platform with fresh trust anchors.
    #[must_use]
    pub fn new() -> Self {
        let platform = Platform::new();
        let mut attestation = AttestationService::new();
        attestation.register_platform(&platform);
        let mut key_attestation = AttestationService::new();
        key_attestation.register_platform(&platform);
        let registry = Arc::new(Registry::new());
        let config_service = Arc::new(RwLock::new(ConfigService::new(attestation)));
        let mut engine = Engine::new(
            Arc::clone(&registry),
            platform.clone(),
            Arc::clone(&config_service),
        );
        // One registry + virtual-clock trace buffer for the whole platform:
        // engine supervision, bus delivery, and every bootstrapped secure
        // runtime report into it.
        let telemetry = Arc::new(Telemetry::new());
        engine.set_telemetry(Arc::clone(&telemetry));
        let mut host = ServiceHost::new(1_000);
        host.set_telemetry(Arc::clone(&telemetry));
        SecureCloud {
            platform,
            registry,
            config_service,
            engine,
            key_service: TopicKeyService::new(key_attestation),
            host,
            counter_service: CounterService::new(),
            replicated: Vec::new(),
            sim_now_ms: 0,
            injector: None,
            telemetry,
        }
    }

    /// The platform-wide telemetry: shared metrics registry, virtual
    /// clock, and trace buffer.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Attaches a seeded fault injector to the whole platform: the event
    /// bus consults it for message fates, the container engine and service
    /// host record recovery events into its trace, and [`SecureCloud::advance`]
    /// fires its planned faults at their virtual-time points.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.engine.set_fault_injector(Arc::clone(&injector));
        self.host.set_fault_injector(Arc::clone(&injector));
        self.injector = Some(injector);
    }

    /// The attached fault injector, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The platform-wide virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.sim_now_ms
    }

    /// Advances the platform's virtual clock by `ms`: the container engine
    /// restarts containers whose backoff elapsed, the event bus expires
    /// leases (redelivering unacked messages), and any planned faults that
    /// came due are fired — enclave aborts go to the engine, service panics
    /// arm the service host, syscall failures arm the injector itself.
    ///
    /// Returns the fault events that fired so callers can apply the kinds
    /// the facade does not own (e.g. [`FaultKind::BrokerFail`] against an
    /// external [`scbr::broker::Overlay`]).
    pub fn advance(&mut self, ms: u64) -> Vec<FaultEvent> {
        self.sim_now_ms += ms;
        // Stamp the telemetry clock before anything below emits events so
        // every trace entry carries the current virtual time.
        self.telemetry.clock().set_at_least_ms(self.sim_now_ms);
        // Move the injector's clock first so everything the engine and bus
        // record below is stamped with the current virtual time.
        let events = match &self.injector {
            Some(injector) => injector.advance_to(self.sim_now_ms),
            None => Vec::new(),
        };
        self.engine.advance(ms);
        self.host.bus_mut().advance(ms);
        if self.injector.is_none() {
            return events;
        }
        for event in &events {
            match &event.kind {
                FaultKind::EnclaveAbort { container } => {
                    // Unknown ids are a plan/deployment mismatch; the trace
                    // already records the fired event, so just skip.
                    let _ = self
                        .engine
                        .abort(ContainerId(*container), "injected enclave abort");
                }
                FaultKind::ServicePanic { service } => {
                    self.host.inject_panic_next(service);
                }
                FaultKind::SyscallFail { count } => {
                    // The injector has armed `count` forced failures; every
                    // secure runtime bootstrapped after the injector was
                    // attached reaches its host through a FaultyHost, so
                    // the next syscalls fail at the SCONE shield layer as
                    // host violations. Record the arming so traces show
                    // when the flaky window opened.
                    self.telemetry.event(
                        "faults",
                        "syscall_failures_armed",
                        vec![("count", count.to_string())],
                    );
                }
                // The facade owns no broker overlay; returned to the caller.
                FaultKind::BrokerFail { .. } => {}
                FaultKind::ReplicaKill { .. } => {
                    // Every replicated deployment gets a shot at the event;
                    // the one owning the shard kills the replica and fails
                    // over to a re-attested replacement. Failover errors
                    // (e.g. no survivors) are already in the trace.
                    for kv in &mut self.replicated {
                        let _ = kv.apply_fault(&event.kind);
                    }
                }
                _ => {}
            }
        }
        events
    }

    /// The underlying (simulated) SGX platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The image registry.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The configuration service trust anchor (SCF registration,
    /// attestation policy).
    #[must_use]
    pub fn config_service(&self) -> &Arc<RwLock<ConfigService>> {
        &self.config_service
    }

    /// The per-topic payload key service.
    pub fn key_service_mut(&mut self) -> &mut TopicKeyService {
        &mut self.key_service
    }

    /// Publishes a built secure image: pushes it, registers its SCF, and
    /// allows its measurement.
    pub fn deploy_image(&mut self, built: BuiltImage) -> ImageId {
        self.engine.deploy(built)
    }

    /// Starts a container from a deployed image (secure bootstrap included
    /// for secure images).
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_container(&mut self, image: ImageId) -> Result<ContainerId, ContainerError> {
        self.engine.run(image)
    }

    /// Stops a container (destroying its enclave if secure).
    ///
    /// # Errors
    ///
    /// See [`Engine::stop`].
    pub fn stop_container(&mut self, id: ContainerId) -> Result<(), ContainerError> {
        self.engine.stop(id)
    }

    /// Runs `f` with the SCONE runtime of a secure container.
    ///
    /// Returns `None` for unknown ids or plain containers.
    pub fn with_runtime<R>(
        &mut self,
        id: ContainerId,
        f: impl FnOnce(&mut SconeRuntime) -> R,
    ) -> Option<R> {
        self.engine.container_mut(id)?.runtime_mut().map(f)
    }

    /// The container engine (fleet inspection, resource accounting).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The platform's trusted monotonic counter service (rollback
    /// protection for KV snapshots and replica-group epochs).
    #[must_use]
    pub fn counter_service(&self) -> &CounterService {
        &self.counter_service
    }

    /// Deploys a sharded, quorum-replicated secure KV store on this
    /// platform: every replica enclave is attested before admission, the
    /// platform counter service backs epoch/version rollback protection,
    /// and the deployment shares the platform telemetry and fault
    /// injector. [`FaultKind::ReplicaKill`] events fired by
    /// [`SecureCloud::advance`] are routed to it automatically.
    ///
    /// # Errors
    ///
    /// See [`ReplicatedKv::deploy_with`].
    pub fn deploy_replicated_kv(
        &mut self,
        config: ReplicaConfig,
    ) -> Result<ReplicatedKvId, ReplicaError> {
        let kv = ReplicatedKv::deploy_with(
            config,
            &self.platform,
            &self.counter_service,
            Some(&self.telemetry),
            self.injector.as_ref(),
        )?;
        self.replicated.push(kv);
        Ok(ReplicatedKvId(self.replicated.len() - 1))
    }

    /// A replicated KV deployment by handle.
    #[must_use]
    pub fn replicated_kv(&self, id: ReplicatedKvId) -> Option<&ReplicatedKv> {
        self.replicated.get(id.0)
    }

    /// Mutable access to a replicated KV deployment (puts/gets/failover).
    pub fn replicated_kv_mut(&mut self, id: ReplicatedKvId) -> Option<&mut ReplicatedKv> {
        self.replicated.get_mut(id.0)
    }

    /// Registers a micro-service on the platform event bus.
    pub fn register_service(&mut self, service: Box<dyn MicroService>) {
        self.host.register(service);
    }

    /// The event-bus service host.
    pub fn services_mut(&mut self) -> &mut ServiceHost {
        &mut self.host
    }

    /// Sets how many bus messages each service may consume per delivery
    /// step (fetched as one lease batch; delivery semantics are unchanged).
    /// See [`ServiceHost::set_delivery_batch`].
    pub fn set_delivery_batch(&mut self, batch: usize) {
        self.host.set_delivery_batch(batch);
    }

    /// Pumps bus deliveries until quiet; returns messages processed.
    pub fn run_services(&mut self, max_steps: usize) -> usize {
        self.host.run_until_quiet(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::build::SecureImageBuilder;

    #[test]
    fn facade_deploy_run_read() {
        let mut cloud = SecureCloud::new();
        let built = SecureImageBuilder::new("svc", "v1", b"binary")
            .protect_file("/data/secret", b"42")
            .arg("--run")
            .build()
            .unwrap();
        let image = cloud.deploy_image(built);
        let container = cloud.run_container(image).unwrap();
        let content = cloud
            .with_runtime(container, |rt| rt.read_file("/data/secret", 0, 2))
            .unwrap()
            .unwrap();
        assert_eq!(content, b"42");
        cloud.stop_container(container).unwrap();
    }

    #[test]
    fn replica_kill_events_route_to_replicated_deployments() {
        use faults::FaultPlan;
        use replica::{ReplicaConfig, ReplicationFactor, WriteQuorum};

        let mut cloud = SecureCloud::new();
        let plan = FaultPlan::new().at(50, FaultKind::ReplicaKill { shard: 0, slot: 1 });
        cloud.set_fault_injector(Arc::new(FaultInjector::with_plan(7, plan)));
        let id = cloud
            .deploy_replicated_kv(ReplicaConfig {
                shards: 2,
                replication: ReplicationFactor(3),
                write_quorum: WriteQuorum(2),
                ..ReplicaConfig::default()
            })
            .unwrap();
        cloud
            .replicated_kv_mut(id)
            .unwrap()
            .put(b"acked", b"before fault")
            .unwrap();
        let events = cloud.advance(100);
        assert_eq!(events.len(), 1);
        let kv = cloud.replicated_kv_mut(id).unwrap();
        assert_eq!(kv.stats().replicas_killed, 1);
        assert_eq!(kv.stats().replicas_replaced, 1, "auto-failover ran");
        assert_eq!(kv.get(b"acked").unwrap(), Some(b"before fault".to_vec()));
        assert!(cloud.replicated_kv(ReplicatedKvId(9)).is_none());
    }

    #[test]
    fn with_runtime_none_for_unknown_or_plain() {
        let mut cloud = SecureCloud::new();
        assert!(cloud.with_runtime(ContainerId(77), |_| ()).is_none());
        let plain = containers::image::Image::new("p", "1", b"bin");
        let id = cloud.registry().push(plain);
        let container = cloud.run_container(id).unwrap();
        assert!(cloud.with_runtime(container, |_| ()).is_none());
    }
}
